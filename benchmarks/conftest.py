"""Benchmark configuration.

Every benchmark regenerates one table or figure of the paper and
prints it next to the paper's numbers.  Scale knobs:

* ``REPRO_BENCH_RUNS`` — trials averaged per table row (default 10;
  the paper used 250 for Tables 4-5).
* ``REPRO_BENCH_N`` — population for the uniform-network tables
  (default 1000, as in the paper).

Benchmarks run each driver once (``rounds=1``): the interesting output
is the table itself plus the wall-clock cost of regenerating it.
"""

import os

import pytest


@pytest.fixture(scope="session")
def bench_runs() -> int:
    return int(os.environ.get("REPRO_BENCH_RUNS", "10"))


@pytest.fixture(scope="session")
def bench_n() -> int:
    return int(os.environ.get("REPRO_BENCH_N", "1000"))


@pytest.fixture(scope="session")
def cin_network():
    from repro.topology.cin import build_cin_like_topology

    return build_cin_like_topology()


def run_once(benchmark, fn, *args, **kwargs):
    """Run a table generator exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
