"""Section 2 baseline comparison: acknowledgment GC vs dormant
certificates for tombstone storage.

The Sarin & Lynch approach retains each certificate until every site
is known to hold it.  With everyone up it reclaims storage quickly —
but a single down site blocks every in-flight determination, so
storage grows without bound until the site returns, and the
determination itself costs O(n^2) metadata.  The paper's
fixed-threshold + dormant scheme keeps storage bounded regardless.
"""

from conftest import run_once
from repro.cluster.cluster import Cluster
from repro.experiments.report import format_table
from repro.protocols.ackgc import AckBasedCertificateGC
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.base import ExchangeMode
from repro.protocols.deathcerts import CertificatePolicy, DeathCertificateManager

N = 40
DELETES = 15


def _base_cluster(seed):
    cluster = Cluster(n=N, seed=seed)
    cluster.add_protocol(
        AntiEntropyProtocol(config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL))
    )
    return cluster


def _run_deletion_wave(cluster, retention_count=0):
    for i in range(DELETES):
        cluster.inject_update(i % N, f"k{i}", i)
    cluster.run_until(
        lambda: cluster.converged(cluster.up_site_ids()), max_cycles=100
    )
    for i in range(DELETES):
        cluster.inject_delete(i % N, f"k{i}", retention_count=retention_count)
    cluster.run_cycles(40)


def _count_certs(cluster):
    return sum(
        1
        for s in cluster.up_site_ids()
        for __, entry in cluster.sites[s].store.entries()
        if entry.is_deletion
    )


def test_storage_comparison_with_a_down_site(benchmark):
    def run():
        rows = []
        # Acknowledgment GC, everyone up: reclaims fully.
        cluster = _base_cluster(seed=50)
        gc = AckBasedCertificateGC()
        cluster.add_protocol(gc)
        _run_deletion_wave(cluster)
        rows.append(("ack GC, all up", _count_certs(cluster), gc.metadata_size()))
        # Acknowledgment GC with one site down: blocked.
        cluster = _base_cluster(seed=51)
        gc = AckBasedCertificateGC()
        cluster.add_protocol(gc)
        cluster.sites[N - 1].up = False
        _run_deletion_wave(cluster)
        rows.append(
            ("ack GC, one site down", _count_certs(cluster), gc.metadata_size())
        )
        # Dormant scheme with the same down site: bounded.
        cluster = _base_cluster(seed=52)
        manager = DeathCertificateManager(CertificatePolicy(tau1=12.0, tau2=500.0))
        cluster.add_protocol(manager)
        cluster.sites[N - 1].up = False
        _run_deletion_wave(cluster, retention_count=3)
        dormant = sum(
            cluster.sites[s].store.dormant_count() for s in cluster.up_site_ids()
        )
        rows.append(
            (f"dormant r=3, one site down", _count_certs(cluster), dormant)
        )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["scheme", "active certificates held", "metadata / dormant copies"],
            rows,
            title=f"Tombstone storage after {DELETES} deletes, n={N}, 40 cycles",
        )
    )
    all_up, blocked, dormant = rows
    # Everyone up: ack GC reclaims everything.
    assert all_up[1] == 0
    # One site down: every certificate stuck at every up site.
    assert blocked[1] == DELETES * (N - 1)
    # Dormant scheme: active certificates all expired; only the bounded
    # dormant copies remain.
    assert dormant[1] == 0
    assert dormant[2] <= DELETES * 3
