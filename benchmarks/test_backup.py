"""Section 1.5: redistribution cost when the initial distribution
reached only half the sites.

Paper: redistribute-by-mail costs O(n^2) messages in this worst case
(the Clearinghouse had to disable it: 90,000 messages a night for a
300-site domain); making the update a hot rumor again costs a small
multiple of n and still guarantees delivery thanks to the anti-entropy
backup.
"""

from conftest import run_once
from repro.experiments.backup_scenarios import compare_recovery_strategies
from repro.experiments.report import format_table


def test_recovery_cost_comparison(benchmark, bench_runs):
    n = 150
    results = run_once(
        benchmark, compare_recovery_strategies, n=n, initial_coverage=0.5
    )
    print()
    print(
        format_table(
            ["strategy", "update sends", "mail messages", "cycles", "complete"],
            [
                (r.strategy, r.update_sends, r.mail_messages,
                 r.cycles_to_converge, r.converged)
                for r in results
            ],
            title=f"Section 1.5 recovery from 50% coverage, n={n}",
        )
    )
    by_name = {r.strategy: r for r in results}
    conservative = by_name["conservative"]
    hot_rumor = by_name["hot-rumor"]
    mail = by_name["redistribute-mail"]
    # All three strategies eventually deliver everywhere.
    assert conservative.converged and hot_rumor.converged and mail.converged
    # Mail redistribution explodes toward O(n^2)...
    assert mail.mail_messages > 3 * n
    # ... while hot-rumor recovery stays within a small multiple of n.
    assert hot_rumor.update_sends < 6 * n
    assert mail.mail_messages > 3 * hot_rumor.update_sends


def test_worst_case_coverage_sweep(benchmark):
    """Half coverage is the worst case for mail redistribution."""
    from repro.experiments.backup_scenarios import recovery_cost_experiment
    from repro.protocols.backup import RecoveryStrategy

    coverages = (0.1, 0.5, 0.9)

    def run():
        return [
            recovery_cost_experiment(
                n=100, initial_coverage=c,
                strategy=RecoveryStrategy.REDISTRIBUTE_MAIL, seed=77,
            )
            for c in coverages
        ]

    results = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["coverage", "mail messages"],
            [(c, r.mail_messages) for c, r in zip(coverages, results)],
            title="Mail redistribution cost vs initial coverage",
        )
    )
    # 50% coverage costs at least as much as the lopsided cases.
    assert results[1].mail_messages >= results[0].mail_messages * 0.5
    assert results[1].mail_messages >= results[2].mail_messages
