"""Section 2: deletion, death certificates, dormancy, reinstatement.

Four scenario benchmarks mirror the section's arguments:

1. naive deletion is resurrected; a certificate fixes it;
2. a fixed threshold tau1 reopens the window for old copies;
3. dormant certificates at r retention sites close it again
   (the paper's "immune reaction"), extending protected history by
   (tau - tau1) n / r for equal space;
4. reactivation via the activation timestamp never cancels a
   legitimate reinstatement.
"""

from conftest import run_once
from repro.experiments.deathcert_scenarios import (
    dormant_certificate_scenario,
    fixed_threshold_scenario,
    reinstatement_scenario,
    resurrection_scenario,
    space_comparison,
)
from repro.experiments.report import format_table


def test_resurrection_vs_certificate(benchmark):
    naive, certified = run_once(
        benchmark,
        lambda: (
            resurrection_scenario(use_certificate=False),
            resurrection_scenario(use_certificate=True),
        ),
    )
    print()
    print(
        format_table(
            ["scheme", "item resurrected?"],
            [
                (naive.description, naive.resurrected),
                (certified.description, certified.resurrected),
            ],
            title="Scenario 1: deleting without vs with a death certificate",
        )
    )
    assert naive.resurrected
    assert not certified.resurrected


def test_fixed_threshold_window(benchmark):
    result = run_once(benchmark, fixed_threshold_scenario)
    print(f"\n{result.description}: resurrected={result.resurrected} "
          f"after {result.cycles} cycles")
    assert result.resurrected  # the paper's stated risk


def test_dormant_certificates_block_late_resurrection(benchmark):
    result = run_once(benchmark, dormant_certificate_scenario)
    print(f"\n{result.description}: resurrected={result.resurrected}, "
          f"reactivations={result.reactivations}")
    assert not result.resurrected
    assert result.reactivations > 0


def test_reinstatement_survives_reactivation(benchmark):
    result = run_once(benchmark, reinstatement_scenario)
    print(f"\n{result.description}: ok={result.value_visible_everywhere}, "
          f"reactivations={result.reactivations}")
    assert result.value_visible_everywhere
    assert result.reactivations > 0


def test_space_budget_extension(benchmark):
    """30 days of flat history becomes years of dormant history."""
    tau2 = run_once(benchmark, space_comparison, n=300, tau=30.0, tau1=10.0, r=4)
    print(f"\nequal-space dormant window tau2 = {tau2:g} days "
          f"(vs 20 days of flat history)")
    assert tau2 == 1500.0  # (30-10) * 300 / 4: a 75x extension
