"""Section 1.2 baseline: direct mail's cost and failure modes, plus the
remailing blow-up that motivated this whole line of work (Section 0.1).
"""

import pytest

from conftest import run_once
from repro.experiments.baselines import (
    direct_mail_experiment,
    remail_blowup_experiment,
)
from repro.experiments.report import format_table


def test_direct_mail_cost_and_reliability(benchmark, bench_runs):
    def run():
        return [
            direct_mail_experiment(
                n=300, loss_probability=loss, runs=bench_runs, seed=80
            )
            for loss in (0.0, 0.02, 0.10)
        ]

    results = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["loss prob", "messages/update", "delivered", "residue"],
            [
                (loss, r.messages_per_update, r.delivery_ratio, r.residue)
                for loss, r in zip((0.0, 0.02, 0.10), results)
            ],
            title="Direct mail: n messages per update, residue tracks loss",
        )
    )
    perfect, small_loss, big_loss = results
    assert perfect.messages_per_update == pytest.approx(299)
    assert perfect.residue == 0.0
    assert small_loss.residue == pytest.approx(0.02, abs=0.02)
    assert big_loss.residue == pytest.approx(0.10, abs=0.04)


def test_incomplete_membership_knowledge(benchmark, bench_runs):
    """The second failure mode: the source does not know all of S."""
    result = run_once(
        benchmark, direct_mail_experiment,
        n=200, loss_probability=0.0, known_fraction=0.7,
        runs=bench_runs, seed=81,
    )
    print(f"\nknown_fraction=0.7: residue={result.residue:.3f}")
    assert result.residue == pytest.approx(0.3, abs=0.05)


def test_remailing_step_blowup(benchmark):
    """Section 0.1: anti-entropy + remail-on-disagreement melts the
    network; for a 300-site domain the paper saw 90,000 nightly
    messages.  We reproduce the quadratic shape at n=120."""
    result = run_once(benchmark, remail_blowup_experiment, n=120)
    print(f"\nn={result.n}: with remail {result.messages_with_remail} messages, "
          f"without {result.messages_without_remail}")
    assert result.messages_without_remail == 0
    assert result.messages_with_remail > 10 * result.n
