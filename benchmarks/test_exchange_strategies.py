"""Section 1.3 ablation: what one anti-entropy conversation costs under
the three exchange strategies.

* full compare always walks the whole key union;
* checksum + recent-update list examines only the recent window when
  tau exceeds the distribution time — and degrades to worse than full
  compare when tau is too small (the paper's explicit warning);
* peel back examines only down to the divergence point.
"""

import pytest

from conftest import run_once
from repro.core.store import ReplicaStore
from repro.core.timestamps import SequenceClock
from repro.experiments.report import format_table
from repro.protocols.base import ExchangeMode
from repro.protocols.exchange import ChecksumWithRecent, FullCompare, PeelBack

DB_SIZE = 400
RECENT = 5


def build_pair():
    """Two replicas sharing a large synced history plus a few recent
    private updates each."""
    a = ReplicaStore(site_id=0, clock=SequenceClock(site=0))
    b = ReplicaStore(site_id=1, clock=SequenceClock(site=1, start=0.5))
    for i in range(DB_SIZE):
        update = a.update(f"key-{i}", i)
        b.apply_entry(update.key, update.entry)
        b.clock.next_timestamp()  # keep the clocks roughly in step
    for i in range(RECENT):
        a.update(f"recent-a-{i}", i)
        b.update(f"recent-b-{i}", i)
    return a, b


@pytest.mark.parametrize(
    "label,strategy",
    [
        ("full-compare", FullCompare()),
        ("checksum tau=50", ChecksumWithRecent(tau=50.0)),
        ("peel-back", PeelBack()),
    ],
)
def test_strategy_converges(benchmark, label, strategy):
    def run():
        a, b = build_pair()
        report = strategy.exchange(a, b, ExchangeMode.PUSH_PULL)
        assert a.agrees_with(b)
        return report

    report = run_once(benchmark, run)
    print(
        f"\n{label}: examined {report.entries_examined} entries, "
        f"shipped {report.updates_shipped}, full_compare={report.full_compare}"
    )


def test_cost_ordering(benchmark):
    def run():
        costs = {}
        for label, strategy in [
            ("full", FullCompare()),
            ("checksum", ChecksumWithRecent(tau=50.0)),
            ("peelback", PeelBack()),
        ]:
            a, b = build_pair()
            report = strategy.exchange(a, b, ExchangeMode.PUSH_PULL)
            costs[label] = report.entries_examined
        return costs

    costs = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["strategy", "entries examined"],
            sorted(costs.items()),
            title=f"Exchange cost, {DB_SIZE}-entry database, {2 * RECENT} recent diffs",
        )
    )
    # Full compare walks the whole database; the smart strategies don't.
    assert costs["full"] >= DB_SIZE
    # checksum+recent examines the recent window (~2 x tau entries),
    # peel back only down to the divergence point.
    assert costs["checksum"] < DB_SIZE / 2
    assert costs["peelback"] < DB_SIZE / 8
    assert costs["peelback"] <= costs["checksum"] <= costs["full"]


def test_checksum_with_bad_tau_degrades(benchmark):
    """tau below the distribution time: checksums usually disagree and
    traffic rises to slightly above plain anti-entropy."""
    def run():
        a, b = build_pair()
        # Age everything so nothing falls inside the recent window.
        for __ in range(200):
            a.clock.next_timestamp()
            b.clock.next_timestamp()
        report = ChecksumWithRecent(tau=1.0).exchange(a, b, ExchangeMode.PUSH_PULL)
        assert a.agrees_with(b)
        return report

    report = run_once(benchmark, run)
    print(f"\nbad tau: examined {report.entries_examined}, "
          f"full_compare={report.full_compare}")
    assert report.full_compare
    assert report.entries_examined >= DB_SIZE
