"""Section 4 extension: does a dynamic hierarchy beat flat spatial
selection on the synthetic CIN?

The hypothesis the paper closes with: long-range gossip confined to a
small backbone should recover near-uniform convergence at near-spatial
traffic.  We compare uniform, sorted-list a=2.0, and the hierarchy.
"""

from conftest import run_once
from repro.experiments.report import format_table
from repro.experiments.spatial import spatial_table
from repro.topology.distance import SiteDistances
from repro.topology.hierarchy import HierarchicalSelector
from repro.topology.spatial import SortedListSelector, UniformSelector

HEADERS = ["selector", "t_last", "t_ave", "cmp avg", "cmp Bushey", "upd avg", "upd Bushey"]


def test_hierarchy_vs_flat_selectors(benchmark, bench_runs, cin_network):
    distances = SiteDistances(cin_network.topology)
    selectors = [
        ("uniform", UniformSelector(cin_network.sites)),
        ("a=2.0", SortedListSelector(distances, a=2.0)),
        (
            "hierarchy",
            HierarchicalSelector(
                distances, backbone_count=16, long_range_probability=0.5
            ),
        ),
    ]
    rows = run_once(
        benchmark, spatial_table,
        cin=cin_network, runs=bench_runs, selectors=selectors,
    )
    print()
    print(
        format_table(
            HEADERS,
            [r.as_tuple() for r in rows],
            title="Uniform vs spatial vs dynamic hierarchy (synthetic CIN)",
        )
    )
    uniform, spatial, hierarchy = rows
    assert all(r.incomplete_runs == 0 for r in rows)
    # The hierarchy converges faster than flat a=2.0 ...
    assert hierarchy.t_last < spatial.t_last
    # ... while keeping average traffic well below uniform ...
    assert hierarchy.compare_avg < 0.8 * uniform.compare_avg
    # ... and keeping the critical link far below uniform levels.
    assert hierarchy.compare_special < 0.5 * uniform.compare_special
