"""Section 1.5's combined scheme: peel back + rumor lists.

The paper's claims: it needs no timestamp index, it behaves well when
a partition heals, and — unlike rumor mongering — it has no failure
probability.  We also compare its steady-state exchange cost against
plain full-compare anti-entropy.
"""

from conftest import run_once
from repro.cluster.cluster import Cluster
from repro.experiments.report import format_table
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.base import ExchangeMode
from repro.protocols.hotlist import HotListProtocol
from repro.sim.rng import derive_seed


def test_no_failure_probability(benchmark, bench_runs):
    """Every seed reaches 100% coverage (contrast with Figure 1/2)."""
    n = 100

    def run():
        incomplete = 0
        for trial in range(bench_runs):
            cluster = Cluster(n=n, seed=derive_seed(90, trial))
            cluster.add_protocol(HotListProtocol(batch_size=4))
            cluster.inject_update(0, "k", "v", track=True)
            cluster.run_until(
                lambda: cluster.metrics.infected == n, max_cycles=200
            )
            if not cluster.metrics.complete:
                incomplete += 1
        return incomplete

    incomplete = run_once(benchmark, run)
    assert incomplete == 0


def test_steady_state_cost_vs_full_anti_entropy(benchmark):
    """With a large synced database and a trickle of fresh updates, the
    hot-list scheme ships the fresh data, not the database."""
    n = 20
    history = 100

    def build(protocol):
        cluster = Cluster(n=n, seed=91)
        cluster.add_protocol(protocol)
        for i in range(history):
            cluster.inject_update(i % n, f"base-{i}", i)
        cluster.run_until(cluster.converged, max_cycles=400)
        return cluster

    def run():
        hot = HotListProtocol(batch_size=4)
        cluster = build(hot)
        before = hot.stats.updates_shipped
        for i in range(5):
            cluster.inject_update(i, f"fresh-{i}", i)
        cluster.run_until(cluster.converged, max_cycles=100)
        hot_cost = hot.stats.updates_shipped - before

        anti = AntiEntropyProtocol(
            config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL, synchronous=False)
        )
        cluster2 = build(anti)
        before_examined = anti.stats.entries_examined
        for i in range(5):
            cluster2.inject_update(i, f"fresh-{i}", i)
        cluster2.run_until(cluster2.converged, max_cycles=100)
        anti_examined = anti.stats.entries_examined - before_examined
        return hot_cost, anti_examined

    hot_cost, anti_examined = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["scheme", "work after 5 fresh updates"],
            [
                ("hot-list (updates shipped)", hot_cost),
                ("full-compare anti-entropy (entries examined)", anti_examined),
            ],
            title=f"Steady-state cost, {history}-entry database, n={n}",
        )
    )
    # Full compare walks ~105 entries per exchange, n exchanges/cycle;
    # the hot-list scheme ships a few updates per exchange instead.
    assert hot_cost < anti_examined / 10


def test_partition_heal_traffic(benchmark):
    """After a partition heals, the scheme re-learns exactly the missed
    updates plus a modest batching overhead."""
    def run():
        cluster = Cluster(n=30, seed=92)
        protocol = HotListProtocol(batch_size=4)
        cluster.add_protocol(protocol)
        for i in range(40):
            cluster.inject_update(i % 30, f"base-{i}", i)
        cluster.run_until(cluster.converged, max_cycles=300)
        for site in range(25, 30):
            cluster.sites[site].up = False
        for i in range(10):
            cluster.inject_update(i, f"during-{i}", i)
        cluster.run_until(
            lambda: cluster.converged(cluster.up_site_ids()), max_cycles=200
        )
        shipped_before = protocol.stats.updates_shipped
        for site in range(25, 30):
            cluster.sites[site].up = True
        cluster.run_until(cluster.converged, max_cycles=200)
        return protocol.stats.updates_shipped - shipped_before

    heal_traffic = run_once(benchmark, run)
    print(f"\nupdates shipped to heal 5 sites x 10 missed updates: {heal_traffic}")
    # 50 update deliveries are necessary; allow batching overhead but
    # nothing near a full 50-entry database resend per exchange.
    assert heal_traffic < 50 * 20
