"""Section 3: the traffic/convergence tradeoff for d^-a on a line.

The paper's asymptotic table:

    T(n) = O(n)         a < 1
           O(n/log n)   a = 1
           O(n^{2-a})   1 < a < 2
           O(log n)     a = 2
           O(1)         a > 2

with convergence flipping the other way — the reason d^-2 is the sweet
spot on a line.  We check both the exact analytic expectation and
simulated anti-entropy runs.
"""

import pytest

from conftest import run_once
from repro.analysis.traffic import (
    expected_mean_link_traffic,
    line_traffic_class,
    theoretical_growth,
)
from repro.experiments.report import format_table
from repro.experiments.spatial import line_scaling


def test_analytic_traffic_scaling(benchmark):
    ns = (50, 100, 200, 400)
    a_values = (0.0, 1.0, 1.5, 2.0, 3.0)

    def run():
        return {
            a: [expected_mean_link_traffic(n, a) for n in ns] for a in a_values
        }

    table = run_once(benchmark, run)
    rows = [
        (f"a={a:g} {line_traffic_class(a)}",) + tuple(table[a]) for a in a_values
    ]
    print()
    print(
        format_table(
            ["distribution"] + [f"n={n}" for n in ns],
            rows,
            title="Analytic mean link traffic per cycle (line network)",
        )
    )
    for a in a_values:
        measured_ratio = table[a][-1] / table[a][0]
        predicted_ratio = theoretical_growth(ns[-1], a) / theoretical_growth(ns[0], a)
        assert measured_ratio == pytest.approx(predicted_ratio, rel=0.5)


def test_simulated_line_tradeoff(benchmark, bench_runs):
    runs = max(2, bench_runs // 3)
    rows = run_once(
        benchmark, line_scaling,
        ns=(32, 64, 128), a_values=(0.0, 2.0, 3.0), runs=runs,
    )
    print()
    print(
        format_table(
            ["n", "a", "link traffic/cycle", "t_last"],
            [(r.n, r.a, r.mean_link_traffic, r.t_last) for r in rows],
            title="Simulated anti-entropy on a line",
        )
    )
    by_key = {(r.n, r.a): r for r in rows}
    # Traffic: uniform grows ~linearly; a=2 barely grows; a=3 flat.
    assert (
        by_key[(128, 0.0)].mean_link_traffic
        > 2.5 * by_key[(32, 0.0)].mean_link_traffic
    )
    assert (
        by_key[(128, 3.0)].mean_link_traffic
        < 2.0 * by_key[(32, 3.0)].mean_link_traffic
    )
    # Convergence: a=3 pays in time; uniform is fastest.
    for n in (32, 64, 128):
        assert by_key[(n, 0.0)].t_last <= by_key[(n, 3.0)].t_last
    # a=3 convergence degrades super-logarithmically: quadrupling n
    # should much more than double t_last (polynomial regime).
    assert by_key[(128, 3.0)].t_last > 1.8 * by_key[(32, 3.0)].t_last
