"""Exact Markov chains vs simulation vs asymptotics (Section 1.3).

For simple epidemics the infected count is a Markov chain with a
computable transition law, so expected convergence times can be
calculated exactly — a ground truth in between the stochastic
simulation and Pittel's asymptotic formula.
"""

import pytest

from conftest import run_once
from repro.analysis.epidemic_theory import pittel_push_cycles
from repro.analysis.markov import expected_cycles_to_complete
from repro.cluster.cluster import Cluster
from repro.experiments.report import format_table
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.base import ExchangeMode
from repro.sim.metrics import mean
from repro.sim.rng import derive_seed

MODES = {
    "push": ExchangeMode.PUSH,
    "pull": ExchangeMode.PULL,
    "push-pull": ExchangeMode.PUSH_PULL,
}


def simulate_cycles(n, mode, runs, seed):
    counts = []
    for run in range(runs):
        cluster = Cluster(n=n, seed=derive_seed(seed, run))
        cluster.add_protocol(
            AntiEntropyProtocol(config=AntiEntropyConfig(mode=mode))
        )
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_until(lambda: cluster.metrics.infected == n, max_cycles=200)
        counts.append(cluster.metrics.t_last)
    return mean(counts)


def test_exact_chain_vs_simulation_vs_pittel(benchmark, bench_runs):
    n = 128

    def run():
        rows = []
        for label, mode in MODES.items():
            exact = expected_cycles_to_complete(n, label)
            simulated = simulate_cycles(n, mode, bench_runs, seed=hash(label) % 999)
            pittel = pittel_push_cycles(n) if label == "push" else float("nan")
            rows.append((label, exact, simulated, pittel))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["mode", "exact E[cycles]", "simulated mean", "log2 n + ln n"],
            rows,
            title=f"Simple-epidemic convergence, n={n}",
        )
    )
    for label, exact, simulated, __ in rows:
        assert simulated == pytest.approx(exact, rel=0.2), label
    by_mode = {label: exact for label, exact, __, ___ in rows}
    # push-pull is strictly the fastest; push and pull are close at
    # this size (their difference lives in the endgame constants).
    assert by_mode["push-pull"] < min(by_mode["push"], by_mode["pull"])
    # Pittel tracks the exact push value.
    assert pittel_push_cycles(n) == pytest.approx(by_mode["push"], rel=0.2)


def test_exact_scaling_is_logarithmic(benchmark):
    def run():
        return {
            n: expected_cycles_to_complete(n, "push-pull") for n in (32, 128, 512)
        }

    values = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["n", "exact E[cycles] (push-pull)"],
            sorted(values.items()),
        )
    )
    # Quadrupling n adds a roughly constant number of cycles.
    first_gap = values[128] - values[32]
    second_gap = values[512] - values[128]
    assert second_gap == pytest.approx(first_gap, abs=1.0)
