"""Figures 1 and 2 (Section 3.2): spatial rumor mongering failures.

Figure 1: two nearby sites s, t far from m equidistant sites.  With a
Q^-2 distribution and m > k, push rumors born at s die inside {s, t}
with significant probability; pull leaves {s, t} starved of updates
born in the main group.

Figure 2: a lone site beyond a binary tree's height is missed by push.

The paper's remedy — back rumor mongering with anti-entropy — must
drive failures to zero, and raising k must shrink the failure rate
(the paper needed k=36 for plain push at a=1.2 on the real CIN).
"""

from conftest import run_once
from repro.experiments.pathologies import (
    backup_fixes_pathology,
    figure1_experiment,
    figure1_pull_experiment,
    figure2_experiment,
)
from repro.experiments.report import format_table


def test_figure1_push_dies_in_the_pair(benchmark, bench_runs):
    trials = bench_runs * 5
    result = run_once(benchmark, figure1_experiment, m=20, k=2, trials=trials)
    print()
    print(
        format_table(
            ["experiment", "trials", "failures", "died in {s,t}"],
            [("fig1 push k=2", result.trials, result.failures, result.died_in_pair)],
            title="Figure 1 (push, Q^-2 distribution)",
        )
    )
    assert result.failure_rate > 0.3
    assert result.died_in_pair > 0


def test_figure1_pull_starves_the_pair(benchmark, bench_runs):
    trials = bench_runs * 5
    result = run_once(benchmark, figure1_pull_experiment, m=20, k=1, trials=trials)
    print()
    print(
        format_table(
            ["experiment", "trials", "failures", "pair missed"],
            [("fig1 pull k=1", result.trials, result.failures, result.died_in_pair)],
        )
    )
    assert result.failures > 0
    assert result.died_in_pair > 0


def test_figure2_push_misses_lonely_site(benchmark, bench_runs):
    trials = bench_runs * 3
    result = run_once(
        benchmark, figure2_experiment, depth=5, spur_length=8, k=2, trials=trials
    )
    print()
    print(
        format_table(
            ["experiment", "trials", "failures", "s missed"],
            [("fig2 push k=2", result.trials, result.failures, result.missed_lonely)],
        )
    )
    assert result.missed_lonely > 0


def test_increasing_k_compensates(benchmark, bench_runs):
    """The paper's tuning knob: failures shrink as k grows."""
    trials = bench_runs * 3
    rates = run_once(benchmark, lambda: [
        figure1_experiment(m=20, k=k, trials=trials, seed=70 + k).failure_rate
        for k in (1, 4, 16)
    ])
    print()
    print(
        format_table(
            ["k", "failure rate"],
            list(zip((1, 4, 16), rates)),
            title="Figure 1 failure rate vs k",
        )
    )
    assert rates[2] < rates[0]


def test_anti_entropy_backup_eliminates_failures(benchmark, bench_runs):
    result = run_once(
        benchmark, backup_fixes_pathology, m=20, k=1, trials=bench_runs
    )
    assert result.failures == 0
