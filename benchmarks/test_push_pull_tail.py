"""Section 1.3 analysis: the anti-entropy endgame and Pittel's bound.

With few susceptibles left, pull obeys p_{i+1} = p_i^2 while push only
achieves p_{i+1} ~ p_i / e.  And a push simple epidemic from a single
seed takes ~ log2(n) + ln(n) cycles.
"""

import math

import pytest

from conftest import run_once
from repro.analysis.recurrences import pull_tail, push_tail
from repro.experiments.baselines import anti_entropy_tail, push_epidemic_cycles
from repro.experiments.report import format_table
from repro.protocols.base import ExchangeMode


def test_endgame_simulation_matches_recurrences(benchmark, bench_n):
    start = 0.1

    def run():
        pull = anti_entropy_tail(
            n=bench_n * 2, initial_susceptible=start,
            mode=ExchangeMode.PULL, seed=50,
        )
        push = anti_entropy_tail(
            n=bench_n * 2, initial_susceptible=start,
            mode=ExchangeMode.PUSH, seed=50,
        )
        return pull, push

    pull, push = run_once(benchmark, run)
    pull_predicted = pull_tail(start, 6)
    push_predicted = push_tail(start, n=bench_n * 2, cycles=6)
    rows = []
    for i in range(min(5, len(pull.fractions), len(push.fractions))):
        rows.append(
            (i, pull.fractions[i], pull_predicted[i],
             push.fractions[i], push_predicted[i])
        )
    print()
    print(
        format_table(
            ["cycle", "pull sim", "pull p^2", "push sim", "push rec"],
            rows,
            title="Anti-entropy endgame: simulated vs recurrence",
        )
    )
    # Pull: one cycle squares the susceptible fraction.
    assert pull.fractions[1] == pytest.approx(pull_predicted[1], abs=0.02)
    # Push: one cycle shrinks by roughly e.
    assert push.fractions[1] == pytest.approx(push_predicted[1], abs=0.03)
    # Pull wipes out the residue in a couple of cycles; push lingers.
    assert pull.cycles_to_zero() < 6
    assert push.fractions[3] > 0


def test_push_pull_ordering_across_seeds(benchmark, bench_n):
    """Pull's endgame dominance is not a one-seed artifact."""
    wins = run_once(benchmark, _count_pull_wins, bench_n)
    assert wins >= 4


def _count_pull_wins(bench_n):
    wins = 0
    for seed in range(5):
        pull = anti_entropy_tail(
            n=bench_n, initial_susceptible=0.1, mode=ExchangeMode.PULL,
            seed=seed, max_cycles=4,
        )
        push = anti_entropy_tail(
            n=bench_n, initial_susceptible=0.1, mode=ExchangeMode.PUSH,
            seed=seed, max_cycles=4,
        )
        if pull.fractions[-1] <= push.fractions[-1]:
            wins += 1
    return wins


def test_pittel_bound(benchmark, bench_runs):
    result = run_once(benchmark, push_epidemic_cycles, n=1024, runs=bench_runs)
    print()
    print(
        format_table(
            ["n", "measured cycles", "log2 n + ln n"],
            [(result.n, result.mean_cycles, result.pittel_prediction)],
            title="Push simple epidemic vs Pittel",
        )
    )
    assert result.mean_cycles == pytest.approx(result.pittel_prediction, rel=0.3)


def test_pittel_scaling_with_n(benchmark, bench_runs):
    def run():
        rows = []
        for n in (128, 512, 2048):
            result = push_epidemic_cycles(n=n, runs=max(3, bench_runs // 2), seed=60)
            rows.append((n, result.mean_cycles, result.pittel_prediction))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(["n", "measured", "predicted"], rows))
    # Measured growth per 4x population is logarithmic: ~ 2 + ln 4.
    growth = rows[2][1] - rows[0][1]
    predicted_growth = rows[2][2] - rows[0][2]
    assert growth == pytest.approx(predicted_growth, abs=3.0)
