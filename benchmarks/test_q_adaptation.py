"""Section 3 / 3.1: Q_s(d)-based distributions adapt to the network's
local dimension.

On a D-dimensional mesh ``Q_s(d) = Theta(d^D)``, so ``1/Q_s(d)^2`` is
``Theta(d^-2D)`` *regardless of D* — one distribution, correct scaling
everywhere.  A fixed ``d^-2`` is right on a line but far too loose on
a 2-D mesh (where the good range is ``d^-3`` .. ``d^-4``).  The
paper's preliminary finding, reproduced here: Q-parameterized
distributions travel across topologies, and ``1/Q^2`` outperforms
``1/(d Q)``.
"""

import pytest

from conftest import run_once
from repro.experiments.report import format_table
from repro.experiments.spatial import run_anti_entropy_trial
from repro.sim.metrics import mean
from repro.sim.rng import derive_seed
from repro.topology import builders
from repro.topology.distance import SiteDistances
from repro.topology.spatial import (
    DistancePowerSelector,
    QDistanceSelector,
    QPowerSelector,
)


def _measure(topology, selector, runs, seed):
    link_count = topology.edge_count
    t_lasts, traffics = [], []
    for run in range(runs):
        trial = run_anti_entropy_trial(
            topology, selector, seed=derive_seed(seed, run), max_cycles=2000
        )
        t_lasts.append(trial.t_last)
        traffics.append(trial.compare_total / (link_count * trial.cycles))
    return mean(t_lasts), mean(traffics)


def test_q_distribution_adapts_to_dimension(benchmark, bench_runs):
    """The same 1/Q^2 rule gives near-d^-2 behavior on a line and
    near-d^-4 behavior on a mesh; fixed d^-2 does not adapt."""
    runs = max(3, bench_runs // 3)
    line = builders.line(64)
    mesh = builders.grid(10, 10)

    def run():
        rows = []
        for name, topo in (("line-64", line), ("mesh-10x10", mesh)):
            distances = SiteDistances(topo)
            for label, selector in (
                ("d^-2", DistancePowerSelector(distances, a=2.0)),
                ("1/Q^2", QPowerSelector(distances, a=2.0)),
            ):
                t_last, traffic = _measure(topo, selector, runs, seed=hash((name, label)) % 10_000)
                rows.append((name, label, t_last, traffic))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["topology", "distribution", "t_last", "link traffic/cycle"],
            rows,
            title="Q-based selection adapts to local dimension",
        )
    )
    values = {(topo, dist): (t, tr) for topo, dist, t, tr in rows}
    # On the line the two behave comparably (Q(d) ~ 2d there) ...
    line_ratio = values[("line-64", "1/Q^2")][1] / values[("line-64", "d^-2")][1]
    assert 0.4 < line_ratio < 2.5
    # ... but on the mesh, d^-2 is too loose: it pays noticeably more
    # traffic per link than the dimension-adapted 1/Q^2.
    assert (
        values[("mesh-10x10", "d^-2")][1]
        > 1.3 * values[("mesh-10x10", "1/Q^2")][1]
    )


def test_q_squared_outperforms_d_times_q(benchmark, bench_runs, cin_network):
    """'In particular, 1/Q_s(d)^2 outperforms 1/(d Q_s(d))' — at
    matched convergence, Q^-2 puts less load on the critical link."""
    runs = max(3, bench_runs // 3)
    distances = SiteDistances(cin_network.topology)
    link_count = cin_network.topology.edge_count

    def run():
        results = {}
        for label, selector in (
            ("1/(d*Q)", QDistanceSelector(distances)),
            ("1/Q^2", QPowerSelector(distances, a=2.0)),
        ):
            t_lasts, bushey = [], []
            for trial_index in range(runs):
                trial = run_anti_entropy_trial(
                    cin_network.topology,
                    selector,
                    seed=derive_seed(17, label, trial_index),
                    special_link=cin_network.bushey,
                )
                t_lasts.append(trial.t_last)
                bushey.append(trial.compare_special / trial.cycles)
            results[label] = (mean(t_lasts), mean(bushey))
        return results

    results = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["distribution", "t_last", "cmp Bushey/cycle"],
            [(k, v[0], v[1]) for k, v in results.items()],
            title="1/Q^2 vs 1/(d*Q) on the synthetic CIN",
        )
    )
    # Q^-2 is the more local distribution: far less critical-link load
    # for a bounded convergence cost.
    assert results["1/Q^2"][1] < 0.7 * results["1/(d*Q)"][1]
    assert results["1/Q^2"][0] < 3.0 * results["1/(d*Q)"][0]
