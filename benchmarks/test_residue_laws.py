"""Section 1.4's residue laws.

* The rumor ODE's fixed point s = e^{-(k+1)(1-s)}: ~20% miss at k=1,
  ~6% at k=2 — checked against stochastic simulation.
* The s = e^{-m} traffic law shared by the push variants.
* Connection limit 1 *improves* push (s = e^{-lambda m} with
  lambda = 1/(1 - e^{-1})), and hunting improves it further.
"""

import math

import pytest

from conftest import run_once
from repro.analysis.epidemic_theory import (
    connection_limited_push_lambda,
    residue_from_traffic,
    rumor_residue,
)
from repro.experiments.report import format_table
from repro.experiments.tables import run_rumor_trial
from repro.protocols.base import ExchangeMode
from repro.protocols.rumor import RumorConfig
from repro.sim.metrics import mean
from repro.sim.transport import ConnectionPolicy


def _average_run(n, config, runs, seed0):
    residues, traffics = [], []
    for run in range(runs):
        metrics = run_rumor_trial(n, config, seed=seed0 + run)
        residues.append(metrics.residue)
        traffics.append(metrics.traffic_per_site)
    return mean(residues), mean(traffics)


def test_ode_fixed_point_matches_simulation(benchmark, bench_n, bench_runs):
    """Feedback+coin simulation lands on the ODE's residue."""
    def run():
        rows = []
        for k in (1, 2):
            config = RumorConfig(
                mode=ExchangeMode.PUSH, feedback=True, counter=False, k=k
            )
            residue, traffic = _average_run(bench_n, config, bench_runs, 900 + k)
            rows.append((k, residue, rumor_residue(k)))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["k", "simulated residue", "ODE fixed point"],
            rows,
            title="Rumor ODE vs simulation (feedback+coin push)",
        )
    )
    for k, simulated, predicted in rows:
        assert simulated == pytest.approx(predicted, abs=0.12)


def test_push_traffic_law(benchmark, bench_n, bench_runs):
    """s = e^-m across the push design space."""
    variants = [
        ("feedback+counter", RumorConfig(mode=ExchangeMode.PUSH, k=2)),
        ("feedback+coin", RumorConfig(mode=ExchangeMode.PUSH, counter=False, k=3)),
        ("blind+coin", RumorConfig(mode=ExchangeMode.PUSH, feedback=False,
                                   counter=False, k=4)),
        ("blind+counter", RumorConfig(mode=ExchangeMode.PUSH, feedback=False,
                                      counter=True, k=5)),
    ]

    def run():
        rows = []
        for label, config in variants:
            residue, traffic = _average_run(
                bench_n, config, bench_runs, hash(label) % 1000
            )
            rows.append((label, residue, traffic, residue_from_traffic(traffic)))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["variant", "residue", "m", "e^-m"],
            rows,
            title="The s = e^-m law across push variants",
        )
    )
    for label, residue, traffic, law in rows:
        if residue > 1e-3:
            assert 0.25 < residue / law < 4.0, label


def test_connection_limit_improves_push(benchmark, bench_n, bench_runs):
    """Paradox of Section 1.4: limit 1 makes push *better* per unit
    traffic, approaching s = e^{-lambda m}."""
    config_free = RumorConfig(mode=ExchangeMode.PUSH, k=2)
    config_limited = RumorConfig(
        mode=ExchangeMode.PUSH, k=2,
        policy=ConnectionPolicy(connection_limit=1, hunt_limit=0),
    )

    def run():
        free = _average_run(bench_n, config_free, bench_runs, 300)
        limited = _average_run(bench_n, config_limited, bench_runs, 400)
        return free, limited

    (free_s, free_m), (lim_s, lim_m) = run_once(benchmark, run)
    lam = connection_limited_push_lambda()
    print()
    print(
        format_table(
            ["variant", "residue", "m", "e^-m", "e^-lambda*m"],
            [
                ("no limit", free_s, free_m, math.exp(-free_m), math.exp(-lam * free_m)),
                ("limit 1", lim_s, lim_m, math.exp(-lim_m), math.exp(-lam * lim_m)),
            ],
            title="Connection limit 1 helps push",
        )
    )
    # The limited variant's residue beats the unlimited law e^-m at its
    # own traffic level — the connection limit converted rejected
    # (useless) contacts into saved transmissions.
    assert lim_s < math.exp(-lim_m)
    # And it tracks the predicted e^{-lambda m} within a broad factor.
    predicted = math.exp(-lam * lim_m)
    if lim_s > 0 and predicted > 1e-6:
        assert 0.05 < lim_s / predicted < 20.0


def test_hunting_improves_connection_limited_push(benchmark, bench_n, bench_runs):
    def residue_with_hunt(hunt):
        config = RumorConfig(
            mode=ExchangeMode.PUSH, k=2,
            policy=ConnectionPolicy(connection_limit=1, hunt_limit=hunt),
        )
        residue, __ = _average_run(bench_n, config, bench_runs, 500 + hunt)
        return residue

    no_hunt, hunting = run_once(
        benchmark, lambda: (residue_with_hunt(0), residue_with_hunt(8))
    )
    print(f"\nresidue: hunt=0 {no_hunt:.4f}  hunt=8 {hunting:.4f}")
    assert hunting <= no_hunt + 0.01


def test_minimization_has_smallest_residue(benchmark, bench_n, bench_runs):
    """'It results in the smallest residue we have seen so far.'

    Counter minimization spends its counters where they matter, so at
    *matched or lower traffic* it beats the plain push-pull variant:
    minimization at k=2 uses less traffic than plain k=1 yet leaves
    orders of magnitude fewer susceptibles.
    """
    plain = RumorConfig(mode=ExchangeMode.PUSH_PULL, k=1)
    minimized = RumorConfig(mode=ExchangeMode.PUSH_PULL, k=2, minimization=True)
    runs = max(bench_runs, 8)

    def run():
        return (
            _average_run(bench_n, plain, runs, 600),
            _average_run(bench_n, minimized, runs, 700),
        )

    (plain_s, plain_m), (min_s, min_m) = run_once(benchmark, run)
    print(f"\npush-pull: plain k=1 s={plain_s:.2e} (m={plain_m:.1f})  "
          f"minimization k=2 s={min_s:.2e} (m={min_m:.1f})")
    assert min_m < plain_m            # cheaper...
    assert min_s < plain_s            # ...and more complete


def test_connection_limit_hurts_pull(benchmark, bench_n, bench_runs):
    """Pull's power needs every site served every cycle; with a limit,
    'pull gets significantly worse' (Section 1.4)."""
    free = RumorConfig(mode=ExchangeMode.PULL, k=2)
    limited = RumorConfig(
        mode=ExchangeMode.PULL, k=2,
        policy=ConnectionPolicy(connection_limit=1, hunt_limit=0),
    )

    def run():
        return (
            _average_run(bench_n, free, bench_runs, 810),
            _average_run(bench_n, limited, bench_runs, 820),
        )

    (free_s, free_m), (lim_s, lim_m) = run_once(benchmark, run)
    print(f"\npull k=2: no limit s={free_s:.2e} (m={free_m:.1f})  "
          f"limit 1 s={lim_s:.2e} (m={lim_m:.1f})")
    # The residue degrades by a large factor under the limit.
    assert lim_s > max(free_s * 3, 1e-4)


def test_permutation_limit_makes_push_and_pull_equivalent(
    benchmark, bench_n, bench_runs
):
    """Connection limit 1 with a generous hunt limit yields a complete
    permutation of conversations, making push and pull equivalent with
    very small residue (Section 1.4, 'Hunting')."""
    policy = ConnectionPolicy(connection_limit=1, hunt_limit=200)
    push = RumorConfig(mode=ExchangeMode.PUSH, k=3, policy=policy)
    pull = RumorConfig(mode=ExchangeMode.PULL, k=3, policy=policy)

    def run():
        return (
            _average_run(bench_n, push, bench_runs, 830),
            _average_run(bench_n, pull, bench_runs, 840),
        )

    (push_s, push_m), (pull_s, pull_m) = run_once(benchmark, run)
    print(f"\npermutation regime k=3: push s={push_s:.2e}  pull s={pull_s:.2e}")
    # Both residues are very small and of the same order.
    assert push_s < 0.02
    assert pull_s < 0.02
