"""Section 3.2: rumor mongering with spatial distributions on the CIN.

Push-pull rumor mongering with a spatial distribution, once k is large
enough for 100% coverage, matches Table 4's anti-entropy traffic and
convergence — at rumor-list prices instead of whole-database prices.
Plain push with a spatial distribution needs a much larger k (the
paper measured k=36 at a=1.2 on the real CIN).
"""

from conftest import run_once
from repro.experiments.report import format_table
from repro.experiments.spatial import rumor_spatial_table, spatial_table
from repro.protocols.base import ExchangeMode

HEADERS = ["k", "t_last", "t_ave", "cmp avg", "cmp Bushey", "upd avg", "upd Bushey"]


def test_push_pull_rumors_with_spatial_distribution(benchmark, bench_runs, cin_network):
    rows = run_once(
        benchmark, rumor_spatial_table,
        cin=cin_network, runs=bench_runs, a=1.4, ks=(1, 2, 4, 6),
    )
    print()
    print(
        format_table(
            HEADERS,
            [r.as_tuple() for r in rows],
            title="Push-pull rumor mongering, sorted-list a=1.4 (synthetic CIN)",
        )
    )
    print("incomplete runs by k:", [(r.label, r.incomplete_runs) for r in rows])
    # A small finite k achieves 100% distribution (the paper's finding).
    assert rows[-1].incomplete_runs == 0
    # Coverage failures shrink monotonically-ish with k.
    assert rows[-1].incomplete_runs <= rows[0].incomplete_runs


def test_tuned_rumors_match_anti_entropy_traffic(benchmark, bench_runs, cin_network):
    """Once k gives 100% coverage, traffic and convergence are close to
    the anti-entropy values of Table 4 (paper: 'nearly identical')."""
    runs = max(3, bench_runs // 2)

    def run():
        anti = spatial_table(cin=cin_network, runs=runs, a_values=(1.4,))[1]
        rumor = rumor_spatial_table(cin=cin_network, runs=runs, a=1.4, ks=(6,))[0]
        return anti, rumor

    anti, rumor = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["mechanism", "t_last", "cmp Bushey", "upd avg"],
            [
                ("anti-entropy a=1.4", anti.t_last, anti.compare_special, anti.update_avg),
                ("rumor k=6 a=1.4", rumor.t_last, rumor.compare_special, rumor.update_avg),
            ],
        )
    )
    assert rumor.incomplete_runs == 0
    # Same ballpark on convergence and on critical-link traffic.
    assert rumor.t_last < 3 * anti.t_last
    assert rumor.compare_special < 5 * max(anti.compare_special, 0.5)


def test_plain_push_needs_much_larger_k(benchmark, cin_network):
    """Push (no pull direction) is far more fragile under spatial
    distributions: at small k many runs fail to cover the network."""
    def run():
        return rumor_spatial_table(
            cin=cin_network, runs=5, a=1.4, ks=(2,), mode=ExchangeMode.PUSH
        )[0]

    row = run_once(benchmark, run)
    print(f"\npush k=2: incomplete {row.incomplete_runs}/5 runs")
    assert row.incomplete_runs > 0
