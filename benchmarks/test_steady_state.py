"""Section 1.3 under continuous load: choosing tau for checksums.

The paper: tau must exceed the expected update-distribution time, or
checksum comparisons usually fail and traffic rises to slightly above
plain anti-entropy; but an over-large tau bloats the recent-update
lists.  The sweep exposes the sweet spot just above the distribution
time (~log n cycles).
"""

from conftest import run_once
from repro.experiments.report import format_table
from repro.experiments.workloads import checksum_tau_experiment


def test_checksum_tau_sweep(benchmark, bench_runs):
    results = run_once(
        benchmark,
        checksum_tau_experiment,
        n=30,
        tau_values=(2.0, 5.0, 10.0, 20.0, 50.0),
        update_rate=2.0,
        cycles=max(40, bench_runs * 5),
    )
    print()
    print(
        format_table(
            ["tau", "checksum success", "entries/exchange", "full compares"],
            [
                (r.tau, r.checksum_success_rate,
                 r.entries_examined_per_exchange, r.full_compare_rate)
                for r in results
            ],
            title="Checksum + recent-update-list anti-entropy under load (n=30)",
        )
    )
    by_tau = {r.tau: r for r in results}
    # tau below the distribution time: checksums usually fail.
    assert by_tau[2.0].full_compare_rate > 0.5
    # tau just above it: checksums nearly always succeed...
    assert by_tau[10.0].checksum_success_rate > 0.9
    # ...and the examined volume is minimal there; both extremes cost more.
    best = min(results, key=lambda r: r.entries_examined_per_exchange)
    assert best.tau in (5.0, 10.0)
    assert by_tau[2.0].entries_examined_per_exchange > best.entries_examined_per_exchange
    assert by_tau[50.0].entries_examined_per_exchange > best.entries_examined_per_exchange
    # Consistency is never sacrificed, only traffic.
    assert all(r.converged_after_quiesce for r in results)


def test_traffic_scales_with_update_rate(benchmark):
    """Once tau is right, exchange volume tracks the update rate —
    the paper's 'bounded by the expected number of updates in tau'."""
    def run():
        slow = checksum_tau_experiment(
            n=30, tau_values=(10.0,), update_rate=1.0, cycles=50
        )[0]
        fast = checksum_tau_experiment(
            n=30, tau_values=(10.0,), update_rate=4.0, cycles=50
        )[0]
        return slow, fast

    slow, fast = run_once(benchmark, run)
    print(f"\nentries/exchange at rate 1: {slow.entries_examined_per_exchange:.1f}, "
          f"rate 4: {fast.entries_examined_per_exchange:.1f}")
    assert fast.entries_examined_per_exchange > 2 * slow.entries_examined_per_exchange
