"""Table 1: push rumor mongering, feedback + counter, n = 1000.

Paper (residue, traffic, t_ave, t_last by k):
    k=1: 0.18    1.7  11.0  16.8
    k=2: 0.037   3.3  12.1  16.9
    k=3: 0.011   4.5  12.5  17.4
    k=4: 0.0036  5.6  12.7  17.5
    k=5: 0.0012  6.7  12.8  17.7
"""

import math

from conftest import run_once
from repro.experiments.report import format_table
from repro.experiments.tables import PAPER_TABLE1, table1


def test_table1_feedback_counter_push(benchmark, bench_runs, bench_n):
    rows = run_once(benchmark, table1, n=bench_n, runs=bench_runs)
    print()
    print(
        format_table(
            ["k", "residue", "m", "t_ave", "t_last"],
            [r.as_tuple() for r in rows],
            title=f"Table 1 (measured, n={bench_n}, {bench_runs} runs)",
        )
    )
    print(
        format_table(
            ["k", "residue", "m", "t_ave", "t_last"],
            PAPER_TABLE1,
            title="Table 1 (paper)",
        )
    )
    # Shape assertions: residue decreasing, traffic increasing, s ~ e^-m.
    residues = [r.residue for r in rows]
    traffics = [r.traffic for r in rows]
    assert residues == sorted(residues, reverse=True)
    assert traffics == sorted(traffics)
    assert abs(rows[0].residue - 0.18) < 0.08
    for row in rows:
        if row.residue > 0:
            assert 0.3 < row.residue / math.exp(-row.traffic) < 3.0
    # Convergence delays in the paper's regime (~10-20 cycles).
    assert all(8 < r.t_ave < 16 for r in rows)
    assert all(12 < r.t_last < 26 for r in rows)
