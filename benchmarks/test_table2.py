"""Table 2: push rumor mongering, blind + coin, n = 1000.

Paper: k=1 barely spreads (s = 0.96, m = 0.04); by k=5 s = 0.008.
Convergence is slower than the feedback/counter variant throughout
(t_last around 32-38 vs 17).
"""

from conftest import run_once
from repro.experiments.report import format_table
from repro.experiments.tables import PAPER_TABLE2, table1, table2


def test_table2_blind_coin_push(benchmark, bench_runs, bench_n):
    rows = run_once(benchmark, table2, n=bench_n, runs=bench_runs)
    print()
    print(
        format_table(
            ["k", "residue", "m", "t_ave", "t_last"],
            [r.as_tuple() for r in rows],
            title=f"Table 2 (measured, n={bench_n}, {bench_runs} runs)",
        )
    )
    print(
        format_table(
            ["k", "residue", "m", "t_ave", "t_last"],
            PAPER_TABLE2,
            title="Table 2 (paper)",
        )
    )
    residues = [r.residue for r in rows]
    assert residues == sorted(residues, reverse=True)
    # k=1 blind+coin is a critical branching process: almost nobody hears.
    assert rows[0].residue > 0.85
    assert rows[0].traffic < 0.3
    # k=5 reaches nearly everyone.
    assert rows[-1].residue < 0.05


def test_blind_coin_slower_than_feedback_counter(benchmark, bench_n, bench_runs):
    """Counters and feedback improve delay (Section 1.4's finding)."""
    runs = max(2, bench_runs // 2)
    blind, feedback = run_once(
        benchmark,
        lambda: (table2(n=bench_n, runs=runs), table1(n=bench_n, runs=runs)),
    )
    # Compare at matched k >= 3 where both variants spread widely.
    for b, f in zip(blind[2:], feedback[2:]):
        assert b.t_last > f.t_last
