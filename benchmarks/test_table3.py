"""Table 3: pull rumor mongering, feedback + counter, n = 1000.

Paper: residues collapse super-exponentially (3.1e-2, 5.8e-4, 4.0e-6
for k = 1, 2, 3) — far better than push's s = e^-m at matched traffic.
The footnote's counter semantics apply: if any recipient in a cycle
needed the update the counter resets; if all did not, one is added.
"""

import math

from conftest import run_once
from repro.experiments.report import format_table
from repro.experiments.tables import PAPER_TABLE3, table3


def test_table3_feedback_counter_pull(benchmark, bench_runs, bench_n):
    rows = run_once(benchmark, table3, n=bench_n, runs=bench_runs)
    print()
    print(
        format_table(
            ["k", "residue", "m", "t_ave", "t_last"],
            [r.as_tuple() for r in rows],
            title=f"Table 3 (measured, n={bench_n}, {bench_runs} runs)",
        )
    )
    print(
        format_table(
            ["k", "residue", "m", "t_ave", "t_last"],
            PAPER_TABLE3,
            title="Table 3 (paper)",
        )
    )
    # Pull beats the push law s = e^-m at every k.
    for row in rows:
        assert row.residue < math.exp(-row.traffic) + 1e-12
    # k=1 in the paper's regime; k>=2 near-complete coverage.
    assert rows[0].residue < 0.1
    assert rows[1].residue < 5e-3
    assert rows[2].residue < 1e-3
    # Pull converges fast: t_ave ~ 10.
    assert all(7 < r.t_ave < 13 for r in rows)
