"""Table 4: push-pull anti-entropy with spatial distributions on the
(synthetic) CIN, no connection limit.

Paper headline: versus uniform selection, the a=2.0 sorted-list
distribution degrades t_last by less than 2x while cutting average
compare traffic by more than 4x and traffic on the transatlantic
Bushey link by more than 30x.  Absolute values differ on the synthetic
topology; the orderings and rough factors are asserted.
"""

from conftest import run_once
from repro.experiments.report import format_table
from repro.experiments.spatial import PAPER_TABLE4, spatial_table

HEADERS = ["dist", "t_last", "t_ave", "cmp avg", "cmp Bushey", "upd avg", "upd Bushey"]


def test_table4_spatial_anti_entropy(benchmark, bench_runs, cin_network):
    rows = run_once(
        benchmark, spatial_table, cin=cin_network, runs=bench_runs
    )
    print()
    print(
        format_table(
            HEADERS,
            [r.as_tuple() for r in rows],
            title=f"Table 4 (measured, synthetic CIN, {bench_runs} runs)",
        )
    )
    print(format_table(HEADERS, PAPER_TABLE4, title="Table 4 (paper, real CIN)"))
    uniform = rows[0]
    a20 = rows[-1]
    assert uniform.label == "uniform" and a20.label == "a=2"
    # Every run of a simple epidemic completes.
    assert all(r.incomplete_runs == 0 for r in rows)
    # Convergence degrades as the distribution tightens (allow small
    # sampling noise between adjacent rows)...
    t_lasts = [r.t_last for r in rows]
    assert all(b >= a * 0.93 for a, b in zip(t_lasts, t_lasts[1:]))
    assert t_lasts[-1] > t_lasts[0]
    # ... by less than ~3x at a=2 (paper: <2x).
    assert a20.t_last < 3 * uniform.t_last
    # Average compare traffic improves substantially (paper: >4x).
    assert uniform.compare_avg > 2.5 * a20.compare_avg
    # The critical-link win is the big one (paper: >30x).
    assert uniform.compare_special > 10 * a20.compare_special
    # With a=2, Bushey traffic is no longer a hot spot (paper: <2x mean).
    assert a20.compare_special < 2 * a20.compare_avg
