"""Table 5: the Table 4 experiment under the most pessimistic
connection assumption — connection limit 1, hunt limit 0.

Paper headline: the limit slows convergence (t_last roughly doubles at
tight distributions) and lowers per-cycle compare traffic, but the
*total* comparison traffic (per-cycle traffic x cycles) stays roughly
unchanged, and distribution still always completes.
"""

import pytest

from conftest import run_once
from repro.experiments.report import format_table
from repro.experiments.spatial import PAPER_TABLE5, spatial_table
from repro.sim.transport import ConnectionPolicy

HEADERS = ["dist", "t_last", "t_ave", "cmp avg", "cmp Bushey", "upd avg", "upd Bushey"]
PESSIMISTIC = ConnectionPolicy(connection_limit=1, hunt_limit=0)


def test_table5_connection_limit_one(benchmark, bench_runs, cin_network):
    rows = run_once(
        benchmark, spatial_table, cin=cin_network, runs=bench_runs,
        policy=PESSIMISTIC,
    )
    print()
    print(
        format_table(
            HEADERS,
            [r.as_tuple() for r in rows],
            title=f"Table 5 (measured, synthetic CIN, {bench_runs} runs)",
        )
    )
    print(format_table(HEADERS, PAPER_TABLE5, title="Table 5 (paper, real CIN)"))
    assert all(r.incomplete_runs == 0 for r in rows)
    # Convergence degrades as the distribution tightens (allow small
    # sampling noise between adjacent rows).
    t_lasts = [r.t_last for r in rows]
    assert all(b >= a * 0.93 for a, b in zip(t_lasts, t_lasts[1:]))
    assert t_lasts[-1] > t_lasts[0]
    # The spatial win on the critical link survives the limit.
    assert rows[0].compare_special > 10 * rows[-1].compare_special


def test_limit_preserves_total_compare_traffic(benchmark, bench_runs, cin_network):
    """Note 4 of the paper: imposing the limit does not significantly
    change total comparison traffic; it just takes more cycles."""
    runs = max(3, bench_runs // 2)
    unlimited, limited = run_once(
        benchmark,
        lambda: (
            spatial_table(cin=cin_network, runs=runs, a_values=(2.0,)),
            spatial_table(
                cin=cin_network, runs=runs, a_values=(2.0,), policy=PESSIMISTIC
            ),
        ),
    )
    for u, l in zip(unlimited, limited):
        assert l.t_last > u.t_last                    # slower...
        assert l.compare_avg < u.compare_avg          # ...lighter per cycle
        total_u = u.compare_avg * u.t_last
        total_l = l.compare_avg * l.t_last
        assert total_l == pytest.approx(total_u, rel=0.6)  # ...same total
