"""The Clearinghouse scenario (Section 0.1), end to end.

A name-service domain replicated at every server of a CIN-like
internet.  We replay a synthetic update workload under two
configurations and report what the paper's deployment fixed:

1. uniform anti-entropy — the configuration that was overloading the
   real CIN's transatlantic links in 1986; and
2. spatially-distributed anti-entropy (sorted-list a=2.0, the
   distribution shipped in the production Clearinghouse release)
   combined with push-pull rumor mongering for the initial spread.

Run:  python examples/clearinghouse.py
"""

import random

from repro import Cluster, ExchangeMode
from repro.experiments.report import format_table
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.rumor import RumorConfig, RumorMongeringProtocol
from repro.topology.cin import build_cin_like_topology
from repro.topology.distance import SiteDistances
from repro.topology.spatial import SortedListSelector, UniformSelector

UPDATES = 40
CYCLES = 30


def run_configuration(label, cin, selector, with_rumors, seed):
    cluster = Cluster(topology=cin.topology, seed=seed)
    if with_rumors:
        cluster.add_protocol(
            RumorMongeringProtocol(
                RumorConfig(mode=ExchangeMode.PUSH_PULL, k=4),
                selector=selector,
            )
        )
    cluster.add_protocol(
        AntiEntropyProtocol(
            selector=selector,
            config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL),
        )
    )
    # A synthetic Clearinghouse workload: name bindings registered at
    # random sites over the first cycles.
    rng = random.Random(seed)
    sites = cluster.site_ids
    pending = [
        (rng.choice(sites), f"CIN:PARC:object-{i}", f"addr-{i}")
        for i in range(UPDATES)
    ]
    for cycle in range(CYCLES):
        # Two updates enter the network per cycle.
        for __ in range(2):
            if pending:
                site, key, value = pending.pop()
                cluster.inject_update(site, key, value)
        cluster.run_cycle()
    cluster.run_until(cluster.converged, max_cycles=300)

    links = cin.topology.edge_count
    cycles = cluster.cycle
    return (
        label,
        cycles,
        cluster.traffic.compare.total / (links * cycles),
        cluster.traffic.compare.on_link(*cin.bushey) / cycles,
        cluster.traffic.update.total / links,
        cluster.traffic.update.on_link(*cin.bushey),
    )


def main() -> None:
    cin = build_cin_like_topology()
    print(f"synthetic CIN: {cin.site_count} Clearinghouse servers, "
          f"{cin.topology.edge_count} links, "
          f"{len(cin.europe_sites)} sites behind the transatlantic links\n")
    distances = SiteDistances(cin.topology)
    rows = [
        run_configuration(
            "uniform anti-entropy (1986)",
            cin,
            UniformSelector(cin.sites),
            with_rumors=False,
            seed=1986,
        ),
        run_configuration(
            "spatial a=2.0 anti-entropy (deployed fix)",
            cin,
            SortedListSelector(distances, a=2.0),
            with_rumors=False,
            seed=1987,
        ),
        run_configuration(
            "spatial a=2.0 + push-pull rumors",
            cin,
            SortedListSelector(distances, a=2.0),
            with_rumors=True,
            seed=1988,
        ),
    ]
    print(
        format_table(
            ["configuration", "cycles", "cmp/link/cycle", "cmp Bushey/cycle",
             "upd/link", "upd Bushey"],
            rows,
            title=f"Replicating {UPDATES} directory updates to every server",
        )
    )
    uniform_bushey = rows[0][3]
    spatial_bushey = rows[1][3]
    print(f"\ntransatlantic (Bushey) comparison traffic cut by "
          f"{uniform_bushey / max(spatial_bushey, 1e-9):.0f}x — the deployed "
          f"release's headline result.")


if __name__ == "__main__":
    main()
