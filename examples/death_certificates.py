"""Deletion done wrong, then done right (Section 2).

Walks through the four deletion stories on a live cluster:

1. naive removal -> the item is resurrected by anti-entropy;
2. a death certificate -> the deletion spreads and sticks;
3. certificates discarded after tau1 -> a long-partitioned site
   resurrects the item after all;
4. dormant certificates at r retention sites -> the returning zombie
   copy awakens a certificate ("immune reaction") and dies, while a
   legitimate reinstatement issued mid-reactivation survives.

Run:  python examples/death_certificates.py
"""

from repro.experiments.deathcert_scenarios import (
    dormant_certificate_scenario,
    fixed_threshold_scenario,
    reinstatement_scenario,
    resurrection_scenario,
    space_comparison,
)


def main() -> None:
    print("1. naive delete (no certificate)")
    naive = resurrection_scenario(use_certificate=False)
    print(f"   after {naive.cycles} cycles the deleted item is back: "
          f"resurrected={naive.resurrected}\n")

    print("2. delete via death certificate")
    certified = resurrection_scenario(use_certificate=True)
    print(f"   deletion reached every replica and stayed: "
          f"resurrected={certified.resurrected}\n")

    print("3. fixed 10-cycle retention, one site partitioned the whole time")
    fixed = fixed_threshold_scenario(tau1=10.0)
    print(f"   the certificate was discarded everywhere before the site "
          f"rejoined: resurrected={fixed.resurrected}\n")

    print("4a. same, but 4 retention sites hold dormant certificates")
    dormant = dormant_certificate_scenario(tau1=10.0, retention_count=4)
    print(f"   the zombie copy met a dormant certificate, which "
          f"reactivated {dormant.reactivations} time(s): "
          f"resurrected={dormant.resurrected}")

    print("4b. a reinstating update issued while a certificate is "
          "reactivating")
    reinstated = reinstatement_scenario()
    print(f"   activation timestamps preserve it: value everywhere = "
          f"{reinstated.value_visible_everywhere} "
          f"(reactivations={reinstated.reactivations})\n")

    tau2 = space_comparison(n=300, tau=30.0, tau1=10.0, r=4)
    print(f"space economics (paper, Section 2.1): with 300 servers and the "
          f"space that bought 30 days of flat history,\ndormant "
          f"certificates at r=4 retention sites protect tau1 + tau2 = "
          f"10 + {tau2:g} cycles of history - an O(n/r) extension.")


if __name__ == "__main__":
    main()
