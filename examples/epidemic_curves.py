"""Stochastic epidemics vs the deterministic theory (Section 1.4).

Traces the susceptible / infective / removed fractions of a live
rumor-mongering run cycle by cycle and prints them beside the rumor
ODE's trajectory, ending with the residue fixed point
``s = e^-(k+1)(1-s)`` and the exact Markov-chain prediction for the
anti-entropy convergence time.

Run:  python examples/epidemic_curves.py
"""

from repro.analysis.epidemic_theory import infective_trajectory, rumor_residue
from repro.analysis.markov import expected_cycles_to_complete
from repro.cluster.cluster import Cluster
from repro.experiments.report import format_table
from repro.protocols.base import ExchangeMode
from repro.protocols.rumor import RumorConfig, RumorMongeringProtocol
from repro.sim.tracing import EpidemicTracer

N = 1000
K = 2


def main() -> None:
    # Stochastic run: feedback + coin, the variant the ODE models.
    cluster = Cluster(n=N, seed=1987)
    rumor = RumorMongeringProtocol(
        RumorConfig(mode=ExchangeMode.PUSH, feedback=True, counter=False, k=K)
    )
    tracer = EpidemicTracer(rumor, key="the-rumor")
    cluster.add_protocol(rumor)
    cluster.add_protocol(tracer)
    cluster.inject_update(0, "the-rumor", "juicy")
    cluster.run_until(lambda: not rumor.active, max_cycles=300)

    # Deterministic trajectory, sampled at matching s values.
    ode = infective_trajectory(k=K, n=N)

    def ode_i_at(s_target: float) -> float:
        # The ODE runs in continuous time; index by s, which both
        # trajectories share, rather than by incomparable clocks.
        best = min(ode, key=lambda sample: abs(sample[1] - s_target))
        return best[2]

    rows = []
    for census in tracer.history[:: max(1, len(tracer.history) // 12)]:
        rows.append(
            (census.cycle, census.s, census.i, census.r, ode_i_at(census.s))
        )
    print(
        format_table(
            ["cycle", "s (sim)", "i (sim)", "r (sim)", "i(s) (ODE)"],
            rows,
            title=f"Rumor epidemic, n={N}, feedback+coin k={K}",
        )
    )
    final_s = tracer.final().s
    print(f"\nfinal residue: simulated {final_s:.4f}, "
          f"ODE fixed point {rumor_residue(K):.4f} "
          f"(paper: about 6% miss the rumor at k=2)")

    # Bonus: the exact chain for anti-entropy convergence.
    for n in (64, 256):
        print(f"push anti-entropy, n={n}: exact expected cycles to full "
              f"infection = {expected_cycles_to_complete(n, 'push'):.2f}")


if __name__ == "__main__":
    main()
