"""Live cluster: the paper's protocols over real TCP sockets.

Boots five asyncio gossip nodes on ephemeral localhost ports, injects
one update over the wire, kills a node mid-epidemic, and shows
anti-entropy catching the restarted (empty) replica back up — the
Section 1.5 recovery story, running on a real network stack instead of
the simulator.

Run:  python examples/live_cluster.py
See:  docs/live_runtime.md
"""

import asyncio

from repro.net.node import NodeConfig
from repro.net.runner import live_demo


def main() -> None:
    config = NodeConfig(anti_entropy_interval=0.05, rumor_interval=0.02)
    report = asyncio.run(
        live_demo(nodes=5, config=config, churn=True, timeout=30.0)
    )

    print("five gossip nodes on localhost TCP, one update, one crash:\n")
    for line in report.lines():
        print(f"  {line}")
    print()
    assert report.converged
    print(
        f"live cluster converged in {report.wall_seconds:.2f}s "
        f"(t_last={report.t_last:.3f}s) despite losing node "
        f"{report.churned_node} mid-run"
    )


if __name__ == "__main__":
    main()
