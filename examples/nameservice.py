"""A multi-domain Clearinghouse (Section 0.1) in ~80 lines.

Three domains at different replication degrees on a CIN-like network:

* ``CIN:All``     — replicated at every server (the problematic kind);
* ``CIN:PARC``    — replicated at 8 servers;
* ``CIN:Bushey``  — replicated at 3 European servers.

We register servers and users, build a mail group, follow an alias
across domains, delete a binding, and watch a stale read heal.

Run:  python examples/nameservice.py
"""

from repro.nameservice import (
    AddressRecord,
    AliasRecord,
    Clearinghouse,
    DomainConfig,
    GroupRecord,
)
from repro.topology.cin import build_cin_like_topology


def main() -> None:
    cin = build_cin_like_topology()
    service = Clearinghouse(cin.topology, seed=7)

    all_servers = service.create_domain(
        "CIN:All", DomainConfig(replicas=cin.sites)
    )
    parc = service.create_domain("CIN:PARC", DomainConfig(replication=8))
    bushey = service.create_domain(
        "CIN:Bushey", DomainConfig(replicas=cin.europe_sites[:3])
    )
    print(f"{len(all_servers)} servers; CIN:PARC on {len(parc)} replicas, "
          f"CIN:Bushey on {len(bushey)} European replicas\n")

    # Register some bindings through different entry servers.
    service.bind("CIN:All:mail-gateway", AddressRecord("10.0.0.1", 25))
    service.bind("CIN:PARC:alice", AddressRecord("10.0.7.31"), via=parc[0])
    service.bind("CIN:PARC:bob", AddressRecord("10.0.7.32"), via=parc[1])
    service.bind(
        "CIN:Bushey:lpr-1", AddressRecord("10.9.0.4", 515), via=bushey[0]
    )
    # A cross-domain alias and a distribution list.
    service.bind("CIN:All:uk-printer", AliasRecord("CIN:Bushey:lpr-1"))
    service.bind(
        "CIN:PARC:csl-staff",
        GroupRecord(frozenset({"CIN:PARC:alice", "CIN:PARC:bob"})),
        via=parc[0],
    )

    # A stale read: the update has not crossed the Atlantic yet.
    far_server = cin.europe_sites[-1]
    early = service.lookup("CIN:All:mail-gateway", at=far_server)
    print(f"immediately after bind, server {far_server} sees "
          f"mail-gateway = {early}  (stale read, as the model allows)")

    cycles = service.run_until_consistent()
    print(f"all domains consistent after {cycles} cycles\n")

    late = service.lookup("CIN:All:mail-gateway", at=far_server)
    print(f"after convergence it sees mail-gateway = {late}")
    resolved = service.resolve("CIN:All:uk-printer")
    print(f"resolve('CIN:All:uk-printer') follows the alias into "
          f"CIN:Bushey -> {resolved}")
    staff = service.lookup("CIN:PARC:csl-staff", at=parc[3])
    print(f"CIN:PARC:csl-staff members: {sorted(staff.members)}\n")

    print("unbinding CIN:PARC:bob (death certificate) ...")
    service.unbind("CIN:PARC:bob", via=parc[2])
    service.run_until_consistent()
    print(f"lookup at every PARC replica now returns: "
          f"{ {service.lookup('CIN:PARC:bob', at=r) for r in parc} }")

    traffic = service.total_traffic()
    print(f"\nlink traffic so far: {traffic['compare']:.0f} comparison "
          f"and {traffic['update']:.0f} update link-crossings")


if __name__ == "__main__":
    main()
