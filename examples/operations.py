"""Day-2 operations on a replicated database.

Everything an operator of a Clearinghouse-style system does besides
reads and writes: grow and shrink the replica set, survive crashes and
partitions, checkpoint and restore a replica, and run with structural
invariant checking turned on.

Run:  python examples/operations.py
"""

import json

from repro import (
    AntiEntropyConfig,
    AntiEntropyProtocol,
    Cluster,
    DirectMailProtocol,
    ExchangeMode,
)
from repro.cluster.invariants import InvariantChecker
from repro.core.serialize import dump_store, load_store
from repro.core.store import ReplicaStore
from repro.core.timestamps import SequenceClock
from repro.sim.faults import FaultSchedule


def main() -> None:
    cluster = Cluster(n=8, seed=11)
    faults = FaultSchedule()
    cluster.add_protocol(faults)
    cluster.add_protocol(DirectMailProtocol(loss_probability=0.05))
    cluster.add_protocol(
        AntiEntropyProtocol(config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL))
    )
    cluster.add_protocol(InvariantChecker())   # last: checks end-of-cycle state

    print("seeding the database on 8 sites ...")
    for i in range(5):
        cluster.inject_update(i % 8, f"record-{i}", f"value-{i}")
    cluster.run_until(cluster.converged, max_cycles=60)
    print(f"  converged at cycle {cluster.cycle}; "
          f"invariants checked every cycle\n")

    print("growing the replica set: two new sites join empty ...")
    first = cluster.add_site()
    second = cluster.add_site()
    cluster.run_until(cluster.converged, max_cycles=60)
    print(f"  sites {first} and {second} caught up: record-0 = "
          f"{cluster.sites[first].store.get('record-0')!r}\n")

    print("checkpointing site 0 to JSON ...")
    checkpoint = json.dumps(dump_store(cluster.sites[0].store))
    print(f"  checkpoint is {len(checkpoint)} bytes for "
          f"{len(cluster.sites[0].store)} entries")
    restored = ReplicaStore(site_id=99, clock=SequenceClock(site=99))
    load_store(json.loads(checkpoint), restored)
    print(f"  restored replica agrees with the original: "
          f"{restored.agrees_with(cluster.sites[0].store)}\n")

    print("scheduling a partition and writes on both sides ...")
    groups = [cluster.site_ids[:5], cluster.site_ids[5:]]
    faults.partition(at_cycle=cluster.cycle + 1, groups=groups)
    faults.heal(at_cycle=cluster.cycle + 8)
    cluster.run_cycles(2)
    cluster.inject_update(groups[0][0], "west-news", "w")
    cluster.inject_update(groups[1][0], "east-news", "e")
    cluster.run_cycles(4)
    east_view = cluster.sites[groups[1][0]].store.get("west-news")
    print(f"  during the partition, the east side sees west-news = {east_view!r}")
    cluster.run_until(cluster.converged, max_cycles=60)
    print(f"  after healing, everyone sees both: west-news = "
          f"{cluster.sites[groups[1][-1]].store.get('west-news')!r}, "
          f"east-news = {cluster.sites[groups[0][0]].store.get('east-news')!r}\n")

    print("shrinking: decommissioning one original site ...")
    departing = cluster.site_ids[1]
    cluster.remove_site(departing)
    cluster.inject_update(cluster.site_ids[0], "final", "f")
    cluster.run_until(cluster.converged, max_cycles=60)
    print(f"  {cluster.n} sites remain, all consistent "
          f"(final = {set(cluster.values_of('final').values())})")


if __name__ == "__main__":
    main()
