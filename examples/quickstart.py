"""Quickstart: a replicated database kept consistent by epidemics.

Builds a 50-site cluster that distributes updates by direct mail (fast
but lossy) backed by push-pull anti-entropy (slow but certain), injects
a few writes and a delete, and watches the replicas converge.

Run:  python examples/quickstart.py
"""

from repro import (
    AntiEntropyConfig,
    AntiEntropyProtocol,
    Cluster,
    DirectMailProtocol,
    ExchangeMode,
)


def main() -> None:
    cluster = Cluster(n=50, seed=2026)

    # Direct mail does the timely distribution; 10% of letters vanish.
    mail = DirectMailProtocol(loss_probability=0.1)
    cluster.add_protocol(mail)

    # Anti-entropy runs every cycle and repairs whatever mail dropped.
    anti_entropy = AntiEntropyProtocol(
        config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL)
    )
    cluster.add_protocol(anti_entropy)

    print("injecting three writes at different sites ...")
    cluster.inject_update(0, "printer:bldg-35", "10.0.7.12")
    cluster.inject_update(17, "printer:bldg-40", "10.0.9.3")
    cluster.inject_update(42, "user:mcdaniel", "CSL")

    cycles = cluster.run_until(cluster.converged, max_cycles=100)
    print(f"converged after {cycles} cycles "
          f"(mail dropped {mail.mail.stats.dropped} letters)")
    for key in ("printer:bldg-35", "printer:bldg-40", "user:mcdaniel"):
        values = set(cluster.values_of(key).values())
        print(f"  {key!r:24} -> {values}")

    print("\ndeleting printer:bldg-35 (death certificate) ...")
    cluster.inject_delete(5, "printer:bldg-35")
    cluster.run_until(cluster.converged, max_cycles=100)
    values = set(cluster.values_of("printer:bldg-35").values())
    print(f"  printer:bldg-35 now reads {values} at every site")

    print("\nupdating a key that was updated concurrently at two sites ...")
    cluster.inject_update(3, "user:mcdaniel", "PARC-CSL")
    cluster.inject_update(44, "user:mcdaniel", "PARC-ISL")
    cluster.run_until(cluster.converged, max_cycles=100)
    values = set(cluster.values_of("user:mcdaniel").values())
    print(f"  all replicas agree on the last-writer-wins winner: {values}")


if __name__ == "__main__":
    main()
