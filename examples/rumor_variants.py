"""Touring the complex-epidemic design space (Section 1.4).

Spreads one update through 1000 sites under each rumor-mongering
variant and prints the paper's four metrics — a condensed live version
of Tables 1-3 plus the push-pull and minimization variants.

Run:  python examples/rumor_variants.py
"""

from repro import ConnectionPolicy, ExchangeMode, RumorConfig
from repro.experiments.report import format_table
from repro.experiments.tables import run_rumor_trial
from repro.sim.metrics import mean

N = 1000
RUNS = 5

VARIANTS = [
    ("push feedback counter k=2 (Table 1)",
     RumorConfig(mode=ExchangeMode.PUSH, k=2)),
    ("push blind coin k=2 (Table 2)",
     RumorConfig(mode=ExchangeMode.PUSH, feedback=False, counter=False, k=2)),
    ("pull feedback counter k=2 (Table 3)",
     RumorConfig(mode=ExchangeMode.PULL, k=2)),
    ("push-pull feedback counter k=2",
     RumorConfig(mode=ExchangeMode.PUSH_PULL, k=2)),
    ("push-pull + counter minimization k=2",
     RumorConfig(mode=ExchangeMode.PUSH_PULL, k=2, minimization=True)),
    ("push k=2, connection limit 1",
     RumorConfig(mode=ExchangeMode.PUSH, k=2,
                 policy=ConnectionPolicy(connection_limit=1))),
    ("push k=2, connection limit 1 + hunting",
     RumorConfig(mode=ExchangeMode.PUSH, k=2,
                 policy=ConnectionPolicy(connection_limit=1, hunt_limit=4))),
]


def main() -> None:
    rows = []
    for label, config in VARIANTS:
        residues, traffics, t_aves, t_lasts = [], [], [], []
        for run in range(RUNS):
            metrics = run_rumor_trial(N, config, seed=hash(label) % 10000 + run)
            residues.append(metrics.residue)
            traffics.append(metrics.traffic_per_site)
            t_aves.append(metrics.t_ave)
            t_lasts.append(metrics.t_last)
        rows.append(
            (label, mean(residues), mean(traffics), mean(t_aves), mean(t_lasts))
        )
    print(
        format_table(
            ["variant", "residue s", "traffic m", "t_ave", "t_last"],
            rows,
            title=f"One update through {N} sites ({RUNS}-run averages)",
        )
    )
    print("\nreading guide: residue = fraction of sites never reached;")
    print("m = update messages per site; push obeys s ~ e^-m, pull and")
    print("minimization beat it; the connection limit *helps* push.")


if __name__ == "__main__":
    main()
