"""Tuning spatial distributions (Section 3).

Part 1 — the line network: sweeps the d^-a exponent and shows the
traffic/convergence tradeoff that makes a=2 the sweet spot.

Part 2 — the CIN: compares uniform, 1/(d Q), 1/Q^2 and the sorted-list
form (3.1.1) on the synthetic Xerox internet, reporting average and
transatlantic-link traffic (the Table 4 experiment, interactively).

Run:  python examples/spatial_tuning.py
"""

from repro.analysis.traffic import line_traffic_class
from repro.experiments.report import format_table
from repro.experiments.spatial import (
    line_scaling,
    spatial_table,
    standard_selectors,
)
from repro.topology.cin import build_cin_like_topology
from repro.topology.distance import SiteDistances
from repro.topology.spatial import (
    QDistanceSelector,
    QPowerSelector,
    SortedListSelector,
    UniformSelector,
)


def part1_line() -> None:
    print("Part 1: sites on a line, partner probability ~ d^-a")
    rows = line_scaling(ns=(32, 128), a_values=(0.0, 1.0, 2.0, 3.0), runs=3)
    print(
        format_table(
            ["n", "a", "asymptotic T(n)", "link traffic/cycle", "t_last"],
            [
                (r.n, r.a, line_traffic_class(r.a), r.mean_link_traffic, r.t_last)
                for r in rows
            ],
        )
    )
    print("a=2 keeps traffic near O(log n) while convergence stays "
          "polylogarithmic - the paper's recommendation.\n")


def part2_cin() -> None:
    print("Part 2: distribution families on the synthetic CIN")
    cin = build_cin_like_topology()
    distances = SiteDistances(cin.topology)
    selectors = [
        ("uniform", UniformSelector(cin.sites)),
        ("1/(d*Q)", QDistanceSelector(distances)),
        ("1/Q^2", QPowerSelector(distances, a=2.0)),
        ("(3.1.1) a=1.4", SortedListSelector(distances, a=1.4)),
        ("(3.1.1) a=2.0", SortedListSelector(distances, a=2.0)),
    ]
    rows = spatial_table(cin=cin, runs=8, selectors=selectors)
    print(
        format_table(
            ["distribution", "t_last", "t_ave", "cmp avg", "cmp Bushey",
             "upd avg", "upd Bushey"],
            [r.as_tuple() for r in rows],
            title=f"push-pull anti-entropy, {cin.site_count} sites, 8 runs",
        )
    )
    print("\nthe sorted-list (3.1.1) family keeps the transatlantic link "
          "coolest per unit of convergence delay,\nwhich is why it — not "
          "raw 1/Q^2 — went into the production Clearinghouse release.")


if __name__ == "__main__":
    part1_line()
    part2_cin()
