"""Setup shim.

The metadata lives in pyproject.toml; this file exists so that editable
installs work in offline environments whose setuptools lacks the
``wheel`` package required by PEP 660 editable wheels
(``pip install -e . --no-use-pep517 --no-build-isolation``).
"""

from setuptools import setup

setup()
