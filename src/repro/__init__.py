"""repro — Epidemic Algorithms for Replicated Database Maintenance.

A full reproduction of Demers et al., PODC 1987 (Xerox PARC CSL-89-1):
randomized algorithms — direct mail, anti-entropy and rumor mongering —
that drive the replicas of a database toward consistency with few
guarantees from the communication layer, plus death certificates for
deletions and spatial partner distributions for network-topology-aware
traffic reduction.

Quickstart::

    from repro import Cluster, AntiEntropyProtocol

    cluster = Cluster(n=50, seed=1)
    cluster.add_protocol(AntiEntropyProtocol())
    cluster.inject_update(0, "name:server-7", "10.0.0.7")
    cluster.run_until(cluster.converged)
    assert cluster.values_of("name:server-7")[49] == "10.0.0.7"

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import (
    NIL,
    DeathCertificate,
    ReplicaStore,
    StoreUpdate,
    Timestamp,
    VersionedValue,
)
from repro.cluster import Cluster, Site
from repro.protocols import (
    AntiEntropyBackup,
    AntiEntropyConfig,
    AntiEntropyProtocol,
    CertificatePolicy,
    DeathCertificateManager,
    DirectMailProtocol,
    ExchangeMode,
    HotListProtocol,
    RecoveryStrategy,
    RumorConfig,
    RumorMongeringProtocol,
)
from repro.sim import ConnectionPolicy
from repro.topology import (
    CinParameters,
    Topology,
    SiteDistances,
    build_cin_like_topology,
    selector_for,
)

__version__ = "1.0.0"

__all__ = [
    "NIL",
    "DeathCertificate",
    "ReplicaStore",
    "StoreUpdate",
    "Timestamp",
    "VersionedValue",
    "Cluster",
    "Site",
    "AntiEntropyBackup",
    "AntiEntropyConfig",
    "AntiEntropyProtocol",
    "CertificatePolicy",
    "DeathCertificateManager",
    "DirectMailProtocol",
    "ExchangeMode",
    "HotListProtocol",
    "RecoveryStrategy",
    "RumorConfig",
    "RumorMongeringProtocol",
    "ConnectionPolicy",
    "CinParameters",
    "Topology",
    "SiteDistances",
    "build_cin_like_topology",
    "selector_for",
    "__version__",
]
