"""Closed-form epidemic theory used to cross-check the simulations.

* :mod:`repro.analysis.epidemic_theory` — the rumor-spreading ODE of
  Section 1.4, its residue fixed point ``s = e^{-(k+1)(1-s)}``, the
  ``s = e^{-m}`` traffic law and its connection-limited variants, and
  Pittel's push-epidemic convergence bound;
* :mod:`repro.analysis.recurrences` — the anti-entropy tail recurrences
  of Section 1.3 and a class-structured recurrence for pull rumor
  mongering with feedback and counters;
* :mod:`repro.analysis.traffic` — expected per-link traffic for
  ``d^-a`` spatial distributions on a line (Section 3's scaling table).
"""

from repro.analysis.epidemic_theory import (
    rumor_residue,
    infective_trajectory,
    i_of_s,
    residue_from_traffic,
    traffic_from_residue,
    connection_limited_push_lambda,
    connection_limited_push_residue,
    connection_limited_pull_residue,
    pittel_push_cycles,
    connection_count_probability,
)
from repro.analysis.recurrences import (
    pull_tail,
    push_tail,
    push_tail_factor,
    cycles_to_eliminate,
    pull_counter_feedback_model,
    push_counter_feedback_model,
)
from repro.analysis.traffic import (
    line_traffic_per_link,
    line_traffic_class,
    expected_mean_link_traffic,
)
from repro.analysis.markov import (
    push_new_infections,
    pull_new_infections,
    push_pull_new_infections,
    expected_cycles_to_complete,
    state_distribution_after,
    expected_infected_after,
    completion_probability_after,
)

__all__ = [
    "rumor_residue",
    "infective_trajectory",
    "i_of_s",
    "residue_from_traffic",
    "traffic_from_residue",
    "connection_limited_push_lambda",
    "connection_limited_push_residue",
    "connection_limited_pull_residue",
    "pittel_push_cycles",
    "connection_count_probability",
    "pull_tail",
    "push_tail",
    "push_tail_factor",
    "cycles_to_eliminate",
    "pull_counter_feedback_model",
    "push_counter_feedback_model",
    "line_traffic_per_link",
    "line_traffic_class",
    "expected_mean_link_traffic",
    "push_new_infections",
    "pull_new_infections",
    "push_pull_new_infections",
    "expected_cycles_to_complete",
    "state_distribution_after",
    "expected_infected_after",
    "completion_probability_after",
]
