"""The deterministic rumor-spreading model (Section 1.4) and related laws.

Rumor spreading with feedback and coin (loss of interest with
probability ``1/k`` on an unnecessary contact) is modeled by

    ds/dt = -s i
    di/dt = +s i - (1/k)(1 - s) i

Dividing the equations eliminates ``t`` and yields

    i(s) = ((k+1)/k)(1 - s) + (1/k) log s

so the epidemic ends (``i = 0``) at the nonzero root of the implicit
equation ``s = exp(-(k+1)(1-s))`` — the residue decreases exponentially
in ``k`` (about 20% of sites miss the rumor at ``k = 1``, about 6% at
``k = 2``).

Also provided: the ``s = e^{-m}`` traffic/residue law shared by the
push variants, its connection-limited refinements, the per-cycle
connection-count distribution ``e^{-1}/j!``, and Pittel's bound for the
push simple epidemic, ``log2(n) + ln(n) + O(1)`` cycles.
"""

from __future__ import annotations

import math
from typing import List, Tuple


def i_of_s(s: float, k: float) -> float:
    """The infective fraction as a function of the susceptible fraction.

    Valid for the feedback+coin rumor model started from an infinitesimal
    seed (``i(1) = 0``).
    """
    if not 0.0 < s <= 1.0:
        raise ValueError("s must lie in (0, 1]")
    if k <= 0:
        raise ValueError("k must be positive")
    return (k + 1.0) / k * (1.0 - s) + math.log(s) / k


def rumor_residue(k: float, tolerance: float = 1e-12) -> float:
    """The nonzero root of ``s = exp(-(k+1)(1-s))`` — the final residue.

    Solved by bisection on ``g(s) = s - exp(-(k+1)(1-s))``, which is
    negative just above 0 and crosses zero exactly once below the
    trivial root at ``s = 1``.
    """
    if k <= 0:
        raise ValueError("k must be positive")

    def g(s: float) -> float:
        return s - math.exp(-(k + 1.0) * (1.0 - s))

    # g < 0 near 0 (g(0+) = -e^{-(k+1)}) and g > 0 just below the
    # trivial root at s = 1 (g'(1) = -k < 0), with exactly one interior
    # crossing: bisect on that bracket.
    lo = 1e-300
    hi = 1.0 - 1e-9
    while hi - lo > tolerance * max(1.0, lo):
        mid = (lo + hi) / 2.0
        if g(mid) < 0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def infective_trajectory(
    k: float,
    n: int,
    dt: float = 0.01,
    max_time: float = 200.0,
) -> List[Tuple[float, float, float]]:
    """Numerically integrate the rumor ODE from a single infective seed.

    Returns ``(t, s, i)`` samples (RK4, fixed step) until the infective
    fraction falls below ``1/(10 n)`` or ``max_time`` passes.  Useful
    for comparing the deterministic model against stochastic runs.
    """
    if n < 2:
        raise ValueError("need at least two sites")

    def derivatives(s: float, i: float) -> Tuple[float, float]:
        ds = -s * i
        di = s * i - (1.0 / k) * (1.0 - s) * i
        return ds, di

    s = 1.0 - 1.0 / n
    i = 1.0 / n
    t = 0.0
    samples = [(t, s, i)]
    floor = 1.0 / (10.0 * n)
    while i > floor and t < max_time:
        ds1, di1 = derivatives(s, i)
        ds2, di2 = derivatives(s + dt * ds1 / 2, i + dt * di1 / 2)
        ds3, di3 = derivatives(s + dt * ds2 / 2, i + dt * di2 / 2)
        ds4, di4 = derivatives(s + dt * ds3, i + dt * di3)
        s += dt * (ds1 + 2 * ds2 + 2 * ds3 + ds4) / 6.0
        i += dt * (di1 + 2 * di2 + 2 * di3 + di4) / 6.0
        s = min(max(s, 0.0), 1.0)
        i = max(i, 0.0)
        t += dt
        samples.append((t, s, i))
    return samples


def residue_from_traffic(m: float) -> float:
    """``s = e^{-m}``: the residue/traffic law of the push variants.

    ``n m`` updates are sent; the chance one site misses all of them is
    ``(1 - 1/n)^{n m} -> e^{-m}``.
    """
    if m < 0:
        raise ValueError("traffic must be non-negative")
    return math.exp(-m)


def traffic_from_residue(s: float) -> float:
    """Inverse of :func:`residue_from_traffic`."""
    if not 0.0 < s <= 1.0:
        raise ValueError("residue must lie in (0, 1]")
    return -math.log(s)


def connection_limited_push_lambda() -> float:
    """``lambda = 1 / (1 - e^{-1})`` for push with connection limit 1.

    Rejected connections shorten useless contacts, so the residue
    improves to ``s = e^{-lambda m}``.
    """
    return 1.0 / (1.0 - math.exp(-1.0))


def connection_limited_push_residue(m: float) -> float:
    """``s = e^{-lambda m}`` for push, connection limit 1."""
    if m < 0:
        raise ValueError("traffic must be non-negative")
    return math.exp(-connection_limited_push_lambda() * m)


def connection_limited_pull_residue(m: float, delta: float) -> float:
    """``s = delta^m``: pull with connection-failure probability delta."""
    if m < 0:
        raise ValueError("traffic must be non-negative")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must lie in (0, 1)")
    return delta ** m


def connection_count_probability(j: int) -> float:
    """``P(site receives exactly j connections in a cycle) = e^{-1}/j!``.

    Each of ``n`` sites independently picks one of ``n-1`` partners, so
    the in-degree of a site converges to Poisson(1).
    """
    if j < 0:
        raise ValueError("j must be non-negative")
    return math.exp(-1.0) / math.factorial(j)


def pittel_push_cycles(n: int) -> float:
    """Pittel's expected cycles for a push simple epidemic:
    ``log2(n) + ln(n) + O(1)``."""
    if n < 2:
        raise ValueError("need at least two sites")
    return math.log2(n) + math.log(n)
