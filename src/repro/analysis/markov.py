"""Exact Markov-chain analysis of simple epidemics (Section 1.3).

For anti-entropy the number of infected sites is a Markov chain on
``{1, .., n}`` with computable transition laws:

* **push** — each of ``i`` infected sites contacts a uniform partner;
  a susceptible is infected when somebody contacts it.  Conditioning
  throw by throw, the number of *newly* infected susceptibles follows
  the distinct-bins distribution computed by :func:`push_new_infections`;
* **pull** — each of ``s = n - i`` susceptibles contacts a uniform
  partner and is infected when the partner is infected: newly infected
  is Binomial(s, i/(n-1)).

From the transition laws we get exact expected absorption times
(cycles to full infection) and the full distribution of the epidemic's
state at any cycle — ground truth against which the stochastic
simulation and the asymptotic formulas (Pittel's bound, the endgame
recurrences) are tested.

Everything is plain Python on probability vectors; n up to a few
hundred is instantaneous.
"""

from __future__ import annotations

import math
from typing import Callable, List

TransitionLaw = Callable[[int], List[float]]
"""Maps infected-count i to a distribution over newly infected counts."""


def push_new_infections(n: int, i: int) -> List[float]:
    """P(exactly k susceptibles newly infected | i infected, push).

    Each of the ``i`` infected throws one contact uniformly over the
    other ``n-1`` sites.  Processing throws sequentially, a throw hits
    a not-yet-hit susceptible with probability ``(s - h)/(n - 1)``
    where ``h`` is the number already hit — the throws are independent
    and uniform, so the order of processing does not matter.
    """
    _check_state(n, i)
    s = n - i
    # distribution[h] after t throws
    distribution = [1.0] + [0.0] * s
    for __ in range(i):
        updated = [0.0] * (s + 1)
        for h, p in enumerate(distribution):
            if p == 0.0:
                continue
            hit = (s - h) / (n - 1)
            updated[h] += p * (1.0 - hit)
            if h < s:
                updated[h + 1] += p * hit
        distribution = updated
    return distribution


def pull_new_infections(n: int, i: int) -> List[float]:
    """P(exactly k susceptibles newly infected | i infected, pull).

    Each of the ``s`` susceptibles independently contacts an infected
    partner with probability ``i/(n-1)``: Binomial(s, i/(n-1)).
    """
    _check_state(n, i)
    s = n - i
    p = i / (n - 1)
    q = 1.0 - p
    return [
        math.comb(s, k) * p ** k * q ** (s - k) for k in range(s + 1)
    ]


def push_pull_new_infections(n: int, i: int) -> List[float]:
    """Newly infected under push-pull: a susceptible is infected unless
    nobody pushed to it AND its own pull missed.

    Pushes from the i infected and the susceptible's own pull are
    independent; pushes hit distinct susceptibles per the push law, and
    each susceptible's pull independently succeeds with ``i/(n-1)``.
    We convolve: of the ``s - k_push`` susceptibles missed by pushes,
    each is saved only if its pull also missed.
    """
    _check_state(n, i)
    s = n - i
    pull_hit = i / (n - 1)
    base = push_new_infections(n, i)
    result = [0.0] * (s + 1)
    for k_push, p_push in enumerate(base):
        if p_push == 0.0:
            continue
        remaining = s - k_push
        for k_pull in range(remaining + 1):
            p_pull = (
                math.comb(remaining, k_pull)
                * pull_hit ** k_pull
                * (1.0 - pull_hit) ** (remaining - k_pull)
            )
            result[k_push + k_pull] += p_push * p_pull
    return result


def law_for(mode: str, n: int) -> TransitionLaw:
    if mode == "push":
        return lambda i: push_new_infections(n, i)
    if mode == "pull":
        return lambda i: pull_new_infections(n, i)
    if mode == "push-pull":
        return lambda i: push_pull_new_infections(n, i)
    raise ValueError(f"unknown mode {mode!r}")


def expected_cycles_to_complete(n: int, mode: str = "push") -> float:
    """Exact expected cycles from 1 infected site to all n infected.

    Standard absorbing-chain recursion: with ``E[i]`` the expected
    remaining cycles from ``i`` infected,

        E[n] = 0
        E[i] = (1 + sum_{k>0} P(k) E[i+k]) / (1 - P(0))

    (conditioning away the self-loop at ``i``).
    """
    if n < 2:
        raise ValueError("need at least two sites")
    law = law_for(mode, n)
    expected = [0.0] * (n + 1)
    for i in range(n - 1, 0, -1):
        distribution = law(i)
        p_stay = distribution[0]
        if p_stay >= 1.0:
            raise ArithmeticError(f"absorbing non-final state at i={i}")
        total = 1.0
        for k in range(1, len(distribution)):
            total += distribution[k] * expected[i + k]
        expected[i] = total / (1.0 - p_stay)
    return expected[1]


def state_distribution_after(
    n: int, cycles: int, mode: str = "push", start_infected: int = 1
) -> List[float]:
    """Exact distribution of the infected count after ``cycles``."""
    _check_state(n, start_infected)
    law = law_for(mode, n)
    probabilities = [0.0] * (n + 1)
    probabilities[start_infected] = 1.0
    for __ in range(cycles):
        updated = [0.0] * (n + 1)
        updated[n] = probabilities[n]
        for i in range(1, n):
            p_i = probabilities[i]
            if p_i == 0.0:
                continue
            for k, p_k in enumerate(law(i)):
                if p_k:
                    updated[i + k] += p_i * p_k
        probabilities = updated
    return probabilities


def expected_infected_after(
    n: int, cycles: int, mode: str = "push", start_infected: int = 1
) -> float:
    distribution = state_distribution_after(n, cycles, mode, start_infected)
    return sum(i * p for i, p in enumerate(distribution))


def completion_probability_after(
    n: int, cycles: int, mode: str = "push", start_infected: int = 1
) -> float:
    """P(everyone infected within ``cycles``)."""
    return state_distribution_after(n, cycles, mode, start_infected)[n]


def _check_state(n: int, i: int) -> None:
    if n < 2:
        raise ValueError("need at least two sites")
    if not 1 <= i <= n:
        raise ValueError(f"infected count {i} out of range for n={n}")
