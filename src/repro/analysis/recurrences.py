"""Deterministic recurrences for the anti-entropy endgame (Section 1.3)
and for pull rumor mongering with counters (Section 1.4).

Let ``p_i`` be the probability of a site remaining susceptible after
the i-th anti-entropy cycle.  With most sites already infected:

* **pull**: a site stays susceptible only by contacting another
  susceptible, so ``p_{i+1} = p_i^2`` — quadratic convergence;
* **push**: a site stays susceptible only if no infective site chose
  it, so ``p_{i+1} = p_i (1 - 1/n)^{n (1 - p_i)}``, which for small
  ``p_i`` approaches ``p_{i+1} = p_i e^{-1}`` — merely linear.

This is why anti-entropy used as a *backup* mechanism should use pull
or push-pull.

For pull rumor mongering with feedback and counters, a class-structured
mean-field model tracks the fraction of sites infective with each
counter value; the number of pullers of a site is Poisson(1), giving
reset probability ``1 - e^{-s}`` (some susceptible pulled) and
increment probability ``e^{-s}(1 - e^{-(1-s)})`` (someone pulled, none
susceptible).  The model reproduces the super-exponential
residue-vs-traffic behavior the paper reports (``s = e^{-Theta(m^3)}``
for the counter+feedback case).
"""

from __future__ import annotations

import dataclasses
import math
from typing import List


def pull_tail(p0: float, cycles: int) -> List[float]:
    """``p_{i+1} = p_i^2`` — the pull anti-entropy endgame."""
    _check_probability(p0)
    values = [p0]
    p = p0
    for __ in range(cycles):
        p = p * p
        values.append(p)
    return values


def push_tail(p0: float, n: int, cycles: int) -> List[float]:
    """``p_{i+1} = p_i (1 - 1/n)^{n (1 - p_i)}`` — the push endgame."""
    _check_probability(p0)
    if n < 2:
        raise ValueError("need at least two sites")
    values = [p0]
    p = p0
    base = 1.0 - 1.0 / n
    for __ in range(cycles):
        p = p * base ** (n * (1.0 - p))
        values.append(p)
    return values


def push_tail_factor() -> float:
    """The limiting per-cycle shrink factor for push: ``e^{-1}``."""
    return math.exp(-1.0)


def cycles_to_eliminate(p0: float, n: int, mode: str) -> int:
    """Cycles for the expected susceptible *count* to drop below one.

    A convenient scalar comparison of the two recurrences: how long
    until ``p_i * n < 1``.
    """
    _check_probability(p0)
    if mode not in ("push", "pull"):
        raise ValueError("mode must be 'push' or 'pull'")
    p = p0
    cycles = 0
    threshold = 1.0 / n
    base = 1.0 - 1.0 / n
    while p >= threshold:
        if mode == "pull":
            p = p * p
        else:
            p = p * base ** (n * (1.0 - p))
        cycles += 1
        if cycles > 10_000:
            raise RuntimeError("recurrence did not converge")
    return cycles


@dataclasses.dataclass(slots=True)
class PullModelResult:
    """Outcome of the pull counter+feedback mean-field model."""

    residue: float
    traffic: float            # updates sent per site over the epidemic
    cycles: int
    susceptible_history: List[float]


def pull_counter_feedback_model(
    k: int,
    n: int = 1000,
    max_cycles: int = 10_000,
) -> PullModelResult:
    """Mean-field model of pull rumor mongering, feedback + counter.

    State: susceptible fraction ``s``, infective fractions ``inf[c]``
    for counter values ``0..k-1``, removed fraction implicit.  Each
    cycle every site pulls one partner:

    * a susceptible that pulls an infective becomes infective with
      counter 0 (probability ``i``);
    * an infective's counter resets if at least one susceptible pulled
      it (``1 - e^{-s}``), increments if someone pulled it and no
      susceptible did (``e^{-s}(1 - e^{-(1-s)})``), else is unchanged;
      reaching ``k`` removes the site.

    Traffic counts one update transmission per pull that contacted an
    infective site (the rumor is shipped whether or not it was needed).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if n < 2:
        raise ValueError("need at least two sites")
    s = 1.0 - 1.0 / n
    inf = [0.0] * k
    inf[0] = 1.0 / n
    traffic = 0.0
    history = [s]
    floor = 1.0 / (10.0 * n)
    cycles = 0
    while sum(inf) > floor and cycles < max_cycles:
        i_total = sum(inf)
        # Every site pulls once; pulls that land on an infective ship
        # the update.
        traffic += i_total
        newly_infected = s * i_total
        reset_p = 1.0 - math.exp(-s)
        increment_p = math.exp(-s) * (1.0 - math.exp(-(1.0 - s)))
        stay_p = 1.0 - reset_p - increment_p
        new_inf = [0.0] * k
        resets = 0.0
        for c in range(k):
            resets += inf[c] * reset_p
            new_inf[c] += inf[c] * stay_p
            if c + 1 < k:
                new_inf[c + 1] += inf[c] * increment_p
            # c + 1 == k: the mass is removed.
        new_inf[0] += resets + newly_infected
        s -= newly_infected
        inf = new_inf
        history.append(s)
        cycles += 1
    return PullModelResult(
        residue=s, traffic=traffic, cycles=cycles, susceptible_history=history
    )


def _check_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError("probability must lie in [0, 1]")


def push_counter_feedback_model(
    k: int,
    n: int = 1000,
    max_cycles: int = 10_000,
) -> PullModelResult:
    """Mean-field model of push rumor mongering, feedback + counter.

    Infective sites push once per cycle to a uniform target.  The push
    is unnecessary with probability ``1 - s`` (the target already
    knows), advancing the sender's counter; ``k`` unnecessary pushes
    remove it.  A susceptible is infected when at least one infective
    targeted it: per cycle a fraction ``1 - e^{-i}`` of susceptibles is
    hit (Poisson approximation of ``i n`` throws over ``n`` targets).

    The model reproduces Table 1's structure: ``s = e^{-m}`` with
    residue falling roughly geometrically in ``k``.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if n < 2:
        raise ValueError("need at least two sites")
    s = 1.0 - 1.0 / n
    inf = [0.0] * k
    inf[0] = 1.0 / n
    traffic = 0.0
    history = [s]
    floor = 1.0 / (10.0 * n)
    cycles = 0
    while sum(inf) > floor and cycles < max_cycles:
        i_total = sum(inf)
        traffic += i_total            # every infective pushes once
        newly_infected = s * (1.0 - math.exp(-i_total))
        useless_p = 1.0 - s           # sender's target already knew
        new_inf = [0.0] * k
        for c in range(k):
            new_inf[c] += inf[c] * (1.0 - useless_p)
            if c + 1 < k:
                new_inf[c + 1] += inf[c] * useless_p
            # c + 1 == k: removed.
        new_inf[0] += newly_infected
        s -= newly_infected
        inf = new_inf
        history.append(s)
        cycles += 1
    return PullModelResult(
        residue=s, traffic=traffic, cycles=cycles, susceptible_history=history
    )
