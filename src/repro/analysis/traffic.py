"""Expected link traffic for spatial distributions on a line (Section 3).

With sites on a line and connection probability proportional to
``d^-a``, the paper derives the expected traffic per link per cycle:

    T(n) = O(n)          a < 1
           O(n / log n)  a = 1
           O(n^{2-a})    1 < a < 2
           O(log n)      a = 2
           O(1)          a > 2

while convergence time flips the other way (polynomial in ``log n``
for ``a < 2``, polynomial in ``n`` for ``a > 2``) — hence the paper's
recommendation of ``d^-2`` on a line.  :func:`line_traffic_per_link`
computes the exact expectation so the asymptotic classes can be
verified numerically.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List


def line_traffic_per_link(n: int, a: float) -> List[float]:
    """Exact expected traffic on each of the ``n-1`` links of a line.

    Sites ``0..n-1``; each site makes one conversation per cycle,
    choosing partner ``t`` with probability proportional to
    ``|s-t|^-a``; the conversation crosses every link between them.
    Returns expected crossings per cycle for links ``(i, i+1)``.
    """
    if n < 2:
        raise ValueError("need at least two sites")
    # probability[s][t] via per-site normalization
    loads = [0.0] * (n - 1)
    for s in range(n):
        total = 0.0
        weights = []
        for t in range(n):
            if t == s:
                weights.append(0.0)
            else:
                w = float(abs(s - t)) ** (-a)
                weights.append(w)
                total += w
        for t in range(n):
            if t == s or weights[t] == 0.0:
                continue
            p = weights[t] / total
            lo, hi = (s, t) if s < t else (t, s)
            for link in range(lo, hi):
                loads[link] += p
    return loads


def expected_mean_link_traffic(n: int, a: float) -> float:
    """Mean of :func:`line_traffic_per_link` over all links."""
    loads = line_traffic_per_link(n, a)
    return sum(loads) / len(loads)


def line_traffic_class(a: float) -> str:
    """The asymptotic class of ``T(n)`` for parameter ``a``."""
    if a < 1:
        return "O(n)"
    if a == 1:
        return "O(n/log n)"
    if a < 2:
        return f"O(n^{2 - a:g})"
    if a == 2:
        return "O(log n)"
    return "O(1)"


def theoretical_growth(n: int, a: float) -> float:
    """A representative of the predicted growth class at size ``n``.

    Used to check measured traffic ratios against predicted ratios:
    ``measured(n2)/measured(n1)`` should approximate
    ``theoretical_growth(n2, a)/theoretical_growth(n1, a)`` for large n.
    """
    if n < 2:
        raise ValueError("need at least two sites")
    if a < 1:
        return float(n)
    if a == 1:
        return n / math.log(n)
    if a < 2:
        return float(n) ** (2.0 - a)
    if a == 2:
        return math.log(n)
    return 1.0


def wan_traffic_summary(wan, traffic) -> Dict[str, Any]:
    """Measured traffic attributed to a WAN deployment's named links.

    ``wan`` is a :class:`repro.workload.geo.WanNetwork` and ``traffic``
    the :class:`repro.sim.metrics.LinkTraffic` a cluster accumulated on
    its topology.  Returns the per-link rows (long-haul ``wan:*`` links
    and ``intra:<dc>`` rollups) plus ``wan_share``: the fraction of all
    conversation link-crossings that happen on long-haul links — the
    number the paper's Section 3 spatial distributions exist to push
    down.
    """
    links = wan.link_report(traffic)
    wan_conversations = sum(
        row["conversations"] for row in links if str(row["link"]).startswith("wan:")
    )
    total_conversations = float(traffic.compare.total)
    busiest = max(
        (row for row in links if str(row["link"]).startswith("wan:")),
        key=lambda row: row["conversations"],
        default=None,
    )
    return {
        "links": links,
        "wan_conversations": round(wan_conversations, 3),
        "wan_share": round(
            wan_conversations / total_conversations if total_conversations else 0.0,
            4,
        ),
        "busiest_wan_link": None if busiest is None else busiest["link"],
    }
