"""Command-line interface: regenerate any paper table or figure.

    python -m repro table1 --runs 50
    python -m repro table4 --runs 250
    python -m repro pathologies
    python -m repro tau
    python -m repro all --runs 10

Each subcommand prints the measured table next to the paper's values
(where the paper gives absolute numbers).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.report import format_table

RUMOR_HEADERS = ["k", "residue", "m", "t_ave", "t_last"]
SPATIAL_HEADERS = [
    "dist", "t_last", "t_ave", "cmp avg", "cmp Bushey", "upd avg", "upd Bushey",
]


def _print_rumor_table(rows, paper, title: str) -> None:
    print(format_table(RUMOR_HEADERS, [r.as_tuple() for r in rows], title))
    print(format_table(RUMOR_HEADERS, paper, title="paper"))
    print()


def cmd_table1(args) -> None:
    from repro.experiments.tables import PAPER_TABLE1, table1

    rows = table1(n=args.n, runs=args.runs)
    _print_rumor_table(rows, PAPER_TABLE1, "Table 1: push, feedback+counter")


def cmd_table2(args) -> None:
    from repro.experiments.tables import PAPER_TABLE2, table2

    rows = table2(n=args.n, runs=args.runs)
    _print_rumor_table(rows, PAPER_TABLE2, "Table 2: push, blind+coin")


def cmd_table3(args) -> None:
    from repro.experiments.tables import PAPER_TABLE3, table3

    rows = table3(n=args.n, runs=args.runs)
    _print_rumor_table(rows, PAPER_TABLE3, "Table 3: pull, feedback+counter")


def _spatial(args, policy) -> None:
    from repro.experiments.spatial import spatial_table

    rows = spatial_table(runs=args.runs, policy=policy)
    print(
        format_table(
            SPATIAL_HEADERS,
            [r.as_tuple() for r in rows],
            title="synthetic CIN (paper values are for the real CIN; see EXPERIMENTS.md)",
        )
    )
    print()


def cmd_table4(args) -> None:
    from repro.sim.transport import UNLIMITED

    print("Table 4: push-pull anti-entropy, no connection limit")
    _spatial(args, UNLIMITED)


def cmd_table5(args) -> None:
    from repro.sim.transport import ConnectionPolicy

    print("Table 5: push-pull anti-entropy, connection limit 1, hunt 0")
    _spatial(args, ConnectionPolicy(connection_limit=1, hunt_limit=0))


def cmd_pathologies(args) -> None:
    from repro.experiments.pathologies import (
        backup_fixes_pathology,
        figure1_experiment,
        figure2_experiment,
    )

    trials = args.runs * 5
    fig1 = figure1_experiment(m=20, k=2, trials=trials)
    fig2 = figure2_experiment(trials=trials)
    fixed = backup_fixes_pathology(trials=args.runs)
    print(
        format_table(
            ["experiment", "trials", "failures", "notes"],
            [
                ("Figure 1 push k=2", fig1.trials, fig1.failures,
                 f"{fig1.died_in_pair} died in {{s,t}}"),
                ("Figure 2 push k=2", fig2.trials, fig2.failures,
                 f"{fig2.missed_lonely} missed the lonely site"),
                ("Figure 1 + anti-entropy backup", fixed.trials, fixed.failures,
                 "backup guarantees coverage"),
            ],
            title="Section 3.2 pathologies (Q^-2 spatial rumors)",
        )
    )
    print()


def cmd_deathcerts(args) -> None:
    from repro.experiments.deathcert_scenarios import (
        dormant_certificate_scenario,
        fixed_threshold_scenario,
        reinstatement_scenario,
        resurrection_scenario,
    )

    rows = [
        ("naive delete", resurrection_scenario(use_certificate=False).resurrected),
        ("death certificate", resurrection_scenario(use_certificate=True).resurrected),
        ("fixed threshold tau1", fixed_threshold_scenario().resurrected),
        ("dormant certificates", dormant_certificate_scenario().resurrected),
        ("reinstatement cancelled?",
         not reinstatement_scenario().value_visible_everywhere),
    ]
    print(
        format_table(
            ["scenario", "item resurrected / lost"],
            rows,
            title="Section 2: deletion scenarios",
        )
    )
    print()


def cmd_backup(args) -> None:
    from repro.experiments.backup_scenarios import compare_recovery_strategies

    results = compare_recovery_strategies(n=args.n if args.n <= 500 else 150)
    print(
        format_table(
            ["strategy", "update sends", "mail messages", "cycles", "complete"],
            [
                (r.strategy, r.update_sends, r.mail_messages,
                 r.cycles_to_converge, r.converged)
                for r in results
            ],
            title="Section 1.5: recovery from 50% coverage",
        )
    )
    print()


def cmd_line(args) -> None:
    from repro.experiments.spatial import line_scaling

    rows = line_scaling(runs=max(2, args.runs // 3))
    print(
        format_table(
            ["n", "a", "link traffic/cycle", "t_last"],
            [(r.n, r.a, r.mean_link_traffic, r.t_last) for r in rows],
            title="Section 3: d^-a on a line",
        )
    )
    print()


def cmd_tau(args) -> None:
    from repro.experiments.workloads import checksum_tau_experiment

    results = checksum_tau_experiment(cycles=max(40, args.runs * 5))
    print(
        format_table(
            ["tau", "checksum success", "entries/exchange", "full compares"],
            [
                (r.tau, r.checksum_success_rate,
                 r.entries_examined_per_exchange, r.full_compare_rate)
                for r in results
            ],
            title="Section 1.3: choosing tau under continuous load",
        )
    )
    print()


def cmd_hierarchy(args) -> None:
    from repro.experiments.spatial import spatial_table
    from repro.topology.cin import build_cin_like_topology
    from repro.topology.distance import SiteDistances
    from repro.topology.hierarchy import HierarchicalSelector
    from repro.topology.spatial import SortedListSelector, UniformSelector

    cin = build_cin_like_topology()
    distances = SiteDistances(cin.topology)
    selectors = [
        ("uniform", UniformSelector(cin.sites)),
        ("a=2.0", SortedListSelector(distances, a=2.0)),
        ("hierarchy", HierarchicalSelector(distances, backbone_count=16)),
    ]
    rows = spatial_table(cin=cin, runs=args.runs, selectors=selectors)
    print(
        format_table(
            SPATIAL_HEADERS,
            [r.as_tuple() for r in rows],
            title="Section 4 extension: dynamic hierarchy",
        )
    )
    print()


COMMANDS: Dict[str, Callable] = {
    "table1": cmd_table1,
    "table2": cmd_table2,
    "table3": cmd_table3,
    "table4": cmd_table4,
    "table5": cmd_table5,
    "pathologies": cmd_pathologies,
    "deathcerts": cmd_deathcerts,
    "backup": cmd_backup,
    "line": cmd_line,
    "tau": cmd_tau,
    "hierarchy": cmd_hierarchy,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables and figures from 'Epidemic Algorithms "
        "for Replicated Database Maintenance' (PODC 1987).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(COMMANDS) + ["all"],
        help="which experiment to run ('all' runs every one)",
    )
    parser.add_argument(
        "--runs", type=int, default=10,
        help="trials per table row (paper used up to 250; default 10)",
    )
    parser.add_argument(
        "--n", type=int, default=1000,
        help="population for the uniform-network tables (default 1000)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.runs < 1:
        print("error: --runs must be >= 1", file=sys.stderr)
        return 2
    if args.n < 2:
        print("error: --n must be >= 2", file=sys.stderr)
        return 2
    try:
        if args.experiment == "all":
            for name in sorted(COMMANDS):
                print(f"=== {name} ===")
                COMMANDS[name](args)
        else:
            COMMANDS[args.experiment](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        import os

        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        os._exit(0)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
