"""Command-line interface: regenerate any paper table or figure, or run
the live gossip runtime.

    python -m repro table1 --runs 50
    python -m repro table4 --runs 250
    python -m repro pathologies
    python -m repro tau
    python -m repro all --runs 10

    python -m repro live-demo --nodes 8          # N asyncio nodes on localhost
    python -m repro live-demo --nodes 8 --churn  # kill + restart one mid-run
    python -m repro live-demo --json --trace-file run.jsonl
    python -m repro trace analyze run.jsonl      # infection trees from a trace
    python -m repro node --config roster.json --id 3
    python -m repro status --config roster.json --id 3

Each experiment subcommand prints the measured table next to the
paper's values (where the paper gives absolute numbers); ``live-demo``
prints measured convergence delay (t_ave, t_last) and per-site traffic
over real TCP sockets (see docs/live_runtime.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.experiments.report import format_table

RUMOR_HEADERS = ["k", "residue", "m", "t_ave", "t_last"]
SPATIAL_HEADERS = [
    "dist", "t_last", "t_ave", "cmp avg", "cmp Bushey", "upd avg", "upd Bushey",
]


def _print_rumor_table(rows, paper, title: str) -> None:
    print(format_table(RUMOR_HEADERS, [r.as_tuple() for r in rows], title))
    print(format_table(RUMOR_HEADERS, paper, title="paper"))
    print()


def _runner(args):
    """The shared TrialRunner for this invocation, built from --jobs."""
    from repro.experiments.runner import TrialRunner

    return TrialRunner(jobs=getattr(args, "jobs", None))


def cmd_table1(args) -> None:
    from repro.experiments.tables import PAPER_TABLE1, table1

    rows = table1(n=args.n, runs=args.runs, runner=_runner(args))
    _print_rumor_table(rows, PAPER_TABLE1, "Table 1: push, feedback+counter")


def cmd_table2(args) -> None:
    from repro.experiments.tables import PAPER_TABLE2, table2

    rows = table2(n=args.n, runs=args.runs, runner=_runner(args))
    _print_rumor_table(rows, PAPER_TABLE2, "Table 2: push, blind+coin")


def cmd_table3(args) -> None:
    from repro.experiments.tables import PAPER_TABLE3, table3

    rows = table3(n=args.n, runs=args.runs, runner=_runner(args))
    _print_rumor_table(rows, PAPER_TABLE3, "Table 3: pull, feedback+counter")


def cmd_tables(args) -> None:
    """Tables 1-3 in one go — the determinism acceptance target:
    the output is byte-identical whatever --jobs is."""
    cmd_table1(args)
    cmd_table2(args)
    cmd_table3(args)


def _spatial(args, policy) -> None:
    from repro.experiments.spatial import spatial_table

    rows = spatial_table(runs=args.runs, policy=policy, runner=_runner(args))
    print(
        format_table(
            SPATIAL_HEADERS,
            [r.as_tuple() for r in rows],
            title="synthetic CIN (paper values are for the real CIN; see EXPERIMENTS.md)",
        )
    )
    print()


def cmd_table4(args) -> None:
    from repro.sim.transport import UNLIMITED

    print("Table 4: push-pull anti-entropy, no connection limit")
    _spatial(args, UNLIMITED)


def cmd_table5(args) -> None:
    from repro.sim.transport import ConnectionPolicy

    print("Table 5: push-pull anti-entropy, connection limit 1, hunt 0")
    _spatial(args, ConnectionPolicy(connection_limit=1, hunt_limit=0))


def cmd_pathologies(args) -> None:
    from repro.experiments.pathologies import (
        backup_fixes_pathology,
        figure1_experiment,
        figure2_experiment,
    )

    runner = _runner(args)
    trials = args.runs * 5
    fig1 = figure1_experiment(m=20, k=2, trials=trials, runner=runner)
    fig2 = figure2_experiment(trials=trials, runner=runner)
    fixed = backup_fixes_pathology(trials=args.runs, runner=runner)
    print(
        format_table(
            ["experiment", "trials", "failures", "notes"],
            [
                ("Figure 1 push k=2", fig1.trials, fig1.failures,
                 f"{fig1.died_in_pair} died in {{s,t}}"),
                ("Figure 2 push k=2", fig2.trials, fig2.failures,
                 f"{fig2.missed_lonely} missed the lonely site"),
                ("Figure 1 + anti-entropy backup", fixed.trials, fixed.failures,
                 "backup guarantees coverage"),
            ],
            title="Section 3.2 pathologies (Q^-2 spatial rumors)",
        )
    )
    print()


def cmd_deathcerts(args) -> None:
    from repro.experiments.deathcert_scenarios import deletion_suite

    rows = [
        (
            label if label != "reinstatement" else "reinstatement cancelled?",
            (
                result.resurrected
                if label != "reinstatement"
                else not result.value_visible_everywhere
            ),
        )
        for label, result in deletion_suite(runner=_runner(args))
    ]
    print(
        format_table(
            ["scenario", "item resurrected / lost"],
            rows,
            title="Section 2: deletion scenarios",
        )
    )
    print()


def cmd_backup(args) -> None:
    from repro.experiments.backup_scenarios import compare_recovery_strategies

    results = compare_recovery_strategies(
        n=args.n if args.n <= 500 else 150, runner=_runner(args)
    )
    print(
        format_table(
            ["strategy", "update sends", "mail messages", "cycles", "complete"],
            [
                (r.strategy, r.update_sends, r.mail_messages,
                 r.cycles_to_converge, r.converged)
                for r in results
            ],
            title="Section 1.5: recovery from 50% coverage",
        )
    )
    print()


def cmd_line(args) -> None:
    from repro.experiments.spatial import line_scaling

    rows = line_scaling(runs=max(2, args.runs // 3), runner=_runner(args))
    print(
        format_table(
            ["n", "a", "link traffic/cycle", "t_last"],
            [(r.n, r.a, r.mean_link_traffic, r.t_last) for r in rows],
            title="Section 3: d^-a on a line",
        )
    )
    print()


def cmd_tau(args) -> None:
    from repro.experiments.workloads import checksum_tau_experiment

    results = checksum_tau_experiment(
        cycles=max(40, args.runs * 5), runner=_runner(args)
    )
    print(
        format_table(
            ["tau", "checksum success", "entries/exchange", "full compares"],
            [
                (r.tau, r.checksum_success_rate,
                 r.entries_examined_per_exchange, r.full_compare_rate)
                for r in results
            ],
            title="Section 1.3: choosing tau under continuous load",
        )
    )
    print()


def cmd_hierarchy(args) -> None:
    from repro.experiments.spatial import spatial_table
    from repro.topology.cin import build_cin_like_topology
    from repro.topology.distance import SiteDistances
    from repro.topology.hierarchy import HierarchicalSelector
    from repro.topology.spatial import SortedListSelector, UniformSelector

    cin = build_cin_like_topology()
    distances = SiteDistances(cin.topology)
    selectors = [
        ("uniform", UniformSelector(cin.sites)),
        ("a=2.0", SortedListSelector(distances, a=2.0)),
        ("hierarchy", HierarchicalSelector(distances, backbone_count=16)),
    ]
    rows = spatial_table(
        cin=cin, runs=args.runs, selectors=selectors, runner=_runner(args)
    )
    print(
        format_table(
            SPATIAL_HEADERS,
            [r.as_tuple() for r in rows],
            title="Section 4 extension: dynamic hierarchy",
        )
    )
    print()


def cmd_bench(args) -> None:
    """Run the benchmark suite and record BENCH_<date>.json."""
    from repro.experiments.bench import (
        compare_reports,
        load_report,
        run_bench,
        summary_lines,
        write_report,
    )

    report = run_bench(
        quick=args.quick,
        jobs=args.jobs,
        progress=lambda message: print(message, file=sys.stderr),
    )
    path = write_report(report, args.bench_output)
    print("\n".join(summary_lines(report)))
    print(f"report written to {path}")
    if args.compare:
        baseline = load_report(args.compare)
        regressions = compare_reports(
            report, baseline, max_regression=args.max_regression
        )
        if regressions:
            for line in regressions:
                print(f"regression: {line}", file=sys.stderr)
            raise SystemExit(1)
        print(f"no regressions vs {args.compare} (limit {args.max_regression:g}x)")


def cmd_trace(args) -> None:
    """``trace analyze <trace.jsonl>``: infection trees from a trace."""
    import json

    from repro.obs.events import TraceError, read_trace
    from repro.obs.lineage import LineageIndex, render_analysis

    rest = list(args.rest)
    if len(rest) != 2 or rest[0] != "analyze":
        print("usage: repro trace analyze <trace.jsonl>", file=sys.stderr)
        raise SystemExit(2)
    path = rest[1]
    try:
        index = LineageIndex.from_events(read_trace(path))
    except (OSError, TraceError) as error:
        print(f"error: {error}", file=sys.stderr)
        raise SystemExit(2) from None
    if args.json:
        print(json.dumps(index.to_dict(), indent=2, sort_keys=True))
    else:
        print("\n".join(render_analysis(index)))


def _node_config(args):
    from repro.net.node import NodeConfig
    from repro.protocols.base import ExchangeMode

    return NodeConfig(
        anti_entropy_interval=args.interval,
        rumor_interval=max(args.interval / 4.0, 0.01),
        mode=ExchangeMode(args.mode),
        strategy=args.strategy,
        tau=args.tau,
        selector=args.selector,
    )


def cmd_live_demo(args) -> None:
    import asyncio
    import json

    from repro.net.runner import live_demo

    report = asyncio.run(
        live_demo(
            nodes=args.nodes,
            config=_node_config(args),
            churn=args.churn,
            timeout=args.time_limit,
            trace_file=args.trace_file,
            metrics_file=args.metrics_json,
        )
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print("live demo: one update through a real TCP gossip cluster")
        print("\n".join(report.lines()))
    if not report.converged:
        raise SystemExit(1)


def cmd_workload(args) -> None:
    """``workload``: steady-state traffic through sim and/or live runs.

    By default runs BOTH the simulator harness (optionally with the
    3-datacenter WAN model) and a live localhost cluster under the same
    operation mix, and prints both ``repro-workload/1`` reports — the
    schemas are identical, only the time units differ (cycles vs
    seconds).  ``--rate`` is operations per cycle in the simulator and
    operations per second live.
    """
    import json

    from repro.workload.generators import ClientPool, WorkloadConfig
    from repro.workload.geo import three_datacenters
    from repro.workload.steady import (
        SteadyStateConfig,
        run_steady_state,
        summary_lines,
    )

    workload = WorkloadConfig(
        updates_per_cycle=args.rate,
        key_space=args.key_space,
        zipf_s=args.zipf,
        read_fraction=args.read_fraction,
        delete_fraction=args.delete_fraction,
    )
    pool = ClientPool() if args.closed_loop else None
    reports: Dict[str, Dict] = {}
    if args.runtime in ("sim", "both"):
        wan = None
        if args.wan:
            per_dc = max(args.nodes // 3, 1)
            extra = max(args.nodes - 3 * per_dc, 0)
            wan = three_datacenters(
                sites_per_dc=(per_dc + extra, per_dc, per_dc)
            )
        reports["sim"] = run_steady_state(
            SteadyStateConfig(
                workload=workload,
                n=args.nodes,
                wan=wan,
                cycles=args.cycles,
                window=max(1, min(args.cycles // 10, args.cycles)),
                seed=args.seed,
                pool=pool,
            )
        )
    if args.runtime in ("live", "both"):
        from repro.workload.live import (
            LiveWorkloadConfig,
            run_live_workload_sync,
        )

        reports["live"] = run_live_workload_sync(
            LiveWorkloadConfig(
                workload=workload,
                nodes=max(args.nodes, 3),
                duration=args.duration,
                window=max(args.duration / 4.0, 0.25),
                seed=args.seed,
                node_config=_node_config(args),
                quiesce_timeout=args.time_limit,
            )
        )
    if args.curves_out is not None:
        with open(args.curves_out, "w", encoding="utf-8") as handle:
            json.dump(reports, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.json:
        print(json.dumps(reports, indent=2, sort_keys=True))
    else:
        print("steady-state workload: generated traffic, measured curves")
        for report in reports.values():
            print("\n".join(summary_lines(report)))
    for report in reports.values():
        if not report["converged_after_quiesce"]:
            raise SystemExit(1)


def cmd_status(args) -> None:
    import asyncio
    import json

    from repro.net.runner import query_status

    if args.config is None or args.id is None:
        print("error: 'status' requires --config and --id", file=sys.stderr)
        raise SystemExit(2)
    payload = asyncio.run(query_status(args.config, args.id))
    print(json.dumps(payload, indent=2, sort_keys=True))


def cmd_node(args) -> None:
    import asyncio

    from repro.net.runner import serve_node

    if args.config is None or args.id is None:
        print("error: 'node' requires --config and --id", file=sys.stderr)
        raise SystemExit(2)
    try:
        asyncio.run(serve_node(args.config, args.id, _node_config(args)))
    except KeyboardInterrupt:
        pass


#: Paper experiments: included in ``all`` and driven by --runs/--n.
COMMANDS: Dict[str, Callable] = {
    "table1": cmd_table1,
    "table2": cmd_table2,
    "table3": cmd_table3,
    "table4": cmd_table4,
    "table5": cmd_table5,
    "pathologies": cmd_pathologies,
    "deathcerts": cmd_deathcerts,
    "backup": cmd_backup,
    "line": cmd_line,
    "tau": cmd_tau,
    "hierarchy": cmd_hierarchy,
}

#: Live-runtime commands: not experiments, so excluded from ``all``.
LIVE_COMMANDS: Dict[str, Callable] = {
    "live-demo": cmd_live_demo,
    "node": cmd_node,
    "status": cmd_status,
    "workload": cmd_workload,
}

#: Meta commands: aggregates and tooling, also excluded from ``all``
#: ('tables' would duplicate table1-3; 'bench' writes report files;
#: 'trace' analyzes an existing trace file).
META_COMMANDS: Dict[str, Callable] = {
    "tables": cmd_tables,
    "bench": cmd_bench,
    "trace": cmd_trace,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables and figures from 'Epidemic Algorithms "
        "for Replicated Database Maintenance' (PODC 1987), or run the live "
        "asyncio gossip runtime (live-demo, node).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(COMMANDS) + sorted(LIVE_COMMANDS) + sorted(META_COMMANDS)
        + ["all"],
        help="which experiment to run ('all' runs every simulator one)",
    )
    parser.add_argument(
        "rest",
        nargs="*",
        default=[],
        metavar="ARG",
        help="subcommand arguments (only 'trace' takes any: "
        "trace analyze <trace.jsonl>)",
    )
    parser.add_argument(
        "--runs", type=int, default=10,
        help="trials per table row (paper used up to 250; default 10)",
    )
    parser.add_argument(
        "--n", type=int, default=1000,
        help="population for the uniform-network tables (default 1000)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for trial batches (default: all CPU cores; "
        "1 = serial; results are identical either way)",
    )
    bench = parser.add_argument_group("benchmark (bench)")
    bench.add_argument(
        "--quick", action="store_true",
        help="bench: shrink every scenario for a CI smoke run",
    )
    bench.add_argument(
        "--bench-output", "--output", dest="bench_output",
        default=None, metavar="PATH",
        help="bench: report path (default BENCH_<date>.json in the CWD; "
        "an existing same-day report falls back to BENCH_<date>-2.json)",
    )
    bench.add_argument(
        "--compare", default=None, metavar="BASELINE",
        help="bench: fail when a scenario regresses vs this baseline report",
    )
    bench.add_argument(
        "--max-regression", type=float, default=2.0, metavar="FACTOR",
        help="bench: allowed wall-clock growth factor for --compare "
        "(default 2.0)",
    )
    work = parser.add_argument_group("workload (steady-state traffic)")
    work.add_argument(
        "--runtime", choices=["sim", "live", "both"], default="both",
        help="workload: which runtime(s) to drive (default both)",
    )
    work.add_argument(
        "--rate", type=float, default=8.0,
        help="workload: operation rate — per cycle in the simulator, "
        "per second live (default 8)",
    )
    work.add_argument(
        "--cycles", type=int, default=60,
        help="workload: simulated cycles of sustained injection (default 60)",
    )
    work.add_argument(
        "--duration", type=float, default=4.0,
        help="workload: live injection duration in seconds (default 4)",
    )
    work.add_argument(
        "--key-space", type=int, default=50,
        help="workload: number of distinct keys (default 50)",
    )
    work.add_argument(
        "--zipf", type=float, default=1.1,
        help="workload: Zipf skew of key popularity, 0 = uniform (default 1.1)",
    )
    work.add_argument(
        "--read-fraction", type=float, default=0.3,
        help="workload: fraction of operations that are staleness-sampling "
        "reads (default 0.3)",
    )
    work.add_argument(
        "--delete-fraction", type=float, default=0.05,
        help="workload: fraction of operations that are deletions (default 0.05)",
    )
    work.add_argument(
        "--wan", action="store_true",
        help="workload: run the simulator over the 3-datacenter WAN model "
        "(latency matrix + bandwidth caps) instead of a uniform network",
    )
    work.add_argument(
        "--closed-loop", action="store_true",
        help="workload: closed-loop client pool with think times instead of "
        "open-loop Poisson arrivals",
    )
    work.add_argument(
        "--seed", type=int, default=0,
        help="workload: master seed for the generators (default 0)",
    )
    work.add_argument(
        "--curves-out", default=None, metavar="PATH",
        help="workload: also write the full reports (curves included) as JSON",
    )
    live = parser.add_argument_group("live runtime (live-demo, node)")
    live.add_argument(
        "--nodes", type=int, default=8,
        help="cluster size for live-demo (default 8)",
    )
    live.add_argument(
        "--churn", action="store_true",
        help="live-demo: kill one node mid-run and restart it empty",
    )
    live.add_argument(
        "--interval", type=float, default=0.2,
        help="anti-entropy period in seconds (default 0.2)",
    )
    live.add_argument(
        "--mode", choices=["push", "pull", "push-pull"], default="push-pull",
        help="anti-entropy exchange mode (default push-pull)",
    )
    live.add_argument(
        "--strategy", choices=["full", "checksum", "hierarchical"], default="full",
        help="difference-resolution strategy (default full)",
    )
    live.add_argument(
        "--tau", type=float, default=30.0,
        help="recent-update window for --strategy checksum (seconds)",
    )
    live.add_argument(
        "--selector", default="uniform",
        help="partner selection: 'uniform' or 'spatial:<a>' (default uniform)",
    )
    live.add_argument(
        "--time-limit", type=float, default=30.0,
        help="live-demo convergence timeout in seconds (default 30)",
    )
    live.add_argument(
        "--json", action="store_true",
        help="live-demo: print the report as machine-readable JSON",
    )
    live.add_argument(
        "--trace-file", default=None, metavar="PATH",
        help="live-demo: stream every observability event to a JSONL trace",
    )
    live.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="live-demo: dump each node's final STATUS snapshot as JSON",
    )
    live.add_argument(
        "--config", default=None,
        help="node/status: path to the membership roster (.json or .toml)",
    )
    live.add_argument(
        "--id", type=int, default=None,
        help="node/status: the target node's id in the roster",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.runs < 1:
        print("error: --runs must be >= 1", file=sys.stderr)
        return 2
    if args.n < 2:
        print("error: --n must be >= 2", file=sys.stderr)
        return 2
    if args.jobs is not None and args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.rest and args.experiment != "trace":
        print(
            f"error: unexpected arguments {args.rest!r} "
            f"(only 'trace' takes positional arguments)",
            file=sys.stderr,
        )
        return 2
    try:
        if args.experiment == "all":
            for name in sorted(COMMANDS):
                print(f"=== {name} ===")
                COMMANDS[name](args)
        elif args.experiment in META_COMMANDS:
            META_COMMANDS[args.experiment](args)
        elif args.experiment in LIVE_COMMANDS:
            try:
                LIVE_COMMANDS[args.experiment](args)
            except ValueError as error:
                # Bad roster / cluster size / selector spec: a config
                # problem, not a crash (MembershipError is a ValueError).
                print(f"error: {error}", file=sys.stderr)
                return 2
        else:
            COMMANDS[args.experiment](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        import os

        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        os._exit(0)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
