"""The cluster runtime: sites, cycles, injection and accounting.

A :class:`Cluster` owns one :class:`~repro.cluster.site.Site` per
database site of a topology, advances simulated time in the paper's
synchronous *cycles*, lets clients inject updates and deletes at any
site, and gives the distribution protocols the hooks they need:
partner-selection randomness, per-conversation traffic accounting
(routed over the topology's shortest paths when one exists) and
news notifications for metric collection and protocol coupling
(e.g. a direct-mail delivery turning into a hot rumor).
"""

from repro.cluster.site import Site
from repro.cluster.cluster import Cluster
from repro.cluster.invariants import InvariantChecker, InvariantViolation

__all__ = ["Site", "Cluster", "InvariantChecker", "InvariantViolation"]
