"""The cluster driver: synchronous cycles over a set of replica sites.

Responsibilities:

* build one :class:`Site` per database site of a topology (or ``n``
  sites with no topology for the uniform-network experiments of
  Tables 1-3);
* advance time in cycles — each cycle first drains the event engine
  (mail deliveries and any other scheduled work) and then lets every
  attached protocol execute its per-cycle step;
* route update and delete injections to the protocols;
* account traffic: update sends and comparisons globally, and per
  link (routed over shortest paths) when the topology has links;
* track the spread of one designated update for residue / delay
  metrics, and notify observers whenever any site learns news.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.store import ApplyResult, StoreUpdate
from repro.core.timestamps import SimClock
from repro.obs.events import EventBus, EventKind
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import NULL_PROFILER, Profiler
from repro.obs.spans import TraceHopLru, emit_delivery_span, trace_id_of
from repro.sim.engine import Simulator
from repro.sim.metrics import EpidemicMetrics, LinkTraffic
from repro.sim.rng import RngRegistry
from repro.topology.graph import Topology, sites_only

NewsObserver = Callable[[int, StoreUpdate, ApplyResult], None]


class Cluster:
    """A set of replica sites advanced in synchronous cycles."""

    def __init__(
        self,
        topology: Optional[Topology] = None,
        n: Optional[int] = None,
        seed: int = 0,
        clock_skew: Callable[[int], float] | None = None,
        participants: Optional[Sequence[int]] = None,
        bus: Optional[EventBus] = None,
    ):
        """``participants`` restricts the replica set to a subset of the
        topology's sites — the Clearinghouse situation where a domain is
        stored "on as few as one, or as many as all" of the servers.
        Traffic is still routed over the full topology.

        ``bus`` attaches an observability event bus
        (:mod:`repro.obs.events`); the cluster then emits the same
        typed events the live runtime does (``update-injected``,
        ``news-received``, ``death-cert-activated``,
        ``cycle-completed``), timestamped in cycles."""
        if topology is None:
            if n is None:
                raise ValueError("provide a topology or a site count n")
            topology = sites_only(n)
        elif n is not None and n != topology.site_count:
            raise ValueError("n disagrees with the topology's site count")
        topology.validate()
        self.topology = topology
        if participants is None:
            self._participants = list(topology.sites)
        else:
            unknown = set(participants) - set(topology.sites)
            if unknown:
                raise ValueError(f"participants not in topology: {sorted(unknown)}")
            if not participants:
                raise ValueError("participants must not be empty")
            self._participants = list(participants)
        self.rng = RngRegistry(seed)
        self.bus = bus if bus is not None else EventBus(clock=lambda: float(self.cycle))
        self.simulator = Simulator()
        self.cycle = 0
        self.sites: Dict[int, "Site"] = {}
        from repro.cluster.site import Site  # local import: cycle guard

        self._clock_skew = clock_skew
        for site_id in self._participants:
            self.sites[site_id] = Site(
                site_id, self._make_clock(site_id), self.rng.site_stream(site_id)
            )
        self.protocols: List = []
        self.traffic = LinkTraffic()
        # Optional WAN model (repro.workload.geo.WanNetwork): per-cycle
        # link budgets gate conversations, and traffic charges the
        # capped links' ledgers.  None on non-geo topologies.
        self.wan = None
        self.metrics: Optional[EpidemicMetrics] = None
        self._tracked: Optional[StoreUpdate] = None
        self._observers: List[NewsObserver] = []
        self._routable = topology.edge_count > 0
        # Partition state: site -> group id; None means fully connected.
        self._partition: Optional[Dict[int, int]] = None
        # Phase timers (repro.obs.profiling); the null profiler keeps the
        # hot path free of perf_counter calls until enable_profiling().
        self.profiler: Profiler = NULL_PROFILER
        # trace id -> {site -> hop count}, maintained only while the bus
        # has sinks; lets delivery spans carry distance-from-origin.
        # LRU-bounded so long workloads don't accumulate one entry per
        # update ever injected.
        self._span_hops = TraceHopLru()

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------

    def _make_clock(self, site_id: int) -> SimClock:
        """A site clock honoring the cluster's ``clock_skew`` function —
        for construction-time sites and late joiners alike."""
        skew = self._clock_skew(site_id) if self._clock_skew is not None else 0.0
        return SimClock(site_id, lambda: float(self.cycle), skew=skew)

    @property
    def n(self) -> int:
        return len(self.sites)

    @property
    def site_ids(self) -> List[int]:
        return list(self._participants)

    def site(self, site_id: int) -> "Site":
        return self.sites[site_id]

    def up_site_ids(self) -> List[int]:
        return [site_id for site_id in self.site_ids if self.sites[site_id].up]

    # ------------------------------------------------------------------
    # Dynamic membership ("a slowly changing network", Section 0)
    # ------------------------------------------------------------------

    def add_site(self, site_id: Optional[int] = None) -> int:
        """Add a site to the replica set at the current cycle.

        On an edgeless (uniform) topology a fresh node is created; on a
        routed topology ``site_id`` must name an existing topology site
        that is not yet a participant.  The new site starts with an
        empty store and catches up through whatever distribution
        mechanisms are attached.  Protocols are notified via
        ``on_site_added`` so they can initialize per-site state; any
        auto-created uniform selectors refresh to include the newcomer.
        """
        from repro.cluster.site import Site  # local import: cycle guard

        if site_id is None:
            if self.topology.edge_count > 0:
                raise ValueError(
                    "on a routed topology, name an existing topology site"
                )
            site_id = self.topology.new_node(site=True)
        else:
            if site_id in self.sites:
                raise ValueError(f"site {site_id} is already a participant")
            if site_id not in self.topology.sites:
                if self.topology.edge_count > 0:
                    raise ValueError(f"{site_id} is not a site of the topology")
                self.topology.add_node(site_id, site=True)
        self.sites[site_id] = Site(
            site_id, self._make_clock(site_id), self.rng.site_stream(site_id)
        )
        self._participants.append(site_id)
        for protocol in self.protocols:
            protocol.on_site_added(site_id)
        return site_id

    def remove_site(self, site_id: int) -> None:
        """Remove a site from the replica set permanently.

        The site's store is discarded (it no longer replicates this
        database); protocols drop their per-site state.  Note the
        Section 2 caveat this models: dormant death certificates held
        only by removed sites are lost with them.
        """
        if site_id not in self.sites:
            raise ValueError(f"site {site_id} is not a participant")
        if len(self._participants) <= 1:
            raise ValueError("cannot remove the last site")
        # Update membership first so protocols notified below (which may
        # rebuild selectors from site_ids) see the post-removal view.
        del self.sites[site_id]
        self._participants.remove(site_id)
        if self._partition is not None:
            self._partition.pop(site_id, None)
        for protocol in self.protocols:
            protocol.on_site_removed(site_id)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    def set_partition(self, groups: Sequence[Sequence[int]]) -> None:
        """Split the network: sites may only converse within their
        group.  Sites not named in any group form one implicit group of
        their own (group -1).  Mail already in flight still arrives —
        the paper's mail queues survive outages on stable storage."""
        assignment: Dict[int, int] = {}
        for index, group in enumerate(groups):
            for site_id in group:
                if site_id not in self.sites:
                    raise ValueError(f"not a participant site: {site_id}")
                if site_id in assignment:
                    raise ValueError(f"site {site_id} in two partition groups")
                assignment[site_id] = index
        self._partition = assignment

    def clear_partition(self) -> None:
        """Heal the partition."""
        self._partition = None

    @property
    def partitioned(self) -> bool:
        return self._partition is not None

    def can_communicate(self, a: int, b: int) -> bool:
        """Whether two sites can currently hold a conversation.

        False when either is down, has left the replica set (a stale
        selector may still name it), or a partition separates them.
        """
        site_a = self.sites.get(a)
        site_b = self.sites.get(b)
        if site_a is None or site_b is None or not (site_a.up and site_b.up):
            return False
        if self._partition is not None and (
            self._partition.get(a, -1) != self._partition.get(b, -1)
        ):
            return False
        if self.wan is not None and not self.wan.conversation_allowed(a, b):
            return False
        return True

    def add_protocol(self, protocol) -> "Cluster":
        protocol.attach(self)
        self.protocols.append(protocol)
        return self

    def attach_wan(self, wan) -> "Cluster":
        """Enforce a WAN model's per-cycle link budgets on this cluster.

        ``wan`` is a :class:`repro.workload.geo.WanNetwork` whose
        topology this cluster was built on.  Once attached, a
        conversation that would overrun a capped WAN link's per-cycle
        budget is refused (the initiator hunts for another partner —
        usually one in its own datacenter), and every conversation and
        update shipment charges the budgets it crosses.
        """
        if wan.topology is not self.topology:
            raise ValueError("the cluster must be built on the WAN's topology")
        self.wan = wan
        wan.reset_cycle()
        return self

    def add_observer(self, observer: NewsObserver) -> None:
        self._observers.append(observer)

    def enable_profiling(self, registry: Optional[MetricsRegistry] = None) -> Profiler:
        """Swap the null profiler for a real one; returns it.

        Phase timings accumulate as ``repro_phase_seconds_total`` /
        ``repro_phase_calls_total`` counters on ``registry`` (a fresh
        one when omitted).  The simulator engine times every callback
        once enabled, so expect measurable overhead on big runs.
        """
        self.profiler = Profiler(registry)
        self.simulator.profiler = self.profiler
        return self.profiler

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------

    def inject_update(
        self, site_id: int, key: Hashable, value, track: bool = False
    ) -> StoreUpdate:
        """Perform a client write at ``site_id`` and hand it to the protocols.

        With ``track=True`` the spread of this update is measured:
        ``cluster.metrics`` starts recording before the protocols are
        notified, so even the injection-time traffic (direct mail's
        ``n-1`` messages) is counted.
        """
        update = self.sites[site_id].store.update(key, value)
        if track:
            self.track(update, injection_site=site_id)
        self._after_injection(site_id, update)
        return update

    def inject_delete(
        self,
        site_id: int,
        key: Hashable,
        retention_count: int = 0,
        track: bool = False,
    ) -> StoreUpdate:
        """Delete ``key`` at ``site_id``, creating a death certificate.

        ``retention_count`` is the paper's ``r``: that many sites are
        chosen at random (by the deleting site) to retain a dormant
        copy of the certificate after ``tau1``.
        """
        retention: Tuple[int, ...] = ()
        if retention_count > 0:
            rng = self.sites[site_id].rng
            retention = tuple(rng.sample(self.site_ids, min(retention_count, self.n)))
        update = self.sites[site_id].store.delete(key, retention_sites=retention)
        if track:
            self.track(update, injection_site=site_id)
        self._after_injection(site_id, update)
        return update

    def _after_injection(self, site_id: int, update: StoreUpdate) -> None:
        if self._tracked is not None and self._matches_tracked(update):
            self.metrics.record_receipt(site_id, float(self.cycle))
        if self.bus.has_sinks:
            self.bus.emit(
                EventKind.UPDATE_INJECTED,
                node=site_id,
                key=str(update.key),
                deletion=update.entry.is_deletion,
            )
            # The injection is the root span of this update's trace:
            # hop 0, no delivering source.
            trace = trace_id_of(update)
            self._span_hops.setdefault(trace, {})[site_id] = 0
            emit_delivery_span(
                self.bus,
                node=site_id,
                update=update,
                result=ApplyResult.APPLIED,
                trace=trace,
                src=None,
                hop=0,
                first=True,
            )
        for protocol in self.protocols:
            protocol.on_local_update(site_id, update)

    # ------------------------------------------------------------------
    # Tracking a designated update
    # ------------------------------------------------------------------

    def track(self, update: StoreUpdate, injection_site: Optional[int] = None) -> EpidemicMetrics:
        """Start measuring the spread of ``update``.

        Call immediately after :meth:`inject_update`; pass the site it
        was injected at so the origin counts as infected at time 0.
        """
        self.metrics = EpidemicMetrics(n=self.n, injection_time=float(self.cycle))
        self._tracked = update
        if injection_site is not None:
            self.metrics.record_receipt(injection_site, float(self.cycle))
        return self.metrics

    def _matches_tracked(self, update: StoreUpdate) -> bool:
        tracked = self._tracked
        return (
            tracked is not None
            and update.key == tracked.key
            and update.entry.timestamp >= tracked.entry.timestamp
        )

    # ------------------------------------------------------------------
    # Protocol-facing hooks
    # ------------------------------------------------------------------

    def apply_at(
        self, site_id: int, update: StoreUpdate, via, source: Optional[int] = None
    ) -> ApplyResult:
        """Merge a received update into ``site_id``'s store and fan out
        news notifications.  ``via`` is the delivering protocol (or
        ``None``); other protocols get ``on_news`` so that, e.g., a
        mail delivery can become a hot rumor.  ``source`` is the site
        the update arrived from, when the protocol knows it — it becomes
        the parent of the delivery span."""
        result = self.sites[site_id].store.apply_entry(update.key, update.entry)
        if result.was_news:
            self.notify_news(site_id, update, result, via, source=source)
        elif self.bus.has_sinks and source is not None:
            # A targeted delivery the receiver already knew: redundant
            # traffic, attributed to its link in the infection tree.
            trace = trace_id_of(update)
            hops = self._span_hops.get(trace)
            src_hop = None if hops is None else hops.get(source)
            emit_delivery_span(
                self.bus,
                node=site_id,
                update=update,
                result=result,
                trace=trace,
                src=source,
                hop=None if src_hop is None else src_hop + 1,
                first=False,
            )
        return result

    def notify_news(
        self,
        site_id: int,
        update: StoreUpdate,
        result: ApplyResult,
        via,
        source: Optional[int] = None,
    ) -> None:
        if self.metrics is not None and self._matches_tracked(update):
            self.metrics.record_receipt(site_id, float(self.cycle))
        if self.bus.has_sinks:
            self.bus.emit(
                EventKind.NEWS_RECEIVED,
                node=site_id,
                key=str(update.key),
                result=result.value,
            )
            if result is ApplyResult.RESURRECTION_BLOCKED:
                self.bus.emit(
                    EventKind.DEATH_CERT_ACTIVATED, node=site_id, key=str(update.key)
                )
            trace = trace_id_of(update)
            hops = self._span_hops.setdefault(trace, {})
            src_hop = None if source is None else hops.get(source)
            hop = None if src_hop is None else src_hop + 1
            if hop is not None:
                hops.setdefault(site_id, hop)
            emit_delivery_span(
                self.bus,
                node=site_id,
                update=update,
                result=result,
                trace=trace,
                src=source,
                hop=hop,
                first=True,
            )
        for protocol in self.protocols:
            if protocol is not via:
                protocol.on_news(site_id, update, result)
        for observer in self._observers:
            observer(site_id, update, result)

    def count_comparison(self, src: int, dst: int) -> None:
        """Record one conversation (anti-entropy comparison or rumor
        exchange) between two sites, charged to every link en route."""
        if self.metrics is not None:
            self.metrics.record_comparison()
        if self._routable:
            self.traffic.compare.add_edges(self.topology.path_edges(src, dst))
        if self.wan is not None:
            self.wan.note_conversation(src, dst)

    def count_update_sends(self, src: int, dst: int, count: int = 1) -> None:
        """Record ``count`` update transmissions from ``src`` to ``dst``."""
        if count <= 0:
            return
        if self.metrics is not None:
            self.metrics.record_update_send(count)
        if self._routable:
            self.traffic.update.add_edges(self.topology.path_edges(src, dst), count)
        if self.wan is not None:
            self.wan.note_updates(src, dst, count)

    def count_useful_update_send(self, src: int, dst: int, count: int = 1) -> None:
        """Record ``count`` update transmissions the receiver needed
        (Table 4's "had to be sent" notion); counted in addition to
        :meth:`count_update_sends`, not instead of it."""
        if count <= 0:
            return
        if self._routable:
            self.traffic.useful_update.add_edges(
                self.topology.path_edges(src, dst), count
            )

    def count_rejection(self) -> None:
        if self.metrics is not None:
            self.metrics.record_rejection()

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    def run_cycle(self) -> None:
        """Advance one cycle: deliver scheduled events, then run protocols."""
        self.cycle += 1
        # Purely cycle-driven runs (no mail, no timers) keep an empty
        # heap; skip the event loop and just move the clock.
        if self.simulator.pending:
            self.simulator.run(until=float(self.cycle))
        else:
            self.simulator.advance_to(float(self.cycle))
        if self.wan is not None:
            self.wan.reset_cycle()
        for protocol in self.protocols:
            protocol.run_cycle(self.cycle)
        if self.metrics is not None:
            self.metrics.cycles_run = self.cycle
        if self.bus.has_sinks:
            with self.profiler.phase("emit"):
                self.bus.emit(
                    EventKind.CYCLE_COMPLETED,
                    cycle=self.cycle,
                    engine=self.simulator.stats(),
                )

    def run_cycles(self, count: int) -> None:
        for __ in range(count):
            self.run_cycle()

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_cycles: int = 10_000,
    ) -> int:
        """Run cycles until ``predicate()`` holds; returns cycles run.

        Raises RuntimeError when the bound is hit, so a stuck epidemic
        fails loudly instead of silently reporting bogus metrics.
        """
        start = self.cycle
        while not predicate():
            if self.cycle - start >= max_cycles:
                raise RuntimeError(f"predicate not reached within {max_cycles} cycles")
            self.run_cycle()
        return self.cycle - start

    def run_until_quiescent(self, max_cycles: int = 10_000, settle: int = 0) -> int:
        """Run until every protocol reports no pending work.

        ``settle`` extra cycles are run afterwards (some experiments
        want a margin to prove nothing re-ignites).
        """
        ran = self.run_until(
            lambda: all(not p.active for p in self.protocols), max_cycles
        )
        self.run_cycles(settle)
        return ran + settle

    # ------------------------------------------------------------------
    # Consistency checks
    # ------------------------------------------------------------------

    def converged(self, site_ids: Optional[Sequence[int]] = None) -> bool:
        """True when all (given) sites hold identical databases."""
        ids = list(site_ids) if site_ids is not None else self.site_ids
        if len(ids) < 2:
            return True
        reference = self.sites[ids[0]].store
        return all(self.sites[s].store.agrees_with(reference) for s in ids[1:])

    def infected_sites(self, update: StoreUpdate) -> List[int]:
        """Sites whose store reflects ``update`` (or something newer)."""
        infected = []
        for site_id in self.site_ids:
            entry = self.sites[site_id].store.entry(update.key)
            if entry is not None and entry.timestamp >= update.entry.timestamp:
                infected.append(site_id)
        return infected

    def values_of(self, key: Hashable) -> Dict[int, object]:
        """Client-visible value of ``key`` at every site."""
        return {s: self.sites[s].store.get(key) for s in self.site_ids}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cluster(n={self.n}, cycle={self.cycle}, protocols={len(self.protocols)})"
