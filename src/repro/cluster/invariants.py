"""Global invariant checking for simulations.

The algorithms' correctness rests on a handful of structural
invariants that should hold at *every* cycle boundary, regardless of
protocol mix, faults, or workload.  :class:`InvariantChecker` verifies
them after each cycle (attach it last) and raises
:class:`InvariantViolation` with a precise description on the first
breach — the simulation equivalent of an assertion-heavy debug build.

Checked invariants:

* **checksum** — every store's incremental checksum equals a fresh
  recomputation;
* **checksum tree** — every hash bucket's incremental checksum equals
  a fresh recomputation of that bucket's contents, every bucket's keys
  actually hash to it, and every internal tree node is the XOR of its
  children (so the root the exchanges compare is trustworthy);
* **index** — every store's timestamp index lists exactly its entries;
* **certificate sanity** — activation timestamps never precede
  ordinary timestamps; dormant tables never shadow an active entry
  for the same key with an older certificate;
* **monotonicity** — per (site, key), the entry timestamp never moves
  backwards between cycles (last-writer-wins can only go forward);
* **rumor grounding** — a hot rumor's entry is never newer than what
  the site's own store holds (rumors advertise state, they do not
  invent it).
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

from repro.core.timestamps import Timestamp
from repro.protocols.base import Protocol
from repro.protocols.rumor import RumorMongeringProtocol


class InvariantViolation(AssertionError):
    """A structural invariant failed; the message names site and key."""


class InvariantChecker(Protocol):
    """Verifies cluster-wide invariants at the end of every cycle."""

    name = "invariant-checker"

    def __init__(self, check_every: int = 1):
        super().__init__()
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self.check_every = check_every
        self.checks_run = 0
        self._last_stamps: Dict[Tuple[int, Hashable], Timestamp] = {}

    def run_cycle(self, cycle: int) -> None:
        if cycle % self.check_every != 0:
            return
        self.check_now()

    def check_now(self) -> None:
        """Run all checks immediately (also usable from tests)."""
        self.checks_run += 1
        for site_id in self.cluster.site_ids:
            self._check_store(site_id)
        self._check_rumors()

    # ------------------------------------------------------------------

    def _check_store(self, site_id: int) -> None:
        store = self.cluster.sites[site_id].store
        if store.checksum != store.recompute_checksum():
            raise InvariantViolation(
                f"site {site_id}: incremental checksum diverged from content"
            )
        self._check_checksum_tree(site_id, store)
        indexed = {u.key: u.entry.timestamp for u in store.updates_newest_first()}
        actual = {key: entry.timestamp for key, entry in store.entries()}
        if indexed != actual:
            missing = actual.keys() ^ indexed.keys()
            raise InvariantViolation(
                f"site {site_id}: timestamp index out of sync (keys {missing})"
            )
        for key, entry in store.entries():
            if entry.is_deletion and entry.activation_timestamp < entry.timestamp:
                raise InvariantViolation(
                    f"site {site_id} key {key!r}: activation precedes ordinary"
                )
            previous = self._last_stamps.get((site_id, key))
            if previous is not None and entry.timestamp < previous:
                raise InvariantViolation(
                    f"site {site_id} key {key!r}: timestamp moved backwards "
                    f"({previous} -> {entry.timestamp})"
                )
            self._last_stamps[(site_id, key)] = entry.timestamp
            dormant = store.dormant_certificate(key)
            if dormant is not None and not entry.is_deletion:
                if dormant.supersedes(entry):
                    raise InvariantViolation(
                        f"site {site_id} key {key!r}: live entry older than "
                        f"its dormant certificate (missed cancellation)"
                    )

    def _check_checksum_tree(self, site_id: int, store) -> None:
        """Per-bucket and tree-structure half of the checksum invariant.

        The hierarchical exchange trusts three things: each leaf equals
        its bucket's content checksum, each key sits in the bucket its
        canonical digest names, and each internal node is the XOR of
        its children.  Any breach would let a drill-down prune a
        subtree that actually differs, silently losing convergence.
        """
        tree = store.checksum_tree
        seen = 0
        for bucket in tree.nonzero_buckets():
            if store.bucket_checksum(bucket) != store.recompute_bucket_checksum(bucket):
                raise InvariantViolation(
                    f"site {site_id} bucket {bucket}: leaf checksum diverged "
                    f"from bucket content"
                )
            for key, _entry in store.bucket_entries(bucket):
                seen += 1
                if store.bucket_of(key) != bucket:
                    raise InvariantViolation(
                        f"site {site_id} key {key!r}: filed in bucket {bucket}, "
                        f"hashes to {store.bucket_of(key)}"
                    )
        # A bucket whose entries' digests XOR to zero is astronomically
        # unlikely but legal; count coverage instead of requiring every
        # occupied bucket to look nonzero.
        if seen > len(store):
            raise InvariantViolation(
                f"site {site_id}: buckets list {seen} entries, store holds "
                f"{len(store)}"
            )
        for node_id in range(1, tree.buckets):
            left, right = tree.children(node_id)
            if tree.node(node_id) != tree.node(left) ^ tree.node(right):
                raise InvariantViolation(
                    f"site {site_id} tree node {node_id}: not the XOR of its "
                    f"children"
                )

    def _check_rumors(self) -> None:
        for protocol in self.cluster.protocols:
            if not isinstance(protocol, RumorMongeringProtocol):
                continue
            for site_id in self.cluster.site_ids:
                store = self.cluster.sites[site_id].store
                for key, rumor in protocol.hot_rumors(site_id).items():
                    held = store.entry(key)
                    if held is None or rumor.entry.timestamp > held.timestamp:
                        raise InvariantViolation(
                            f"site {site_id} key {key!r}: hot rumor newer "
                            f"than the site's own store"
                        )
