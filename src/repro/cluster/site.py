"""One database site: a replica store plus its random stream and clock."""

from __future__ import annotations

import random

from repro.core.store import ReplicaStore
from repro.core.timestamps import SimClock


class Site:
    """A Clearinghouse-server-like site participating in a cluster.

    Protocol state (hot-rumor lists, counters) is owned by the protocol
    objects, keyed by site id; the site itself only carries the pieces
    every protocol shares: the store, the clock and the random stream
    that drives this site's independent choices.
    """

    __slots__ = ("id", "store", "clock", "rng", "up")

    def __init__(self, site_id: int, clock: SimClock, rng: random.Random):
        self.id = site_id
        self.clock = clock
        self.rng = rng
        self.store = ReplicaStore(site_id=site_id, clock=clock)
        # Failure injection: a down site neither initiates nor accepts
        # conversations and loses no state (stores are stable storage).
        self.up = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "up" if self.up else "down"
        return f"Site({self.id}, {status}, {len(self.store)} entries)"
