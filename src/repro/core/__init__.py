"""Core replicated-database primitives.

This package implements the data model of Section 1.1 of the paper:
each site stores a partial function ``key -> (value, timestamp)`` where a
``NIL`` value represents a deletion, plus the supporting machinery the
distribution protocols rely on (incremental checksums, recent-update
lists, a timestamp-ordered index for *peel back*, and death
certificates with activation timestamps).
"""

from repro.core.timestamps import Timestamp, Clock, SequenceClock, SimClock
from repro.core.items import NIL, VersionedValue, DeathCertificate
from repro.core.checksum import (
    ChecksumTree,
    DatabaseChecksum,
    encode_key,
    entry_digest,
    key_digest,
)
from repro.core.store import ReplicaStore, StoreUpdate

__all__ = [
    "Timestamp",
    "Clock",
    "SequenceClock",
    "SimClock",
    "NIL",
    "VersionedValue",
    "DeathCertificate",
    "ChecksumTree",
    "DatabaseChecksum",
    "encode_key",
    "entry_digest",
    "key_digest",
    "ReplicaStore",
    "StoreUpdate",
]
