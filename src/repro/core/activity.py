"""A doubly-linked activity order over database keys (Section 1.5).

The combined *peel back + rumor mongering* scheme replaces the
timestamp index with "a doubly-linked list ... to maintain a local
activity order: sites send updates according to their local list order
... useful updates are moved to the front of their respective lists,
while the useless updates slip gradually deeper."

This is that list: O(1) push-front, move-to-front, and removal, plus
ordered iteration from the hot end.  Every key appears at most once.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional


class _Node:
    __slots__ = ("key", "prev", "next")

    def __init__(self, key: Hashable):
        self.key = key
        self.prev: Optional["_Node"] = None
        self.next: Optional["_Node"] = None


class ActivityOrder:
    """Keys ordered by recency of useful activity (front = hottest)."""

    def __init__(self) -> None:
        self._head: Optional[_Node] = None
        self._tail: Optional[_Node] = None
        self._nodes: Dict[Hashable, _Node] = {}

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._nodes

    # ------------------------------------------------------------------

    def touch(self, key: Hashable) -> None:
        """Record useful activity on ``key``: move (or insert) it at the
        front of the list."""
        node = self._nodes.get(key)
        if node is None:
            node = _Node(key)
            self._nodes[key] = node
        else:
            if node is self._head:
                return
            self._unlink(node)
        self._push_front(node)

    def demote(self, key: Hashable, positions: int = 1) -> None:
        """Let a useless key slip ``positions`` places deeper."""
        node = self._nodes.get(key)
        if node is None:
            return
        anchor = node
        for __ in range(positions):
            if anchor.next is None:
                break
            anchor = anchor.next
        if anchor is node:
            return
        self._unlink(node)
        # Insert node after anchor.
        node.prev = anchor
        node.next = anchor.next
        if anchor.next is not None:
            anchor.next.prev = node
        else:
            self._tail = node
        anchor.next = node

    def discard(self, key: Hashable) -> None:
        node = self._nodes.pop(key, None)
        if node is not None:
            self._unlink(node)

    def front(self) -> Optional[Hashable]:
        return self._head.key if self._head is not None else None

    def keys_front_to_back(self) -> Iterator[Hashable]:
        node = self._head
        while node is not None:
            yield node.key
            node = node.next

    def batch(self, start: int, size: int) -> List[Hashable]:
        """The ``size`` keys beginning at position ``start``."""
        result: List[Hashable] = []
        node = self._head
        index = 0
        while node is not None and len(result) < size:
            if index >= start:
                result.append(node.key)
            node = node.next
            index += 1
        return result

    def position(self, key: Hashable) -> Optional[int]:
        """O(n) position lookup — for tests and diagnostics only."""
        for index, candidate in enumerate(self.keys_front_to_back()):
            if candidate == key:
                return index
        return None

    # ------------------------------------------------------------------

    def _push_front(self, node: _Node) -> None:
        node.prev = None
        node.next = self._head
        if self._head is not None:
            self._head.prev = node
        self._head = node
        if self._tail is None:
            self._tail = node

    def _unlink(self, node: _Node) -> None:
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self._head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self._tail = node.prev
        node.prev = node.next = None
