"""Incremental, order-independent database checksums (Section 1.3).

Sites performing anti-entropy first exchange checksums and compare their
full databases only when the checksums disagree.  For that to work the
checksum must be:

* **content-determined** — equal databases give equal checksums regardless
  of insertion order; and
* **incrementally maintainable** — applying an update must not require a
  pass over the whole database.

We XOR per-entry digests together.  XOR is commutative, associative and
self-inverse, so adding an entry and removing an entry are both a single
XOR, and the running checksum of a set of entries is independent of the
order in which they were added.  Per-entry digests are 128-bit BLAKE2b
hashes of a canonical ``(key, entry)`` encoding, making accidental
collisions (two different databases with equal checksums) vanishingly
unlikely for the database sizes at hand.
"""

from __future__ import annotations

import hashlib
from typing import Hashable, Iterable, Tuple

DIGEST_BITS = 128
_DIGEST_BYTES = DIGEST_BITS // 8


def entry_digest(key: Hashable, encoded_entry: bytes) -> int:
    """128-bit digest of one ``(key, entry)`` pair."""
    h = hashlib.blake2b(digest_size=_DIGEST_BYTES)
    h.update(repr(key).encode("utf-8"))
    h.update(b"\x00")
    h.update(encoded_entry)
    return int.from_bytes(h.digest(), "big")


class DatabaseChecksum:
    """A running XOR-of-digests checksum over a set of entries."""

    __slots__ = ("_value",)

    def __init__(self, value: int = 0):
        self._value = value

    @property
    def value(self) -> int:
        return self._value

    def add(self, key: Hashable, encoded_entry: bytes) -> None:
        """Fold a new entry into the checksum (O(1))."""
        self._value ^= entry_digest(key, encoded_entry)

    def remove(self, key: Hashable, encoded_entry: bytes) -> None:
        """Remove a previously added entry (XOR is self-inverse, O(1))."""
        self._value ^= entry_digest(key, encoded_entry)

    def replace(self, key: Hashable, old_encoded: bytes | None, new_encoded: bytes) -> None:
        """Swap one entry for another under the same key."""
        if old_encoded is not None:
            self.remove(key, old_encoded)
        self.add(key, new_encoded)

    def copy(self) -> "DatabaseChecksum":
        return DatabaseChecksum(self._value)

    @classmethod
    def of(cls, entries: Iterable[Tuple[Hashable, bytes]]) -> "DatabaseChecksum":
        """Compute a checksum from scratch (used to validate the incremental one)."""
        checksum = cls()
        for key, encoded in entries:
            checksum.add(key, encoded)
        return checksum

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DatabaseChecksum):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)

    def __repr__(self) -> str:
        return f"DatabaseChecksum({self._value:#034x})"
