"""Incremental, order-independent database checksums (Section 1.3).

Sites performing anti-entropy first exchange checksums and compare their
full databases only when the checksums disagree.  For that to work the
checksum must be:

* **content-determined** — equal databases give equal checksums regardless
  of insertion order; and
* **incrementally maintainable** — applying an update must not require a
  pass over the whole database.

We XOR per-entry digests together.  XOR is commutative, associative and
self-inverse, so adding an entry and removing an entry are both a single
XOR, and the running checksum of a set of entries is independent of the
order in which they were added.  Per-entry digests are 128-bit BLAKE2b
hashes of a canonical ``(key, entry)`` encoding, making accidental
collisions (two different databases with equal checksums) vanishingly
unlikely for the database sizes at hand.

Keys enter the digest through :func:`encode_key`, a canonical byte
encoding shared with the checkpoint/wire codec (re-exported by
:mod:`repro.core.serialize`).  Hashing ``repr(key)`` — the historical
behavior — was wrong: any key type without a content-determined repr
(the default ``<object at 0x...>`` repr embeds a memory address) gave
two replicas permanently disagreeing checksums for identical data,
forcing a full database comparison on every anti-entropy exchange.

For stores beyond a few thousand entries one checksum for the whole
database is too coarse: a single differing key forces a full comparison.
:class:`ChecksumTree` partitions the keyspace into ``2**bucket_bits``
hash buckets (by the low bits of the canonical key digest) and folds the
per-bucket checksums up a binary Merkle-style tree, so two replicas can
compare the root, recurse only into differing subtrees, and identify the
exact buckets that differ in ``O(dirty buckets · log buckets)`` checksum
comparisons — never touching agreeing entries.
"""

from __future__ import annotations

import functools
import hashlib
import json
from typing import Callable, Hashable, Iterable, Iterator, List, Optional, Tuple

DIGEST_BITS = 128
_DIGEST_BYTES = DIGEST_BITS // 8


def encode_key(key: Hashable) -> bytes:
    """Canonical byte encoding of a database key.

    Content-determined: two processes encoding the same logical key get
    the same bytes, regardless of memory layout, hash randomization, or
    interpreter version.  Supports the JSON-compatible key types that can
    cross the wire — ``str``, ``int``, ``float``, ``bool`` — plus tuples
    of those (tuples encode as JSON arrays; lists are unhashable, so the
    encoding stays injective over valid keys).

    Raises :class:`ValueError` for keys with no canonical encoding
    (e.g. arbitrary objects, whose default repr embeds ``id()``).
    """
    try:
        return json.dumps(
            key, separators=(",", ":"), sort_keys=True, ensure_ascii=False
        ).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise ValueError(
            f"key {key!r} has no canonical encoding "
            f"(use str/int/float/bool keys, or tuples of those): {error}"
        ) from None


@functools.lru_cache(maxsize=65536)
def _encoded_key_digest(encoded: bytes) -> int:
    return int.from_bytes(
        hashlib.blake2b(encoded, digest_size=_DIGEST_BYTES).digest(), "big"
    )


def key_digest(key: Hashable) -> int:
    """128-bit content-determined digest of a key alone.

    Used both as the fixed-width key prefix inside :func:`entry_digest`
    and — via its low bits — as the key's bucket assignment in
    :class:`ChecksumTree`.  The hash step is memoized on the canonical
    encoding (safe even for ``1`` vs ``True``, whose encodings differ):
    a simulation's sites all write the same few keys, so across a
    thousand stores each key's digest is computed once, not once per
    site per mutation.
    """
    return _encoded_key_digest(encode_key(key))


def entry_digest_with(kd: int, encoded_entry: bytes) -> int:
    """128-bit digest of one entry given a precomputed :func:`key_digest`.

    The store's hot path computes the key digest once per mutation (it
    also needs it for bucket assignment) and folds both entry digests of
    a replace from it.
    """
    h = hashlib.blake2b(digest_size=_DIGEST_BYTES)
    h.update(kd.to_bytes(_DIGEST_BYTES, "big"))
    h.update(b"\x00")
    h.update(encoded_entry)
    return int.from_bytes(h.digest(), "big")


def entry_digest(key: Hashable, encoded_entry: bytes) -> int:
    """128-bit digest of one ``(key, entry)`` pair.

    The key participates through its fixed-width :func:`key_digest`, so
    the key/content boundary is unambiguous by construction and the
    digest is content-determined for every supported key type.
    """
    return entry_digest_with(key_digest(key), encoded_entry)


class DatabaseChecksum:
    """A running XOR-of-digests checksum over a set of entries."""

    __slots__ = ("_value",)

    def __init__(self, value: int = 0):
        self._value = value

    @property
    def value(self) -> int:
        return self._value

    def add(self, key: Hashable, encoded_entry: bytes) -> None:
        """Fold a new entry into the checksum (O(1))."""
        self._value ^= entry_digest(key, encoded_entry)

    def remove(self, key: Hashable, encoded_entry: bytes) -> None:
        """Remove a previously added entry (XOR is self-inverse, O(1))."""
        self._value ^= entry_digest(key, encoded_entry)

    def replace(self, key: Hashable, old_encoded: bytes | None, new_encoded: bytes) -> None:
        """Swap one entry for another under the same key."""
        if old_encoded is not None:
            self.remove(key, old_encoded)
        self.add(key, new_encoded)

    def copy(self) -> "DatabaseChecksum":
        return DatabaseChecksum(self._value)

    @classmethod
    def of(cls, entries: Iterable[Tuple[Hashable, bytes]]) -> "DatabaseChecksum":
        """Compute a checksum from scratch (used to validate the incremental one)."""
        checksum = cls()
        for key, encoded in entries:
            checksum.add(key, encoded)
        return checksum

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DatabaseChecksum):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)

    def __repr__(self) -> str:
        return f"DatabaseChecksum({self._value:#034x})"


class ChecksumTree:
    """A Merkle-style tree of per-bucket XOR checksums.

    Laid out as a flat segment tree: node 1 is the root, node ``i`` has
    children ``2i`` and ``2i+1``, and the ``2**bucket_bits`` leaves sit
    at indices ``[buckets, 2*buckets)``.  Because bucket checksums are
    XORs of entry digests and XOR is associative, every internal node is
    simply the XOR of its subtree's leaves — so folding an entry delta
    into one bucket updates the whole path to the root with
    ``bucket_bits + 1`` XORs, and the root equals the classic
    whole-database checksum exactly.

    Two replicas with equal ``bucket_bits`` locate their differing
    buckets by comparing roots and recursing only into differing
    children (:meth:`diff_buckets`); the wire protocol does the same
    drill-down one frontier of nodes per round trip.

    An owner maintaining the tree lazily (the :class:`ReplicaStore`
    defers digest folding until a checksum is actually read) registers a
    *refresh hook*: every value-reading method calls it first, so held
    references stay correct without the owner paying digest costs on
    writes nobody observes.
    """

    __slots__ = ("bucket_bits", "buckets", "_nodes", "_refresh")

    def __init__(self, bucket_bits: int = 6):
        if bucket_bits < 0:
            raise ValueError("bucket_bits must be >= 0")
        self.bucket_bits = bucket_bits
        self.buckets = 1 << bucket_bits
        self._nodes: List[int] = [0] * (2 * self.buckets)
        self._refresh: Optional[Callable[[], None]] = None

    def set_refresh_hook(self, hook: Optional[Callable[[], None]]) -> None:
        """Install (or clear) the owner's lazy-maintenance flush.

        The hook must bring the tree up to date via :meth:`apply` and
        must not read the tree back through the hooked accessors.
        """
        self._refresh = hook

    def refresh(self) -> None:
        if self._refresh is not None:
            self._refresh()

    # -- addressing ----------------------------------------------------

    def bucket_of(self, kd: int) -> int:
        """The bucket a key lands in, from its :func:`key_digest`."""
        return kd & (self.buckets - 1)

    def is_leaf(self, node_id: int) -> bool:
        return node_id >= self.buckets

    def bucket_of_leaf(self, node_id: int) -> int:
        return node_id - self.buckets

    def children(self, node_id: int) -> Tuple[int, int]:
        return 2 * node_id, 2 * node_id + 1

    def valid_node(self, node_id: int) -> bool:
        return 1 <= node_id < 2 * self.buckets

    # -- values --------------------------------------------------------

    @property
    def root(self) -> int:
        """The whole-database checksum (XOR over every bucket)."""
        self.refresh()
        return self._nodes[1]

    def node(self, node_id: int) -> int:
        self.refresh()
        return self._nodes[node_id]

    def bucket_value(self, bucket: int) -> int:
        self.refresh()
        return self._nodes[self.buckets + bucket]

    def apply(self, bucket: int, delta: int) -> None:
        """XOR ``delta`` into one bucket and every ancestor (O(log B))."""
        if not delta:
            return
        i = self.buckets + bucket
        nodes = self._nodes
        while i:
            nodes[i] ^= delta
            i >>= 1

    # -- comparison ----------------------------------------------------

    def diff_buckets(self, other: "ChecksumTree") -> Tuple[List[int], int]:
        """Buckets whose checksums differ between the two trees.

        Returns ``(dirty_buckets, comparisons)`` where ``comparisons``
        counts node-pair checksum comparisons — the drill-down work two
        replicas would exchange.  Equal subtrees are pruned at their
        highest agreeing node, so the cost is
        ``O(dirty · bucket_bits)`` rather than ``O(buckets)``.
        """
        if self.buckets != other.buckets:
            raise ValueError(
                f"cannot diff trees with {self.buckets} vs {other.buckets} buckets"
            )
        self.refresh()
        other.refresh()
        dirty: List[int] = []
        comparisons = 0
        stack = [1]
        mine, theirs = self._nodes, other._nodes
        while stack:
            node_id = stack.pop()
            comparisons += 1
            if mine[node_id] == theirs[node_id]:
                continue
            if node_id >= self.buckets:
                dirty.append(node_id - self.buckets)
            else:
                stack.append(2 * node_id + 1)
                stack.append(2 * node_id)
        return sorted(dirty), comparisons

    def nonzero_buckets(self) -> Iterator[int]:
        """Buckets with a nonzero checksum (i.e. holding entries)."""
        self.refresh()
        base = self.buckets
        for bucket in range(self.buckets):
            if self._nodes[base + bucket]:
                yield bucket

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ChecksumTree):
            self.refresh()
            other.refresh()
            return self.buckets == other.buckets and self._nodes == other._nodes
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - trees are not dict keys
        return hash((self.buckets, self._nodes[1]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChecksumTree(bits={self.bucket_bits}, root={self._nodes[1]:#x})"
        )
