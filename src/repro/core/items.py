"""Database items: versioned values and death certificates (Sections 1.1, 2).

The client-visible database maps keys to ``(value, timestamp)`` pairs.  A
value of :data:`NIL` means "deleted as of that timestamp"; from a client's
perspective a NIL entry is indistinguishable from an absent entry, but the
propagation machinery must keep it around as a *death certificate* so the
deletion spreads instead of the deleted item being resurrected.

Death certificates additionally carry (Section 2.2):

* an **activation timestamp** — initially equal to the ordinary timestamp;
  reactivation sets it forward without touching the ordinary timestamp, so
  a reactivated certificate propagates again without cancelling legitimate
  updates newer than the original deletion; and
* a list of **retention sites** — the ``r`` sites that keep a *dormant*
  copy of the certificate after the first threshold ``tau1`` expires.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Hashable, Tuple

from repro.core.timestamps import Timestamp


class _Nil:
    """Singleton sentinel for the distinguished value NIL."""

    _instance = None

    def __new__(cls) -> "_Nil":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NIL"

    def __reduce__(self):  # keep singleton identity across pickling
        return (_Nil, ())


NIL = _Nil()


@dataclasses.dataclass(frozen=True, slots=True)
class VersionedValue:
    """An ordinary database entry: ``(v, t)`` with ``v != NIL``."""

    value: Any
    timestamp: Timestamp

    @property
    def is_deletion(self) -> bool:
        return False

    def supersedes(self, other: "VersionedValue | DeathCertificate | None") -> bool:
        """Last-writer-wins: a larger timestamp always supersedes."""
        return other is None or self.timestamp > other.timestamp

    def encode(self) -> bytes:
        """Canonical encoding used by the database checksum."""
        return b"V|" + repr(self.value).encode("utf-8") + b"|" + self.timestamp.encode()


@dataclasses.dataclass(frozen=True, slots=True)
class DeathCertificate:
    """A deletion entry: ``(NIL, t)`` plus activation metadata.

    ``timestamp`` is the *ordinary* timestamp: it decides which entries
    the certificate cancels.  ``activation_timestamp`` decides dormancy
    and propagation (Section 2.2).  ``retention_sites`` are the sites
    that hold a dormant copy between ``tau1`` and ``tau1 + tau2``.
    """

    timestamp: Timestamp
    activation_timestamp: Timestamp
    retention_sites: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.activation_timestamp < self.timestamp:
            raise ValueError(
                "activation timestamp must not precede the ordinary timestamp"
            )

    @property
    def value(self) -> _Nil:
        return NIL

    @property
    def is_deletion(self) -> bool:
        return True

    def supersedes(self, other: "VersionedValue | DeathCertificate | None") -> bool:
        """A certificate cancels any entry with a smaller ordinary timestamp."""
        return other is None or self.timestamp > other.timestamp

    def reactivated(self, now: float) -> "DeathCertificate":
        """Return a copy activated at local time ``now``.

        The ordinary timestamp is left unchanged so that updates newer
        than the original deletion are not cancelled; only the
        activation timestamp moves forward (Section 2.2).
        """
        return DeathCertificate(
            timestamp=self.timestamp,
            activation_timestamp=self.activation_timestamp.advanced_to(now),
            retention_sites=self.retention_sites,
        )

    def is_expired(self, now: float, tau1: float) -> bool:
        """True when ordinary (non-retention) sites should drop it."""
        return self.activation_timestamp.age(now) > tau1

    def is_dormant(self, now: float, tau1: float) -> bool:
        """Alias for :meth:`is_expired` from a retention site's view."""
        return self.is_expired(now, tau1)

    def is_discardable(self, now: float, tau1: float, tau2: float) -> bool:
        """True when even retention sites should drop it."""
        return self.activation_timestamp.age(now) > tau1 + tau2

    def encode(self) -> bytes:
        """Canonical encoding used by the database checksum.

        Only the ordinary timestamp participates: two replicas whose
        visible contents agree must produce equal checksums even if one
        has reactivated a certificate the other has not yet seen.
        """
        return b"D|" + self.timestamp.encode()


Entry = VersionedValue | DeathCertificate


def make_entry(value: Any, timestamp: Timestamp) -> Entry:
    """Build the right entry type for ``value``: NIL becomes a certificate."""
    if value is NIL or value is None:
        return DeathCertificate(timestamp=timestamp, activation_timestamp=timestamp)
    return VersionedValue(value=value, timestamp=timestamp)


def newer(a: Entry | None, b: Entry | None) -> Entry | None:
    """Return whichever entry wins last-writer-wins, or ``None`` if both absent."""
    if a is None:
        return b
    if b is None:
        return a
    return a if a.timestamp >= b.timestamp else b


#: Key types with a canonical (content-determined) encoding; see
#: :func:`repro.core.checksum.encode_key`.  ``bool`` rides along as an
#: ``int`` subclass but encodes distinctly.
_CANONICAL_KEY_TYPES = (str, int, float)


def _has_canonical_encoding(key: Hashable) -> bool:
    if isinstance(key, _CANONICAL_KEY_TYPES):
        return True
    if isinstance(key, tuple):
        return all(_has_canonical_encoding(item) for item in key)
    return False


def validate_key(key: Hashable) -> Hashable:
    """Reject keys the replication machinery cannot handle, early.

    Beyond unhashable and ``None`` keys, this rejects keys without a
    canonical content-determined encoding (arbitrary objects, whose
    default repr embeds ``id()``): such keys would digest differently at
    every site, so the Section 1.3 checksums could never agree and every
    anti-entropy exchange would degenerate to a full compare — forever.
    Valid keys are ``str``/``int``/``float``/``bool`` and tuples of
    those, exactly what the wire codec can ship.
    """
    if key is None:
        raise ValueError("database keys must not be None")
    hash(key)  # raises TypeError for unhashable keys
    if not _has_canonical_encoding(key):
        raise ValueError(
            f"key {key!r} has no canonical encoding; database keys must be "
            "str/int/float/bool or tuples of those so checksums agree "
            "across replicas"
        )
    return key
