"""JSON-compatible serialization of store contents.

A deployment needs to checkpoint a replica to disk (the paper's mail
queues and databases live on stable storage) and to ship entries
between processes.  This module encodes entries — including death
certificates with their activation timestamps and retention lists —
into plain dicts/lists that survive ``json.dumps`` unmodified, and
decodes them back losslessly.

Values are passed through as-is: they must themselves be JSON
compatible (the name-service records provide ``to_payload`` shapes via
their dataclass fields if needed; plain strings/numbers/dicts always
work).  Timestamps round-trip exactly.

Because these payloads also cross the network (``repro.net.wire``
frames carry them between gossip nodes), decoding is strict: anything
malformed — unknown ``kind``, missing or ill-typed fields — raises
:class:`SerializeError` rather than leaking a bare ``KeyError`` from
peer-supplied bytes.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Tuple

from repro.core.checksum import encode_key as encode_key  # canonical key codec
from repro.core.items import DeathCertificate, Entry, VersionedValue
from repro.core.store import ReplicaStore, StoreUpdate
from repro.core.timestamps import Timestamp

FORMAT_VERSION = 1


class SerializeError(ValueError):
    """A payload could not be decoded.

    Raised for unknown entry kinds, missing fields, ill-typed fields and
    unsupported dump versions.  Subclasses :class:`ValueError` so callers
    that guarded against the old behavior keep working.
    """


def _require(payload: Any, field: str, context: str) -> Any:
    if not isinstance(payload, dict):
        raise SerializeError(f"{context}: expected an object, got {type(payload).__name__}")
    try:
        return payload[field]
    except KeyError:
        raise SerializeError(f"{context}: missing field {field!r}") from None


def encode_timestamp(stamp: Timestamp) -> Dict[str, Any]:
    return {"time": stamp.time, "site": stamp.site, "seq": stamp.sequence}


def decode_timestamp(payload: Dict[str, Any]) -> Timestamp:
    time = _require(payload, "time", "timestamp")
    site = _require(payload, "site", "timestamp")
    seq = _require(payload, "seq", "timestamp")
    if not isinstance(time, (int, float)) or isinstance(time, bool):
        raise SerializeError(f"timestamp: time must be a number, got {time!r}")
    if not isinstance(site, int) or isinstance(site, bool):
        raise SerializeError(f"timestamp: site must be an integer, got {site!r}")
    if not isinstance(seq, int) or isinstance(seq, bool):
        raise SerializeError(f"timestamp: seq must be an integer, got {seq!r}")
    return Timestamp(time=time, site=site, sequence=seq)


def encode_entry(entry: Entry) -> Dict[str, Any]:
    if entry.is_deletion:
        return {
            "kind": "certificate",
            "timestamp": encode_timestamp(entry.timestamp),
            "activation": encode_timestamp(entry.activation_timestamp),
            "retention": list(entry.retention_sites),
        }
    return {
        "kind": "value",
        "timestamp": encode_timestamp(entry.timestamp),
        "value": entry.value,
    }


def decode_entry(payload: Dict[str, Any]) -> Entry:
    kind = _require(payload, "kind", "entry")
    if kind == "certificate":
        retention = _require(payload, "retention", "certificate")
        if not isinstance(retention, (list, tuple)) or not all(
            isinstance(site, int) and not isinstance(site, bool) for site in retention
        ):
            raise SerializeError(
                f"certificate: retention must be a list of site ids, got {retention!r}"
            )
        timestamp = decode_timestamp(_require(payload, "timestamp", "certificate"))
        activation = decode_timestamp(_require(payload, "activation", "certificate"))
        if activation < timestamp:
            raise SerializeError(
                "certificate: activation timestamp precedes the ordinary timestamp"
            )
        return DeathCertificate(
            timestamp=timestamp,
            activation_timestamp=activation,
            retention_sites=tuple(retention),
        )
    if kind == "value":
        return VersionedValue(
            value=_require(payload, "value", "value entry"),
            timestamp=decode_timestamp(_require(payload, "timestamp", "value entry")),
        )
    raise SerializeError(f"unknown entry kind: {kind!r}")


def encode_update(update: StoreUpdate) -> Dict[str, Any]:
    return {"key": update.key, "entry": encode_entry(update.entry)}


def decode_update(payload: Dict[str, Any]) -> StoreUpdate:
    key = _require(payload, "key", "update")
    if key is None:
        raise SerializeError("update: key must not be null")
    return StoreUpdate(key=key, entry=decode_entry(_require(payload, "entry", "update")))


def encode_updates(updates: Iterable[StoreUpdate]) -> List[Dict[str, Any]]:
    return [encode_update(update) for update in updates]


def decode_updates(payload: Any) -> List[StoreUpdate]:
    if not isinstance(payload, list):
        raise SerializeError(
            f"update list: expected an array, got {type(payload).__name__}"
        )
    return [decode_update(item) for item in payload]


def dump_store(store: ReplicaStore) -> Dict[str, Any]:
    """Serialize a store's replicated content (active + dormant).

    Protocol state (hot rumors, activity orders) is deliberately not
    included: after a restore those states rebuild themselves, exactly
    as they would after a crash in the paper's model.
    """
    return {
        "version": FORMAT_VERSION,
        "site": store.site_id,
        "entries": [
            {"key": key, "entry": encode_entry(entry)}
            for key, entry in sorted(
                store.entries(), key=lambda kv: encode_key(kv[0])
            )
        ],
        "dormant": [
            {"key": key, "entry": encode_entry(cert)}
            for key, cert in sorted(
                _dormant_items(store), key=lambda kv: encode_key(kv[0])
            )
        ],
    }


def load_store(payload: Dict[str, Any], store: ReplicaStore) -> int:
    """Merge a serialized dump into ``store``; returns entries applied.

    Loading *merges* (last-writer-wins) rather than replaces, so a
    checkpoint can safely be loaded into a store that has since seen
    newer updates.
    """
    version = _require(payload, "version", "store dump")
    if version != FORMAT_VERSION:
        raise SerializeError(f"unsupported dump version: {version!r}")
    applied = 0
    for item in _require(payload, "entries", "store dump"):
        update = decode_update(item)
        if store.apply_entry(update.key, update.entry).was_news:
            applied += 1
    for item in _require(payload, "dormant", "store dump"):
        certificate = decode_update(item)
        # A dormant certificate re-enters through the normal apply path
        # and will be re-expired by the next sweep.
        if store.apply_entry(certificate.key, certificate.entry).was_news:
            applied += 1
    return applied


def _dormant_items(store: ReplicaStore) -> Iterable[Tuple[Hashable, DeathCertificate]]:
    # The dormant table has no public iterator; reach through the
    # private dict here rather than widening the store API for one
    # serialization concern.
    return store._dormant.items()
