"""JSON-compatible serialization of store contents.

A deployment needs to checkpoint a replica to disk (the paper's mail
queues and databases live on stable storage) and to ship entries
between processes.  This module encodes entries — including death
certificates with their activation timestamps and retention lists —
into plain dicts/lists that survive ``json.dumps`` unmodified, and
decodes them back losslessly.

Values are passed through as-is: they must themselves be JSON
compatible (the name-service records provide ``to_payload`` shapes via
their dataclass fields if needed; plain strings/numbers/dicts always
work).  Timestamps round-trip exactly.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Tuple

from repro.core.items import DeathCertificate, Entry, VersionedValue
from repro.core.store import ReplicaStore, StoreUpdate
from repro.core.timestamps import Timestamp

FORMAT_VERSION = 1


def encode_timestamp(stamp: Timestamp) -> Dict[str, Any]:
    return {"time": stamp.time, "site": stamp.site, "seq": stamp.sequence}


def decode_timestamp(payload: Dict[str, Any]) -> Timestamp:
    return Timestamp(
        time=payload["time"], site=payload["site"], sequence=payload["seq"]
    )


def encode_entry(entry: Entry) -> Dict[str, Any]:
    if entry.is_deletion:
        return {
            "kind": "certificate",
            "timestamp": encode_timestamp(entry.timestamp),
            "activation": encode_timestamp(entry.activation_timestamp),
            "retention": list(entry.retention_sites),
        }
    return {
        "kind": "value",
        "timestamp": encode_timestamp(entry.timestamp),
        "value": entry.value,
    }


def decode_entry(payload: Dict[str, Any]) -> Entry:
    kind = payload.get("kind")
    if kind == "certificate":
        return DeathCertificate(
            timestamp=decode_timestamp(payload["timestamp"]),
            activation_timestamp=decode_timestamp(payload["activation"]),
            retention_sites=tuple(payload["retention"]),
        )
    if kind == "value":
        return VersionedValue(
            value=payload["value"],
            timestamp=decode_timestamp(payload["timestamp"]),
        )
    raise ValueError(f"unknown entry kind: {kind!r}")


def encode_update(update: StoreUpdate) -> Dict[str, Any]:
    return {"key": update.key, "entry": encode_entry(update.entry)}


def decode_update(payload: Dict[str, Any]) -> StoreUpdate:
    return StoreUpdate(key=payload["key"], entry=decode_entry(payload["entry"]))


def dump_store(store: ReplicaStore) -> Dict[str, Any]:
    """Serialize a store's replicated content (active + dormant).

    Protocol state (hot rumors, activity orders) is deliberately not
    included: after a restore those states rebuild themselves, exactly
    as they would after a crash in the paper's model.
    """
    return {
        "version": FORMAT_VERSION,
        "site": store.site_id,
        "entries": [
            {"key": key, "entry": encode_entry(entry)}
            for key, entry in sorted(store.entries(), key=lambda kv: repr(kv[0]))
        ],
        "dormant": [
            {"key": key, "entry": encode_entry(cert)}
            for key, cert in sorted(
                _dormant_items(store), key=lambda kv: repr(kv[0])
            )
        ],
    }


def load_store(payload: Dict[str, Any], store: ReplicaStore) -> int:
    """Merge a serialized dump into ``store``; returns entries applied.

    Loading *merges* (last-writer-wins) rather than replaces, so a
    checkpoint can safely be loaded into a store that has since seen
    newer updates.
    """
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported dump version: {version!r}")
    applied = 0
    for item in payload["entries"]:
        entry = decode_entry(item["entry"])
        if store.apply_entry(item["key"], entry).was_news:
            applied += 1
    for item in payload["dormant"]:
        certificate = decode_entry(item["entry"])
        # A dormant certificate re-enters through the normal apply path
        # and will be re-expired by the next sweep.
        if store.apply_entry(item["key"], certificate).was_news:
            applied += 1
    return applied


def _dormant_items(store: ReplicaStore) -> Iterable[Tuple[Hashable, DeathCertificate]]:
    # The dormant table has no public iterator; reach through the
    # private dict here rather than widening the store API for one
    # serialization concern.
    return store._dormant.items()
