"""The per-site replicated database (Sections 1.1, 1.3, 2).

A :class:`ReplicaStore` is the state one site keeps for one replicated
database (in Clearinghouse terms, one *domain*):

* the active entry table ``key -> (value, timestamp)`` with last-writer-
  wins conflict resolution, where deletions are death certificates;
* an incrementally maintained order-independent checksum of the active
  table (Section 1.3's checksum optimization);
* a timestamp-ordered inverted index supporting *recent update lists*
  and *peel back* exchanges; and
* a dormant death-certificate table for the retention-site scheme of
  Section 2.1, including activation-timestamp reactivation (2.2).

The store is deliberately independent of any protocol or simulator: the
epidemic protocols call :meth:`apply_entry` with entries received from
peers and interpret the returned :class:`ApplyResult`.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Dict, Hashable, Iterator, List, Tuple

from repro.core.checksum import (
    ChecksumTree,
    DatabaseChecksum,
    entry_digest_with,
    key_digest,
)
from repro.core.items import (
    NIL,
    DeathCertificate,
    Entry,
    VersionedValue,
    validate_key,
)
from repro.core.timestamps import Clock, SequenceClock, Timestamp
from repro.core.tsindex import TimestampIndex


class ApplyResult(enum.Enum):
    """Outcome of merging a received entry into the local store.

    ``APPLIED``, ``REACTIVATED`` and ``RESURRECTION_BLOCKED`` all mean the
    received data changed local state (it was "news"); ``EQUAL`` means the
    replicas already agreed on this key; ``STALE`` means the local entry is
    newer — for pull and push-pull exchanges the receiver should offer its
    own entry back to the sender.
    """

    APPLIED = "applied"
    REACTIVATED = "reactivated"
    RESURRECTION_BLOCKED = "resurrection-blocked"
    EQUAL = "equal"
    STALE = "stale"

    @property
    def was_news(self) -> bool:
        return self in (
            ApplyResult.APPLIED,
            ApplyResult.REACTIVATED,
            ApplyResult.RESURRECTION_BLOCKED,
        )


@dataclasses.dataclass(frozen=True, slots=True)
class StoreUpdate:
    """A ``(key, entry)`` pair as shipped between sites."""

    key: Hashable
    entry: Entry

    @property
    def timestamp(self) -> Timestamp:
        return self.entry.timestamp


@dataclasses.dataclass(slots=True)
class SweepStats:
    """Result of one death-certificate expiry sweep."""

    expired: int = 0
    made_dormant: int = 0
    discarded_dormant: int = 0


#: Default keyspace partitioning: 64 hash buckets.  Small enough that a
#: thousand-site simulation pays negligible per-store overhead, large
#: enough that the demo workloads' drill-downs isolate single keys.
#: Production-scale stores (the million-key bench) pass a bigger value.
DEFAULT_BUCKET_BITS = 6


class ReplicaStore:
    """One site's copy of the replicated database.

    The keyspace is partitioned into ``2**bucket_bits`` hash buckets
    (by the canonical key digest), each with an incrementally maintained
    checksum folded up a :class:`~repro.core.checksum.ChecksumTree`.
    The tree root *is* the classic Section 1.3 whole-database checksum;
    the buckets below it are what lets a hierarchical exchange ship only
    the differing slices of a large store.
    """

    def __init__(
        self,
        site_id: int = 0,
        clock: Clock | None = None,
        bucket_bits: int = DEFAULT_BUCKET_BITS,
    ):
        self.site_id = site_id
        self.clock = clock if clock is not None else SequenceClock(site=site_id)
        self._entries: Dict[Hashable, Entry] = {}
        self._dormant: Dict[Hashable, DeathCertificate] = {}
        self._tree = ChecksumTree(bucket_bits)
        # Checksum maintenance is lazy: mutations record the pre-image
        # here (key -> entry before the first unflushed change, or None
        # when absent) and the digest folding happens on the first
        # checksum read.  Most simulation mutations are never followed
        # by a checksum read before the next overwrite, and a key
        # rewritten while dirty costs one delta, not one per write.
        self._dirty: Dict[Hashable, Entry | None] = {}
        self._tree.set_refresh_hook(self._flush_checksums)
        # bucket -> keys currently in it; buckets vanish when emptied so
        # a small store never pays for the full bucket range.
        self._bucket_keys: Dict[int, set] = {}
        self._index = TimestampIndex()
        # When a certificate-expiry policy is active (set by the
        # DeathCertificateManager), incoming certificates already older
        # than tau1 are not re-adopted unless they actually cancel
        # something: otherwise an expired certificate would bounce
        # forever between sites that have swept it and sites that
        # haven't.
        self.certificate_ttl: float | None = None

    # ------------------------------------------------------------------
    # Client operations (Section 1.1)
    # ------------------------------------------------------------------

    def update(self, key: Hashable, value: Any) -> StoreUpdate:
        """Client write: ``s.ValueOf[k] <- (v, Now[])``.

        Returns the :class:`StoreUpdate` so the caller (typically a
        distribution protocol) can start spreading it.
        """
        validate_key(key)
        if value is NIL or value is None:
            raise ValueError("use delete() to remove a key")
        entry = VersionedValue(value=value, timestamp=self.clock.next_timestamp())
        self._put(key, entry)
        return StoreUpdate(key=key, entry=entry)

    def delete(self, key: Hashable, retention_sites: Tuple[int, ...] = ()) -> StoreUpdate:
        """Client delete: install a death certificate for ``key``.

        ``retention_sites`` are the ``r`` randomly chosen sites that will
        hold a dormant copy of the certificate (Section 2.1); an empty
        tuple gives the plain fixed-threshold behavior.
        """
        validate_key(key)
        stamp = self.clock.next_timestamp()
        certificate = DeathCertificate(
            timestamp=stamp,
            activation_timestamp=stamp,
            retention_sites=tuple(retention_sites),
        )
        self._put(key, certificate)
        return StoreUpdate(key=key, entry=certificate)

    def get(self, key: Hashable) -> Any:
        """Client read: the value, or ``None`` when absent or deleted."""
        entry = self._entries.get(key)
        if entry is None or entry.is_deletion:
            return None
        return entry.value

    def __contains__(self, key: Hashable) -> bool:
        """Client-visible membership (deleted keys are absent)."""
        entry = self._entries.get(key)
        return entry is not None and not entry.is_deletion

    # ------------------------------------------------------------------
    # Replication-facing accessors
    # ------------------------------------------------------------------

    def entry(self, key: Hashable) -> Entry | None:
        """The raw active entry for ``key`` (certificates included)."""
        return self._entries.get(key)

    def dormant_certificate(self, key: Hashable) -> DeathCertificate | None:
        return self._dormant.get(key)

    def entries(self) -> Iterator[Tuple[Hashable, Entry]]:
        """All active entries in unspecified order."""
        return iter(self._entries.items())

    def updates(self) -> Iterator[StoreUpdate]:
        for key, entry in self._entries.items():
            yield StoreUpdate(key=key, entry=entry)

    def keys(self) -> Iterator[Hashable]:
        return iter(self._entries.keys())

    def visible_items(self) -> Iterator[Tuple[Hashable, Any]]:
        """Client-visible ``(key, value)`` pairs (no deletions)."""
        for key, entry in self._entries.items():
            if not entry.is_deletion:
                yield key, entry.value

    def __len__(self) -> int:
        """Number of active entries, including death certificates."""
        return len(self._entries)

    def visible_count(self) -> int:
        return sum(1 for __ in self.visible_items())

    def dormant_count(self) -> int:
        return len(self._dormant)

    # ------------------------------------------------------------------
    # Checksums and ordered views (Section 1.3)
    # ------------------------------------------------------------------

    @property
    def checksum(self) -> int:
        """The incrementally maintained checksum of the active table.

        Equal (by construction) to the checksum-tree root: the XOR of
        every bucket checksum is the XOR of every entry digest.
        """
        return self._tree.root

    @property
    def checksum_tree(self) -> ChecksumTree:
        """The live checksum tree.  Read-only for callers: exchange
        strategies and the wire drill-down compare its nodes, only the
        store's own mutations may fold deltas in."""
        return self._tree

    @property
    def bucket_bits(self) -> int:
        return self._tree.bucket_bits

    @property
    def bucket_count(self) -> int:
        return self._tree.buckets

    def bucket_of(self, key: Hashable) -> int:
        """The hash bucket ``key`` belongs to (canonical key digest)."""
        return self._tree.bucket_of(key_digest(key))

    def bucket_checksum(self, bucket: int) -> int:
        """The incrementally maintained checksum of one bucket."""
        return self._tree.bucket_value(bucket)

    def bucket_len(self, bucket: int) -> int:
        """Number of active entries in one bucket."""
        return len(self._bucket_keys.get(bucket, ()))

    def bucket_entries(self, bucket: int) -> Iterator[Tuple[Hashable, Entry]]:
        """Active ``(key, entry)`` pairs of one bucket, unspecified order."""
        entries = self._entries
        for key in self._bucket_keys.get(bucket, ()):
            yield key, entries[key]

    def bucket_updates(self, bucket: int) -> Iterator[StoreUpdate]:
        for key, entry in self.bucket_entries(bucket):
            yield StoreUpdate(key=key, entry=entry)

    def bucket_updates_newest_first(self, bucket: int) -> Iterator[StoreUpdate]:
        """One bucket's entries in reverse timestamp order (per-bucket
        *peel back*); O(bucket size · log bucket size)."""
        keys = self._bucket_keys.get(bucket)
        if not keys:
            return
        for key, __ in self._index.newest_first_in(keys):
            yield StoreUpdate(key=key, entry=self._entries[key])

    def recompute_checksum(self) -> int:
        """Checksum from scratch — used by tests to validate the invariant."""
        return DatabaseChecksum.of(
            (key, entry.encode()) for key, entry in self._entries.items()
        ).value

    def recompute_bucket_checksum(self, bucket: int) -> int:
        """One bucket's checksum from scratch (invariant validation)."""
        return DatabaseChecksum.of(
            (key, entry.encode()) for key, entry in self.bucket_entries(bucket)
        ).value

    def recent_updates(self, tau: float, bucket: int | None = None) -> List[StoreUpdate]:
        """Entries whose age (by the local clock) is less than ``tau``.

        This is the *recent update list* exchanged before the checksum
        comparison (Section 1.3).  Newest first.  With ``bucket`` the
        list is restricted to that hash bucket, at a cost proportional
        to the bucket size rather than the recent-update count.
        """
        now = self.clock.now()
        recent: List[StoreUpdate] = []
        if bucket is not None:
            keys = self._bucket_keys.get(bucket)
            pairs = self._index.newest_first_in(keys) if keys else ()
        else:
            pairs = self._index.newest_first()
        for key, stamp in pairs:
            if stamp.age(now) >= tau:
                break
            recent.append(StoreUpdate(key=key, entry=self._entries[key]))
        return recent

    def updates_newest_first(self) -> Iterator[StoreUpdate]:
        """All active entries in reverse timestamp order (*peel back*)."""
        for key, __ in self._index.newest_first():
            yield StoreUpdate(key=key, entry=self._entries[key])

    # ------------------------------------------------------------------
    # Merging entries received from peers
    # ------------------------------------------------------------------

    def apply_update(self, update: StoreUpdate) -> ApplyResult:
        return self.apply_entry(update.key, update.entry)

    def apply_entry(self, key: Hashable, entry: Entry) -> ApplyResult:
        """Merge an entry received from another site.

        Implements last-writer-wins on the ordinary timestamp, plus the
        two death-certificate subtleties of Section 2:

        * a *dormant* local certificate newer than an incoming ordinary
          value blocks the resurrection and is reactivated (its
          activation timestamp is set to the local current time and it
          re-enters the active table so it propagates again); and
        * two copies of the *same* certificate merge by taking the later
          activation timestamp, so reactivations themselves spread.
        """
        validate_key(key)
        if (
            entry.is_deletion
            and self.certificate_ttl is not None
            and entry.is_expired(self.clock.now(), self.certificate_ttl)
        ):
            current = self._entries.get(key)
            if current is None or not entry.supersedes(current):
                # An expired certificate that cancels nothing here is
                # old news, not fresh state to re-adopt.
                return ApplyResult.STALE
        dormant = self._dormant.get(key)
        if dormant is not None:
            if entry.is_deletion and entry.timestamp >= dormant.timestamp:
                # The incoming certificate supersedes our dormant one.
                del self._dormant[key]
            elif not entry.is_deletion and dormant.supersedes(entry):
                # Obsolete data met a dormant certificate: awaken it
                # (Section 2.1's "immune reaction").
                del self._dormant[key]
                awakened = dormant.reactivated(self.clock.now())
                self._put(key, awakened)
                return ApplyResult.RESURRECTION_BLOCKED
            elif not entry.is_deletion:
                # Entry is a legitimate reinstatement newer than the
                # dormant certificate; the certificate is obsolete.
                del self._dormant[key]

        current = self._entries.get(key)
        if current is None or entry.timestamp > current.timestamp:
            self._put(key, entry)
            return ApplyResult.APPLIED
        if entry.timestamp < current.timestamp:
            return ApplyResult.STALE
        # Identical ordinary timestamps: globally unique timestamps mean
        # this is the same logical update.  For certificates, adopt the
        # later activation timestamp so reactivations propagate.
        if (
            entry.is_deletion
            and current.is_deletion
            and entry.activation_timestamp > current.activation_timestamp
        ):
            self._put(key, entry)
            return ApplyResult.REACTIVATED
        return ApplyResult.EQUAL

    def purge(self, key: Hashable) -> bool:
        """Remove an entry outright, with NO death certificate.

        This is *not* a client operation: Section 2 explains that naive
        removal is wrong — the propagation mechanisms resurrect the item
        from other replicas.  It exists so the experiments can
        demonstrate exactly that failure, and as the primitive the
        certificate expiry sweep uses.
        """
        if key not in self._entries:
            return False
        self._drop(key)
        return True

    # ------------------------------------------------------------------
    # Death-certificate lifecycle (Sections 2.1, 2.2)
    # ------------------------------------------------------------------

    def sweep_certificates(self, tau1: float, tau2: float = float("inf")) -> SweepStats:
        """Expire old death certificates.

        Active certificates whose activation timestamp is older than
        ``tau1`` are dropped — unless this site appears on the
        certificate's retention list, in which case a dormant copy is
        kept.  Dormant certificates older than ``tau1 + tau2`` are
        discarded entirely.
        """
        now = self.clock.now()
        stats = SweepStats()
        expired_keys = [
            key
            for key, entry in self._entries.items()
            if entry.is_deletion and entry.is_expired(now, tau1)
        ]
        for key in expired_keys:
            certificate = self._entries[key]
            self._drop(key)
            stats.expired += 1
            if self.site_id in certificate.retention_sites:
                self._dormant[key] = certificate
                stats.made_dormant += 1
        discard_keys = [
            key
            for key, certificate in self._dormant.items()
            if certificate.is_discardable(now, tau1, tau2)
        ]
        for key in discard_keys:
            del self._dormant[key]
            stats.discarded_dormant += 1
        return stats

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _put(self, key: Hashable, entry: Entry) -> None:
        old = self._entries.get(key)
        if key not in self._dirty:
            self._dirty[key] = old
        if old is None:
            bucket = self._tree.bucket_of(key_digest(key))
            self._bucket_keys.setdefault(bucket, set()).add(key)
        self._entries[key] = entry
        self._index.set(key, entry.timestamp)

    def _drop(self, key: Hashable) -> None:
        entry = self._entries.pop(key)
        if key not in self._dirty:
            self._dirty[key] = entry
        bucket = self._tree.bucket_of(key_digest(key))
        keys = self._bucket_keys.get(bucket)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._bucket_keys[bucket]
        self._index.discard(key)

    def _flush_checksums(self) -> None:
        """Fold every pending mutation into the checksum tree.

        Runs as the tree's refresh hook, i.e. on the first checksum
        read after a mutation.  Each dirty key contributes one delta —
        old digest XOR current digest — so intermediate states of a
        multiply-rewritten key cancel without ever being hashed.
        """
        if not self._dirty:
            return
        dirty, self._dirty = self._dirty, {}
        entries = self._entries
        tree = self._tree
        for key, old in dirty.items():
            current = entries.get(key)
            if current is old:
                continue
            kd = key_digest(key)
            delta = 0
            if old is not None:
                delta ^= entry_digest_with(kd, old.encode())
            if current is not None:
                delta ^= entry_digest_with(kd, current.encode())
            tree.apply(tree.bucket_of(kd), delta)

    def snapshot(self) -> Dict[Hashable, Entry]:
        """A shallow copy of the active table (entries are immutable)."""
        return dict(self._entries)

    def agrees_with(self, other: "ReplicaStore") -> bool:
        """True when the two active tables are identical.

        Certificate activation timestamps are ignored, matching the
        checksum definition: replicas that differ only in how long they
        will retain a certificate still *agree* on database content.
        """
        if len(self._entries) != len(other._entries):
            return False
        for key, entry in self._entries.items():
            theirs = other._entries.get(key)
            if theirs is None or theirs.timestamp != entry.timestamp:
                return False
            if entry.is_deletion != theirs.is_deletion:
                return False
            if not entry.is_deletion and entry.value != theirs.value:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicaStore(site={self.site_id}, entries={len(self._entries)}, "
            f"dormant={len(self._dormant)})"
        )
