"""Globally unique, totally ordered timestamps (Section 1.1).

The paper requires an operation ``Now[]`` returning a *globally unique*
timestamp drawn from a totally ordered set ``T``; a pair with a larger
timestamp always supersedes one with a smaller timestamp.  The paper notes
that the timestamps should approximate real time for the algorithms to be
*practically* (not just formally) correct.

We realize ``T`` as the lexicographically ordered triple

    (time, site, sequence)

where ``time`` is the issuing clock's notion of current time (simulated
cycles or wall-clock seconds), ``site`` is the issuing site's identifier,
and ``sequence`` disambiguates multiple timestamps issued by one site at
one instant.  Uniqueness holds as long as site identifiers are unique,
which the cluster layer guarantees.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterator


@dataclasses.dataclass(frozen=True, order=True, slots=True)
class Timestamp:
    """A point in the totally ordered timestamp set ``T``.

    Ordering is lexicographic on ``(time, site, sequence)``.  Instances
    are immutable and hashable so they can key dictionaries and appear
    in checksummed canonical encodings.
    """

    time: float
    site: int = 0
    sequence: int = 0

    def advanced_to(self, time: float) -> "Timestamp":
        """Return a copy of this timestamp moved to ``time``.

        Used by death-certificate *activation*: the activation timestamp
        is set forward while the ordinary timestamp stays put.
        """
        return Timestamp(time=time, site=self.site, sequence=self.sequence)

    def age(self, now: float) -> float:
        """Age of this timestamp relative to a local clock reading."""
        return now - self.time

    def encode(self) -> bytes:
        """Canonical byte encoding used for checksumming."""
        return repr((self.time, self.site, self.sequence)).encode("utf-8")

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"T({self.time:g}@{self.site}#{self.sequence})"


Timestamp.MIN = Timestamp(time=float("-inf"), site=-1, sequence=-1)


class Clock:
    """Interface for timestamp issuers.

    A clock belongs to a single site.  ``now()`` returns the current
    local time; ``next_timestamp()`` returns a fresh globally unique
    :class:`Timestamp` that is strictly greater than any timestamp this
    clock has issued before.
    """

    def now(self) -> float:
        raise NotImplementedError

    def next_timestamp(self) -> Timestamp:
        raise NotImplementedError


class SequenceClock(Clock):
    """A deterministic clock whose time is a per-site counter.

    Useful in unit tests where simulated real time is irrelevant: each
    call to :meth:`next_timestamp` advances time by one.
    """

    def __init__(self, site: int = 0, start: float = 0.0):
        self._site = site
        self._time = start
        self._seq = itertools.count()

    def now(self) -> float:
        return self._time

    def next_timestamp(self) -> Timestamp:
        self._time += 1.0
        return Timestamp(time=self._time, site=self._site, sequence=next(self._seq))


class SimClock(Clock):
    """A clock bound to a simulation's global time source.

    ``time_source`` is any zero-argument callable returning the current
    simulated time (typically ``simulator.now``).  Multiple timestamps
    issued at the same simulated instant are disambiguated by the
    per-site sequence counter, preserving global uniqueness and the
    total order.

    A fixed ``skew`` can be configured to model imperfect clock
    synchronization (Section 2 assumes skew ``epsilon << tau1``; the
    death-certificate tests exercise that assumption).
    """

    def __init__(self, site: int, time_source, skew: float = 0.0):
        self._site = site
        self._time_source = time_source
        self._skew = skew
        self._seq = itertools.count()
        self._last_time = float("-inf")

    @property
    def site(self) -> int:
        return self._site

    @property
    def skew(self) -> float:
        return self._skew

    def now(self) -> float:
        return self._time_source() + self._skew

    def next_timestamp(self) -> Timestamp:
        time = self.now()
        # Guard against a time source that moves backwards; timestamps
        # issued by one clock must be monotonically increasing.
        if time < self._last_time:
            time = self._last_time
        self._last_time = time
        return Timestamp(time=time, site=self._site, sequence=next(self._seq))


def merge_max(*stamps: Timestamp) -> Timestamp:
    """Return the largest of the given timestamps (last-writer-wins)."""
    if not stamps:
        raise ValueError("merge_max requires at least one timestamp")
    return max(stamps)


def is_strictly_increasing(stamps: Iterator[Timestamp]) -> bool:
    """True when the iterator yields a strictly increasing sequence."""
    previous = None
    for stamp in stamps:
        if previous is not None and not previous < stamp:
            return False
        previous = stamp
    return True
