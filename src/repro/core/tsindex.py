"""An inverted index of database entries by timestamp (Section 1.3).

The *peel back* variant of anti-entropy exchanges updates in reverse
timestamp order until checksum agreement, which requires each site to
"maintain an inverted index of its database by timestamp".  The paper
notes this index is the scheme's main cost; here it is a compact sorted
list with lazy deletion so that maintenance stays O(log n) amortized per
update.

The index maps each key to its *current* entry timestamp.  Stale pairs
(left behind when a key is overwritten or dropped) are skipped during
iteration and physically removed when they exceed half the list, keeping
iteration amortized O(1) per yielded item.
"""

from __future__ import annotations

import bisect
from typing import Hashable, Iterable, Iterator, Tuple

from repro.core.timestamps import Timestamp


class TimestampIndex:
    """Sorted ``(timestamp, key)`` pairs with lazy deletion."""

    __slots__ = ("_pairs", "_current", "_stale")

    def __init__(self) -> None:
        self._pairs: list[Tuple[Timestamp, Hashable]] = []
        self._current: dict[Hashable, Timestamp] = {}
        self._stale = 0

    def __len__(self) -> int:
        """Number of live keys in the index."""
        return len(self._current)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._current

    def timestamp_of(self, key: Hashable) -> Timestamp | None:
        return self._current.get(key)

    def set(self, key: Hashable, timestamp: Timestamp) -> None:
        """Insert or move ``key`` to ``timestamp``."""
        old = self._current.get(key)
        if old is not None:
            if old == timestamp:
                return
            self._stale += 1
        self._current[key] = timestamp
        bisect.insort(self._pairs, (timestamp, _OrderedKey(key)))
        self._maybe_compact()

    def discard(self, key: Hashable) -> None:
        """Remove ``key`` from the index if present."""
        if key in self._current:
            del self._current[key]
            self._stale += 1
            self._maybe_compact()

    def newest_first(self) -> Iterator[Tuple[Hashable, Timestamp]]:
        """Yield live ``(key, timestamp)`` pairs, newest first.

        Safe against concurrent :meth:`set`/:meth:`discard` of keys that
        have not yet been yielded only in the sense that already-yielded
        state is unaffected; callers that mutate during iteration should
        materialize the prefix they need first.
        """
        seen: set[Hashable] = set()
        for timestamp, okey in reversed(self._pairs):
            key = okey.key
            if key in seen:
                continue
            current = self._current.get(key)
            if current is None or current != timestamp:
                continue  # stale pair
            seen.add(key)
            yield key, timestamp

    def newer_than(self, cutoff: Timestamp) -> Iterator[Tuple[Hashable, Timestamp]]:
        """Yield live pairs with ``timestamp > cutoff``, newest first."""
        for key, timestamp in self.newest_first():
            if timestamp <= cutoff:
                return
            yield key, timestamp

    def newest_first_in(
        self, keys: Iterable[Hashable]
    ) -> Iterator[Tuple[Hashable, Timestamp]]:
        """Live pairs restricted to ``keys``, newest first.

        The per-bucket variant of :meth:`newest_first`: a hierarchical
        exchange peels back or lists recent updates *within one hash
        bucket*, and sorting the bucket's keys by their current
        timestamps directly is O(k log k) in the bucket size — it never
        touches the global pair list, so cost is independent of the
        database size.  Keys absent from the index are skipped.
        """
        pairs = [
            (timestamp, _OrderedKey(key))
            for key, timestamp in (
                (key, self._current.get(key)) for key in keys
            )
            if timestamp is not None
        ]
        pairs.sort(reverse=True)
        for timestamp, okey in pairs:
            yield okey.key, timestamp

    def oldest(self) -> Tuple[Hashable, Timestamp] | None:
        """Return the live pair with the smallest timestamp, if any."""
        for timestamp, okey in self._pairs:
            key = okey.key
            current = self._current.get(key)
            if current is not None and current == timestamp:
                return key, timestamp
        return None

    def _maybe_compact(self) -> None:
        if self._stale <= len(self._current) or self._stale < 64:
            return
        live = [
            (ts, okey)
            for ts, okey in self._pairs
            if self._current.get(okey.key) == ts
        ]
        # Deduplicate equal (ts, key) pairs that can accumulate when a key
        # oscillates between two timestamps.
        deduped: list[Tuple[Timestamp, _OrderedKey]] = []
        seen: set[Hashable] = set()
        for ts, okey in reversed(live):
            if okey.key in seen:
                continue
            seen.add(okey.key)
            deduped.append((ts, okey))
        deduped.reverse()
        self._pairs = deduped
        self._stale = 0


class _OrderedKey:
    """Wrap keys so heterogeneous key types never break pair comparison.

    ``bisect.insort`` compares tuples element-wise; when two timestamps
    are equal the comparison falls through to the key.  Keys of mixed
    types (e.g. ``int`` and ``str``) are not mutually orderable, so we
    compare their ``repr`` instead — a stable, total order is all the
    index needs.

    The rank string is computed lazily: timestamps are globally unique,
    so the tie-break almost never runs, and caching a repr per key would
    roughly double the index's memory on a million-key store.
    """

    __slots__ = ("key",)

    def __init__(self, key: Hashable):
        self.key = key

    def __lt__(self, other: "_OrderedKey") -> bool:
        return repr(self.key) < repr(other.key)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _OrderedKey) and self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_OrderedKey({self.key!r})"
