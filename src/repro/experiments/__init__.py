"""Experiment drivers: one per table / figure of the paper.

Shared by the benchmark suite (``benchmarks/``) and the examples; each
driver returns plain dataclass rows so callers can print, assert on, or
plot them.

* :mod:`repro.experiments.tables` — Tables 1-3 (rumor-mongering
  variants on 1000 uniform sites);
* :mod:`repro.experiments.spatial` — Tables 4-5 (anti-entropy with
  spatial distributions on the synthetic CIN) and the Section 3 line
  scaling study;
* :mod:`repro.experiments.pathologies` — Figures 1-2 (topologies where
  spatial rumor mongering fails);
* :mod:`repro.experiments.baselines` — direct mail reliability, the
  push/pull anti-entropy endgame, and Pittel's bound;
* :mod:`repro.experiments.deathcert_scenarios` — Section 2 scenarios
  (resurrection, dormant certificates, reinstatement);
* :mod:`repro.experiments.backup_scenarios` — Section 1.5 redistribution
  cost comparison.
"""

from repro.experiments.report import format_table

__all__ = ["format_table"]
