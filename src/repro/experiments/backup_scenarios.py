"""Section 1.5: the cost of recovering from a failed initial
distribution.

The worst case for redistribution-by-mail is an initial distribution
that reached about half the sites: on the next anti-entropy round each
of O(n) sites discovers the update missing somewhere and mails it to
all n sites — O(n^2) messages.  Re-introducing the update as a hot
rumor instead costs a small multiple of n update sends, and a rumor
already known nearly everywhere dies out almost immediately.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional

from repro.cluster.cluster import Cluster
from repro.experiments.runner import TrialRunner, resolve_runner
from repro.protocols.backup import AntiEntropyBackup, RecoveryStrategy
from repro.protocols.base import ExchangeMode
from repro.protocols.rumor import RumorConfig
from repro.sim.rng import derive_seed


@dataclasses.dataclass(slots=True)
class RecoveryCost:
    strategy: str
    n: int
    initial_coverage: float
    update_sends: int          # all update transmissions, any mechanism
    mail_messages: int
    cycles_to_converge: int
    converged: bool


def recovery_cost_experiment(
    n: int = 100,
    initial_coverage: float = 0.5,
    strategy: RecoveryStrategy = RecoveryStrategy.HOT_RUMOR,
    anti_entropy_period: int = 2,
    seed: int = 40,
    max_cycles: int = 400,
) -> RecoveryCost:
    """Plant an update at a fraction of sites, then let rumor mongering
    with anti-entropy backup finish the job under the given recovery
    strategy; measure what it cost."""
    cluster = Cluster(n=n, seed=seed)
    protocol = AntiEntropyBackup(
        rumor_config=RumorConfig(
            mode=ExchangeMode.PUSH, feedback=True, counter=True, k=2
        ),
        anti_entropy_period=anti_entropy_period,
        recovery=strategy,
    )
    cluster.add_protocol(protocol)
    update = cluster.inject_update(0, "the-key", "the-value", track=True)
    metrics = cluster.metrics
    # Plant silently at the initial coverage (a failed initial
    # distribution), without making the planted copies hot.
    rng = random.Random(derive_seed(seed, "plant"))
    others = [s for s in cluster.site_ids if s != 0]
    planted = rng.sample(others, max(0, round(n * initial_coverage) - 1))
    for site_id in planted:
        cluster.sites[site_id].store.apply_entry(update.key, update.entry)
        metrics.record_receipt(site_id, 0.0)
    # Kill the seed's own hot rumor so recovery, not the original
    # epidemic, does the work.
    protocol.rumor._hot[0].clear()
    converged = True
    try:
        cluster.run_until(lambda: metrics.infected == n, max_cycles=max_cycles)
    except RuntimeError:
        converged = False
    mail_messages = (
        protocol._mail.mail.stats.posted if protocol._mail is not None else 0
    )
    return RecoveryCost(
        strategy=strategy.value,
        n=n,
        initial_coverage=initial_coverage,
        update_sends=metrics.update_sends,
        mail_messages=mail_messages,
        cycles_to_converge=cluster.cycle,
        converged=converged,
    )


def compare_recovery_strategies(
    n: int = 100,
    initial_coverage: float = 0.5,
    seed: int = 41,
    runner: Optional[TrialRunner] = None,
) -> List[RecoveryCost]:
    """All three strategies on the same planted half-coverage state.

    The three runs share no state (each builds its own cluster from the
    same seed), so they fan out over the runner as three trials.
    """
    return resolve_runner(runner).map(
        recovery_cost_experiment,
        [
            dict(
                n=n, initial_coverage=initial_coverage, strategy=strategy, seed=seed
            )
            for strategy in (
                RecoveryStrategy.CONSERVATIVE,
                RecoveryStrategy.HOT_RUMOR,
                RecoveryStrategy.REDISTRIBUTE_MAIL,
            )
        ],
    )
