"""Baseline behaviors: direct mail (Section 1.2), the anti-entropy
endgame (Section 1.3), and Pittel's push bound.

These drivers quantify the claims the paper's design rests on:

* direct mail costs ``n`` messages per update and misses sites in
  proportion to mail loss and to gaps in the sender's site list;
* with few susceptibles left, pull anti-entropy converges quadratically
  while push shrinks the susceptible fraction only by a factor ``e``
  per cycle — the simulated trajectories are compared against the
  recurrences of :mod:`repro.analysis.recurrences`;
* a push simple epidemic from one site takes about
  ``log2(n) + ln(n)`` cycles.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.experiments.runner import TrialRunner, resolve_runner
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.base import ExchangeMode
from repro.protocols.direct_mail import DirectMailProtocol
from repro.sim.metrics import mean
from repro.sim.rng import derive_seed


@dataclasses.dataclass(slots=True)
class DirectMailResult:
    n: int
    messages_per_update: float
    delivery_ratio: float
    residue: float       # fraction of sites missing the update afterwards
    runs: int


def run_direct_mail_trial(
    n: int, loss_probability: float, known_fraction: float, seed: int
) -> Tuple[float, float, float]:
    """One mailing of one update; returns (residue, messages, delivery)."""
    cluster = Cluster(n=n, seed=seed)
    protocol = DirectMailProtocol(
        loss_probability=loss_probability, known_fraction=known_fraction
    )
    cluster.add_protocol(protocol)
    cluster.inject_update(0, "the-key", "the-value", track=True)
    metrics = cluster.metrics
    cluster.run_until(lambda: not protocol.active, max_cycles=50)
    return metrics.residue, metrics.update_sends, protocol.mail.stats.delivery_ratio


def direct_mail_experiment(
    n: int = 200,
    loss_probability: float = 0.05,
    known_fraction: float = 1.0,
    runs: int = 10,
    seed: int = 20,
    runner: Optional[TrialRunner] = None,
) -> DirectMailResult:
    """Mail one update to all sites; measure cost and incompleteness."""
    trials = resolve_runner(runner).map(
        run_direct_mail_trial,
        [
            dict(
                n=n,
                loss_probability=loss_probability,
                known_fraction=known_fraction,
                seed=derive_seed(seed, run),
            )
            for run in range(runs)
        ],
    )
    return DirectMailResult(
        n=n,
        messages_per_update=mean([t[1] for t in trials]),
        delivery_ratio=mean([t[2] for t in trials]),
        residue=mean([t[0] for t in trials]),
        runs=runs,
    )


@dataclasses.dataclass(slots=True)
class TailTrajectory:
    """Simulated susceptible fractions per anti-entropy cycle."""

    mode: str
    fractions: List[float]    # starting fraction first

    def cycles_to_zero(self) -> int:
        for i, p in enumerate(self.fractions):
            if p == 0.0:
                return i
        return len(self.fractions)


def anti_entropy_tail(
    n: int = 1000,
    initial_susceptible: float = 0.1,
    mode: ExchangeMode = ExchangeMode.PULL,
    max_cycles: int = 60,
    seed: int = 21,
) -> TailTrajectory:
    """Start with most sites already infected; watch the endgame.

    The update is planted directly at a ``1 - initial_susceptible``
    fraction of sites (as if direct mail had delivered there), then
    anti-entropy runs alone.
    """
    cluster = Cluster(n=n, seed=seed)
    protocol = AntiEntropyProtocol(config=AntiEntropyConfig(mode=mode))
    cluster.add_protocol(protocol)
    update = cluster.inject_update(0, "the-key", "the-value", track=True)
    metrics = cluster.metrics
    rng = random.Random(derive_seed(seed, "plant"))
    target_infected = round(n * (1.0 - initial_susceptible))
    others = [s for s in cluster.site_ids if s != 0]
    for site_id in rng.sample(others, max(0, target_infected - 1)):
        cluster.apply_at(site_id, update, via=None)
    fractions = [metrics.residue]
    cycles = 0
    while metrics.residue > 0 and cycles < max_cycles:
        cluster.run_cycle()
        cycles += 1
        fractions.append(metrics.residue)
    return TailTrajectory(mode=mode.value, fractions=fractions)


@dataclasses.dataclass(slots=True)
class PushConvergenceResult:
    n: int
    mean_cycles: float
    pittel_prediction: float
    runs: int


def run_push_epidemic_trial(n: int, seed: int, max_cycles: int = 200) -> float:
    """One push epidemic from site 0 to saturation; returns t_last."""
    cluster = Cluster(n=n, seed=seed)
    protocol = AntiEntropyProtocol(
        config=AntiEntropyConfig(mode=ExchangeMode.PUSH)
    )
    cluster.add_protocol(protocol)
    cluster.inject_update(0, "the-key", "the-value", track=True)
    metrics = cluster.metrics
    cluster.run_until(lambda: metrics.infected == n, max_cycles=max_cycles)
    return metrics.t_last


def push_epidemic_cycles(
    n: int = 512,
    runs: int = 10,
    seed: int = 22,
    max_cycles: int = 200,
    runner: Optional[TrialRunner] = None,
) -> PushConvergenceResult:
    """Cycles for push anti-entropy to infect everyone from one site."""
    from repro.analysis.epidemic_theory import pittel_push_cycles

    counts = resolve_runner(runner).map(
        run_push_epidemic_trial,
        [
            dict(n=n, seed=derive_seed(seed, run), max_cycles=max_cycles)
            for run in range(runs)
        ],
    )
    return PushConvergenceResult(
        n=n,
        mean_cycles=mean(counts),
        pittel_prediction=pittel_push_cycles(n),
        runs=runs,
    )


@dataclasses.dataclass(slots=True)
class RemailBlowupResult:
    """The Clearinghouse's abandoned remail-on-anti-entropy step."""

    n: int
    messages_with_remail: int
    messages_without_remail: int


def remail_blowup_experiment(
    n: int = 60, initial_coverage: float = 0.5, seed: int = 23, cycles: int = 3
) -> RemailBlowupResult:
    """Show why remailing had to be disabled: with half the sites
    disagreeing, each anti-entropy round triggers O(n) remails of n
    messages each."""

    def run(remail: bool) -> int:
        cluster = Cluster(n=n, seed=seed)
        mail = DirectMailProtocol(remail_on_news=remail)
        anti = AntiEntropyProtocol(
            config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL)
        )
        cluster.add_protocol(mail)
        cluster.add_protocol(anti)
        # Plant the update silently at roughly half the sites (as if an
        # earlier partial distribution had happened), bypassing the
        # protocols so the initial mailing itself is not counted.
        update = cluster.sites[0].store.update("the-key", "the-value")
        rng = random.Random(derive_seed(seed, "plant"))
        others = [s for s in cluster.site_ids if s != 0]
        planted = rng.sample(others, round(n * initial_coverage) - 1)
        for site_id in planted:
            cluster.sites[site_id].store.apply_entry(update.key, update.entry)
        before = mail.mail.stats.posted
        cluster.run_cycles(cycles)
        return mail.mail.stats.posted - before

    return RemailBlowupResult(
        n=n,
        messages_with_remail=run(remail=True),
        messages_without_remail=run(remail=False),
    )
