"""The benchmark harness: a fixed scenario suite timed and recorded.

``python -m repro bench`` runs each scenario, times it, and writes a
``BENCH_<YYYY-MM-DD>.json`` report so the repository's performance
trajectory is part of its history (the schema is documented in
``docs/performance.md``).  The suite covers the simulator's main cost
centers:

* **table1** — a Table 1 regeneration: the flat (k, run) trial batch
  through the :class:`~repro.experiments.runner.TrialRunner`;
* **anti-entropy** — one push-pull anti-entropy epidemic on a large
  uniform network, the ``ResolveDifference`` hot path;
* **rumor** — one rumor-mongering epidemic at Table-1 scale;
* **live-demo** — the asyncio runtime pushing one update through real
  TCP sockets on localhost;
* **million-key-hierarchical** — a million-entry store pair diverging
  in 1% of its keys, resolved once by the hierarchical-checksum
  drill-down and once by the naive full comparison; the recorded
  ``examined_ratio`` is the entries-examined saving the checksum tree
  buys at scale (``--quick`` shrinks to 20k keys);
* **workload-steady** — the production-traffic harness
  (:mod:`repro.workload.steady`): sustained mixed write/read/delete
  load on a uniform network with staleness sampling and curve windows;
* **workload-wan-3dc** — the same harness over the 3-datacenter WAN
  model (per-link latency, bandwidth caps, long-haul attribution).

Three targeted measurements ride along: the parallel-over-serial
speedup of the trial runner on this machine, a per-conversation
micro-benchmark of the optimized exchange session against a reference
implementation of the original sort-the-key-union exchange, and the
overhead of the delivery-span stream (:mod:`repro.obs.spans`) measured
as identical seeded epidemics with the event bus silent vs consumed.

``--quick`` shrinks every scenario for CI smoke runs;
``--compare BASELINE.json`` fails (exit 1) when any scenario regresses
beyond the allowed factor, which is how CI gates performance.
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import os
import pathlib
import platform
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.experiments.runner import TrialRunner, default_jobs

#: Report schema identifier; bump when the JSON layout changes.
SCHEMA = "repro-bench/1"


@dataclasses.dataclass(slots=True)
class ScenarioTiming:
    """One timed scenario of the suite."""

    name: str
    wall_clock_s: float
    trials: int
    detail: Dict[str, Any]

    @property
    def trials_per_s(self) -> float:
        if self.wall_clock_s <= 0:
            return 0.0
        return self.trials / self.wall_clock_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "wall_clock_s": round(self.wall_clock_s, 4),
            "trials": self.trials,
            "trials_per_s": round(self.trials_per_s, 3),
            "detail": self.detail,
        }


def _timed(fn: Callable[[], Tuple[int, Dict[str, Any]]]) -> Tuple[float, int, Dict[str, Any]]:
    start = time.perf_counter()
    trials, detail = fn()
    return time.perf_counter() - start, trials, detail


# ----------------------------------------------------------------------
# The scenario suite
# ----------------------------------------------------------------------


def _bench_table1(quick: bool, runner: TrialRunner) -> ScenarioTiming:
    """Table 1 regeneration through the batched trial core.

    The table runs ``passes`` times: the first pass pays the one-off
    per-seed RNG stream derivation, later passes replay the cached raw
    words (:mod:`repro.sim.batch`), which is the steady-state cost of
    any sweep that revisits its seeds (confidence intervals, parameter
    studies, the golden tests).  Both pass timings land in the detail
    so the split stays visible.
    """
    from repro.sim.arrays import get_backend
    from repro.experiments.tables import table1

    n = 200 if quick else 1000
    runs = 2 if quick else 5
    passes = 2 if quick else 3

    def work() -> Tuple[int, Dict[str, Any]]:
        pass_seconds = []
        rows = []
        for _ in range(passes):
            start = time.perf_counter()
            rows = table1(n=n, runs=runs, runner=runner)
            pass_seconds.append(round(time.perf_counter() - start, 4))
        return len(rows) * runs * passes, {
            "n": n,
            "runs": runs,
            "passes": passes,
            "engine": "batched",
            "backend": get_backend().name,
            "first_pass_s": pass_seconds[0],
            "best_pass_s": min(pass_seconds),
            "runner": runner.describe(),
        }

    elapsed, trials, detail = _timed(work)
    return ScenarioTiming("table1", elapsed, trials, detail)


def _bench_anti_entropy(quick: bool) -> ScenarioTiming:
    """Push-pull anti-entropy epidemics through the batched core.

    ``runs`` epidemics on the same seed: run 0 is the cold cost (RNG
    stream derivation included), the rest replay cached words — the
    cost any repeated study pays.  Both land in the detail.
    """
    from repro.sim.arrays import get_backend
    from repro.experiments.tables import run_anti_entropy_trial
    from repro.protocols.base import ExchangeMode

    n = 256 if quick else 1024
    runs = 3 if quick else 5

    def work() -> Tuple[int, Dict[str, Any]]:
        run_seconds = []
        metrics = None
        for _ in range(runs):
            start = time.perf_counter()
            metrics = run_anti_entropy_trial(
                n=n, mode=ExchangeMode.PUSH_PULL, seed=97, max_cycles=200
            )
            run_seconds.append(round(time.perf_counter() - start, 4))
        return runs, {
            "n": n,
            "runs": runs,
            "engine": "batched",
            "backend": get_backend().name,
            "first_run_s": run_seconds[0],
            "best_run_s": min(run_seconds),
            "cycles": metrics.cycles_run,
            "t_last": metrics.t_last,
        }

    elapsed, trials, detail = _timed(work)
    return ScenarioTiming("anti-entropy-pushpull", elapsed, trials, detail)


def _bench_rumor(quick: bool) -> ScenarioTiming:
    """Rumor-mongering epidemics through the batched core (cold + warm
    split recorded as in the anti-entropy scenario)."""
    from repro.sim.arrays import get_backend
    from repro.experiments.tables import run_rumor_trial
    from repro.protocols.base import ExchangeMode
    from repro.protocols.rumor import RumorConfig

    n = 200 if quick else 1000
    runs = 3 if quick else 5
    config = RumorConfig(mode=ExchangeMode.PUSH, feedback=True, counter=True, k=2)

    def work() -> Tuple[int, Dict[str, Any]]:
        run_seconds = []
        metrics = None
        for _ in range(runs):
            start = time.perf_counter()
            metrics = run_rumor_trial(n=n, config=config, seed=98)
            run_seconds.append(round(time.perf_counter() - start, 4))
        return runs, {
            "n": n,
            "k": 2,
            "runs": runs,
            "engine": "batched",
            "backend": get_backend().name,
            "first_run_s": run_seconds[0],
            "best_run_s": min(run_seconds),
            "residue": metrics.residue,
            "t_last": metrics.t_last,
        }

    elapsed, trials, detail = _timed(work)
    return ScenarioTiming("rumor-push-k2", elapsed, trials, detail)


def _bench_live_demo(quick: bool) -> ScenarioTiming:
    import asyncio

    from repro.net.node import NodeConfig
    from repro.net.runner import live_demo
    from repro.protocols.base import ExchangeMode

    nodes = 4 if quick else 8
    config = NodeConfig(
        anti_entropy_interval=0.05,
        rumor_interval=0.02,
        mode=ExchangeMode.PUSH_PULL,
    )

    def work() -> Tuple[int, Dict[str, Any]]:
        try:
            report = asyncio.run(
                live_demo(nodes=nodes, config=config, timeout=30.0)
            )
        except Exception as error:  # noqa: BLE001 - sockets may be unavailable
            # A sandbox without localhost sockets should not sink the
            # whole suite; the report records the failure instead.
            return 1, {"nodes": nodes, "error": str(error)}
        return 1, {
            "nodes": nodes,
            "converged": report.converged,
            "t_last": report.t_last,
        }

    elapsed, trials, detail = _timed(work)
    return ScenarioTiming("live-demo", elapsed, trials, detail)


def _bench_workload_steady(quick: bool) -> ScenarioTiming:
    """The steady-state workload harness: sustained mixed traffic on a
    uniform network, staleness sampling and curve windows included."""
    from repro.workload.generators import WorkloadConfig
    from repro.workload.steady import SteadyStateConfig, run_steady_state

    n = 16 if quick else 48
    cycles = 30 if quick else 120
    rate = 6.0 if quick else 24.0

    def work() -> Tuple[int, Dict[str, Any]]:
        report = run_steady_state(
            SteadyStateConfig(
                workload=WorkloadConfig(
                    updates_per_cycle=rate,
                    key_space=64,
                    zipf_s=1.1,
                    read_fraction=0.3,
                    delete_fraction=0.05,
                ),
                n=n,
                cycles=cycles,
                window=max(cycles // 10, 1),
                seed=1987,
            )
        )
        return report["ops"]["total"], {
            "n": n,
            "cycles": cycles,
            "throughput": report["throughput"]["mean"],
            "staleness_p99": report["staleness"]["p99"],
            "converged": report["converged_after_quiesce"],
        }

    elapsed, trials, detail = _timed(work)
    return ScenarioTiming("workload-steady", elapsed, trials, detail)


def _bench_workload_wan(quick: bool) -> ScenarioTiming:
    """The same harness over the 3-datacenter WAN model: per-link
    latency, bandwidth caps, and long-haul traffic attribution."""
    from repro.workload.generators import WorkloadConfig
    from repro.workload.geo import three_datacenters
    from repro.workload.steady import SteadyStateConfig, run_steady_state

    per_dc = 4 if quick else 10
    cycles = 30 if quick else 100
    rate = 6.0 if quick else 20.0

    def work() -> Tuple[int, Dict[str, Any]]:
        report = run_steady_state(
            SteadyStateConfig(
                workload=WorkloadConfig(
                    updates_per_cycle=rate,
                    key_space=64,
                    zipf_s=1.1,
                    read_fraction=0.3,
                    delete_fraction=0.05,
                ),
                wan=three_datacenters(sites_per_dc=(per_dc,) * 3),
                cycles=cycles,
                window=max(cycles // 10, 1),
                seed=1987,
            )
        )
        return report["ops"]["total"], {
            "sites_per_dc": per_dc,
            "cycles": cycles,
            "throughput": report["throughput"]["mean"],
            "staleness_p99": report["staleness"]["p99"],
            "wan_share": report["traffic"]["wan_share"],
            "busiest_wan_link": report["traffic"]["busiest_wan_link"],
            "converged": report["converged_after_quiesce"],
        }

    elapsed, trials, detail = _timed(work)
    return ScenarioTiming("workload-wan-3dc", elapsed, trials, detail)


def _bench_million_key(quick: bool) -> ScenarioTiming:
    from repro.core.store import ReplicaStore
    from repro.protocols.base import ExchangeMode
    from repro.protocols.exchange import FullCompare, HierarchicalChecksum

    n = 20_000 if quick else 1_000_000
    bits = 12 if quick else 17
    dirty = max(1, n // 100)
    stride = n // dirty

    def work() -> Tuple[int, Dict[str, Any]]:
        # Integer keys and one shared value string keep the build cheap
        # and the measurement about the exchange, not value churn.
        a = ReplicaStore(site_id=0, bucket_bits=bits)
        b = ReplicaStore(site_id=1, bucket_bits=bits)
        value = "x" * 16
        for i in range(n):
            update = a.update(i, value)
            b.apply_entry(update.key, update.entry)
        mode = ExchangeMode.PUSH_PULL
        # 1% of the keys move forward at ``a`` only; ``b`` goes stale.
        for i in range(dirty):
            a.update(i * stride, "fresh")
        start = time.perf_counter()
        hier = HierarchicalChecksum().exchange(a, b, mode)
        hier_s = time.perf_counter() - start
        # The same divergence again, resolved the naive way.
        for i in range(dirty):
            a.update(i * stride, "fresh-again")
        start = time.perf_counter()
        full = FullCompare().exchange(a, b, mode)
        full_s = time.perf_counter() - start
        assert a.checksum == b.checksum
        ratio = (
            full.entries_examined / hier.entries_examined
            if hier.entries_examined
            else 0.0
        )
        return 2, {
            "n": n,
            "bucket_bits": bits,
            "dirty": dirty,
            "entries_examined_hier": hier.entries_examined,
            "entries_examined_full": full.entries_examined,
            "examined_ratio": round(ratio, 2),
            "tree_comparisons": hier.tree_comparisons,
            "buckets_resolved": hier.buckets_resolved,
            "updates_shipped_hier": hier.updates_shipped,
            "hier_exchange_s": round(hier_s, 4),
            "full_exchange_s": round(full_s, 4),
        }

    elapsed, trials, detail = _timed(work)
    return ScenarioTiming("million-key-hierarchical", elapsed, trials, detail)


# ----------------------------------------------------------------------
# Parallel-over-serial speedup
# ----------------------------------------------------------------------


def measure_parallel_speedup(quick: bool, jobs: int) -> Dict[str, Any]:
    """Time the same Table-1 batch serial vs parallel.

    Results are bit-identical either way (that is tested elsewhere);
    here only the wall clock differs.  On a single-CPU machine the pool
    cannot win — timing it there only records scheduler noise as a
    bogus "slowdown" — so the measurement is skipped and the report
    says why (``{"skipped": "1 cpu"}``).
    """
    from repro.experiments.tables import table1

    n = 150 if quick else 400
    runs = 2 if quick else 4
    if (os.cpu_count() or 1) <= 1:
        return {"jobs": jobs, "n": n, "runs": runs, "skipped": "1 cpu"}
    start = time.perf_counter()
    table1(n=n, runs=runs, runner=TrialRunner(jobs=1))
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    table1(n=n, runs=runs, runner=TrialRunner(jobs=jobs))
    parallel_s = time.perf_counter() - start
    return {
        "jobs": jobs,
        "n": n,
        "runs": runs,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s > 0 else 0.0,
    }


# ----------------------------------------------------------------------
# Exchange hot-path micro-benchmark
# ----------------------------------------------------------------------


def _exchange_stores(entries: int, delta: int = 8):
    """A fresh store pair per conversation: ``entries`` shared entries
    plus ``delta`` fresh updates on each side.

    This is the simulator's steady-state conversation — two nearly
    converged databases with a small difference — which is exactly
    where the old exchange's sort-the-whole-table cost dominated.
    """
    from repro.core.store import ReplicaStore

    a = ReplicaStore(site_id=0)
    b = ReplicaStore(site_id=1)
    for i in range(entries):
        update = a.update(f"key-{i}", f"v-{i}")
        b.apply_entry(update.key, update.entry)
    for i in range(delta):
        a.update(f"key-a-{i}", f"new-a-{i}")
        b.update(f"key-b-{i}", f"new-b-{i}")
    return a, b


def _legacy_resolve(a, b, mode) -> None:
    """Reference implementation of the pre-optimization exchange.

    Kept verbatim for the benchmark's before/after comparison: offer
    sorted by ``repr`` of the key, both tables materialized as dicts,
    and the key union sorted again on the responder.
    """
    from repro.core.store import StoreUpdate
    from repro.protocols.base import entry_beats

    offered = [
        StoreUpdate(key=key, entry=entry)
        for key, entry in sorted(a.entries(), key=lambda kv: repr(kv[0]))
    ]
    theirs = {update.key: update.entry for update in offered}
    ours = dict(b.entries())
    keys = theirs.keys() | ours.keys()
    send_back = []
    for key in sorted(keys, key=repr):
        remote = theirs.get(key)
        local = ours.get(key)
        if mode.pushes and entry_beats(remote, local):
            b.apply_entry(key, remote)
        elif mode.pulls and entry_beats(local, remote):
            send_back.append(StoreUpdate(key=key, entry=local))
    for update in send_back:
        a.apply_update(update)


def measure_exchange_hot_path(quick: bool) -> Dict[str, Any]:
    """Per-conversation cost: optimized exchange vs the legacy reference.

    Every conversation gets a fresh store pair (built outside the timed
    window) because the exchange mutates both sides.
    """
    from repro.protocols.base import ExchangeMode
    from repro.protocols.exchange import resolve_difference

    entries = 400 if quick else 1500
    conversations = 10 if quick else 30
    mode = ExchangeMode.PUSH_PULL
    legacy_s = 0.0
    optimized_s = 0.0
    for __ in range(conversations):
        a, b = _exchange_stores(entries)
        start = time.perf_counter()
        _legacy_resolve(a, b, mode)
        legacy_s += time.perf_counter() - start
        a, b = _exchange_stores(entries)
        start = time.perf_counter()
        resolve_difference(a, b, mode)
        optimized_s += time.perf_counter() - start
    return {
        "entries": entries,
        "conversations": conversations,
        "legacy_s_per_conversation": round(legacy_s / conversations, 6),
        "optimized_s_per_conversation": round(optimized_s / conversations, 6),
        "speedup": round(legacy_s / optimized_s, 3) if optimized_s > 0 else 0.0,
    }


# ----------------------------------------------------------------------
# Store-write micro-benchmark (lazy checksum maintenance)
# ----------------------------------------------------------------------


def measure_store_put(quick: bool) -> Dict[str, Any]:
    """Per-write store cost: lazy checksum maintenance vs a checksum
    read after every write.

    The store defers digest folding until a checksum is actually read
    (the ``ChecksumTree`` refresh hook); this measurement pins that
    behavior by comparing a write burst that reads the checksum once at
    the end against one that reads it after every write — the latter is
    the old eager cost model, where every mutation paid two BLAKE2b
    digests up front.  A regression back to eager maintenance drives
    the ratio toward 1.
    """
    from repro.core.store import ReplicaStore

    writes = 2_000 if quick else 10_000
    keys = 64

    def burst(checksum_every_write: bool) -> float:
        store = ReplicaStore(site_id=0)
        start = time.perf_counter()
        for i in range(writes):
            store.update(f"key-{i % keys}", i)
            if checksum_every_write:
                store.checksum
        store.checksum
        return time.perf_counter() - start

    lazy_s = burst(checksum_every_write=False)
    eager_s = burst(checksum_every_write=True)
    return {
        "writes": writes,
        "keys": keys,
        "lazy_s": round(lazy_s, 4),
        "eager_s": round(eager_s, 4),
        "lazy_us_per_write": round(lazy_s / writes * 1e6, 3),
        "eager_us_per_write": round(eager_s / writes * 1e6, 3),
        "speedup": round(eager_s / lazy_s, 3) if lazy_s > 0 else 0.0,
    }


# ----------------------------------------------------------------------
# Span-emission overhead
# ----------------------------------------------------------------------


def _span_bench_epidemic(n: int, sink) -> Tuple[float, int]:
    """One seeded rumor epidemic; returns (wall clock, cycles run).

    With ``sink`` attached the bus has a consumer, so every delivery
    emits a span; with ``sink=None`` the bus is silent and the
    ``has_sinks`` fast path skips span construction entirely.
    """
    from repro.cluster.cluster import Cluster
    from repro.protocols.base import ExchangeMode
    from repro.protocols.rumor import RumorConfig, RumorMongeringProtocol

    cluster = Cluster(n=n, seed=1987)
    if sink is not None:
        cluster.bus.add_sink(sink)
    rumor = RumorMongeringProtocol(
        config=RumorConfig(mode=ExchangeMode.PUSH, feedback=True, counter=True, k=2)
    )
    cluster.add_protocol(rumor)
    cluster.inject_update(0, "the-key", "the-value", track=True)
    start = time.perf_counter()
    # Run the epidemic to extinction (rumors die with nonzero residue).
    cluster.run_until(lambda: not rumor.active, max_cycles=200)
    return time.perf_counter() - start, cluster.cycle


def measure_span_emission_overhead(quick: bool) -> Dict[str, Any]:
    """Cost of the delivery-span stream: identical epidemics with the
    event bus silent vs consumed.

    Both runs share one seed so the gossip trajectory is bit-identical;
    only the observability work differs.  The consuming run uses a
    counting no-op sink — the cheapest possible consumer — so the
    factor isolates span construction + dispatch, not any particular
    sink's work.
    """
    events = 0

    def sink(event) -> None:
        nonlocal events
        events += 1

    n = 150 if quick else 500
    disabled_s, cycles = _span_bench_epidemic(n, sink=None)
    enabled_s, _ = _span_bench_epidemic(n, sink=sink)
    return {
        "n": n,
        "cycles": cycles,
        "disabled_s": round(disabled_s, 4),
        "enabled_s": round(enabled_s, 4),
        "overhead_factor": round(enabled_s / disabled_s, 3) if disabled_s > 0 else 0.0,
        "events": events,
    }


# ----------------------------------------------------------------------
# Report assembly, serialization, regression gating
# ----------------------------------------------------------------------


def run_bench(
    quick: bool = False,
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the whole suite; returns the report dict (see SCHEMA)."""
    jobs = jobs if jobs is not None else default_jobs()
    runner = TrialRunner(jobs=jobs)
    say = progress if progress is not None else (lambda message: None)
    scenarios: List[ScenarioTiming] = []
    for name, fn in (
        ("table1", lambda: _bench_table1(quick, runner)),
        ("anti-entropy-pushpull", lambda: _bench_anti_entropy(quick)),
        ("rumor-push-k2", lambda: _bench_rumor(quick)),
        ("live-demo", lambda: _bench_live_demo(quick)),
        ("million-key-hierarchical", lambda: _bench_million_key(quick)),
        ("workload-steady", lambda: _bench_workload_steady(quick)),
        ("workload-wan-3dc", lambda: _bench_workload_wan(quick)),
    ):
        say(f"bench: {name} ...")
        scenarios.append(fn())
    say("bench: parallel speedup ...")
    parallel = measure_parallel_speedup(quick, jobs)
    say("bench: exchange hot path ...")
    exchange = measure_exchange_hot_path(quick)
    say("bench: store put ...")
    store_put = measure_store_put(quick)
    say("bench: span emission overhead ...")
    spans = measure_span_emission_overhead(quick)
    return {
        "schema": SCHEMA,
        "date": datetime.date.today().isoformat(),
        "quick": quick,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "scenarios": [scenario.to_dict() for scenario in scenarios],
        "parallel": parallel,
        "exchange_hot_path": exchange,
        "store_put": store_put,
        "span_emission": spans,
    }


def write_report(
    report: Dict[str, Any], path: Optional[str] = None
) -> pathlib.Path:
    """Write the report; default name ``BENCH_<date>.json`` in the CWD.

    An explicit ``path`` is always honored (and overwritten).  With the
    default name, an existing same-day report is never clobbered: the
    writer falls back to ``BENCH_<date>-2.json``, ``-3``, ... so two
    runs on one day both stay in history.
    """
    if path:
        target = pathlib.Path(path)
    else:
        stem = f"BENCH_{report['date']}"
        target = pathlib.Path(f"{stem}.json")
        suffix = 2
        while target.exists():
            target = pathlib.Path(f"{stem}-{suffix}.json")
            suffix += 1
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return target


def load_report(path: str) -> Dict[str, Any]:
    blob = json.loads(pathlib.Path(path).read_text())
    if not isinstance(blob, dict) or blob.get("schema") != SCHEMA:
        raise ValueError(f"{path}: not a {SCHEMA} report")
    return blob


def compare_reports(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float = 2.0,
) -> List[str]:
    """Scenario-by-scenario regression check against a baseline report.

    Returns human-readable regression messages; empty means the gate
    passes.  Scenarios present on only one side are skipped (the suite
    may grow), as are baselines recorded at a different ``quick``
    setting — wall clocks are only comparable like-for-like.
    """
    if bool(current.get("quick")) != bool(baseline.get("quick")):
        return []
    regressions: List[str] = []
    by_name = {s["name"]: s for s in baseline.get("scenarios", [])}
    for scenario in current.get("scenarios", []):
        base = by_name.get(scenario["name"])
        if base is None:
            continue
        base_wall = float(base.get("wall_clock_s", 0.0))
        wall = float(scenario.get("wall_clock_s", 0.0))
        if base_wall > 0 and wall > base_wall * max_regression:
            regressions.append(
                f"{scenario['name']}: {wall:.3f}s vs baseline "
                f"{base_wall:.3f}s (> {max_regression:g}x)"
            )
    return regressions


def summary_lines(report: Dict[str, Any]) -> List[str]:
    """The human-readable rendering the CLI prints."""
    lines = [
        f"bench {report['date']}  jobs={report['jobs']}  "
        f"cpus={report['cpu_count']}  quick={report['quick']}",
    ]
    for scenario in report["scenarios"]:
        lines.append(
            f"  {scenario['name']:<22} {scenario['wall_clock_s']:>8.3f}s"
            f"  ({scenario['trials']} trials, {scenario['trials_per_s']:.2f}/s)"
        )
    parallel = report["parallel"]
    if "skipped" in parallel:
        lines.append(f"  parallel speedup: skipped ({parallel['skipped']})")
    else:
        lines.append(
            f"  parallel speedup: {parallel['speedup']:g}x "
            f"(serial {parallel['serial_s']}s, jobs={parallel['jobs']} "
            f"{parallel['parallel_s']}s)"
        )
    exchange = report["exchange_hot_path"]
    lines.append(
        f"  exchange hot path: {exchange['speedup']:g}x per conversation "
        f"(legacy {exchange['legacy_s_per_conversation']}s, "
        f"optimized {exchange['optimized_s_per_conversation']}s, "
        f"{exchange['entries']} entries)"
    )
    store_put = report.get("store_put")
    if store_put:  # older reports predate the store-write measurement
        lines.append(
            f"  store put: {store_put['speedup']:g}x lazy over eager checksums "
            f"({store_put['lazy_us_per_write']}us vs "
            f"{store_put['eager_us_per_write']}us per write, "
            f"{store_put['writes']} writes)"
        )
    spans = report.get("span_emission")
    if spans:  # older reports predate the span stream
        lines.append(
            f"  span emission: {spans['overhead_factor']:g}x overhead "
            f"(silent {spans['disabled_s']}s, consumed {spans['enabled_s']}s, "
            f"{spans['events']} events, n={spans['n']})"
        )
    million = next(
        (
            s
            for s in report["scenarios"]
            if s["name"] == "million-key-hierarchical" and "examined_ratio" in s["detail"]
        ),
        None,
    )
    if million:
        detail = million["detail"]
        lines.append(
            f"  hierarchical exchange: {detail['examined_ratio']:g}x fewer "
            f"entries examined than full compare "
            f"({detail['entries_examined_hier']} vs "
            f"{detail['entries_examined_full']}, n={detail['n']}, "
            f"{detail['buckets_resolved']} dirty buckets)"
        )
    return lines
