"""Section 2 scenarios: deletion, death certificates, dormancy,
activation timestamps.

Four stories, each the driver for a test and a benchmark:

1. **Resurrection** — naive removal of an item is undone by the
   propagation mechanism; a death certificate fixes it.
2. **Fixed threshold** — discarding certificates after ``tau1``
   reopens the resurrection window for copies older than the
   threshold (e.g. held by a long-partitioned site).
3. **Dormant certificates** — retention sites keep dormant copies for
   ``tau2`` more; an obsolete item returning after ``tau1`` is
   cancelled by an awakened certificate (the "immune reaction").
4. **Reinstatement** — a legitimate update newer than the deletion
   must survive a later certificate reactivation, which is exactly
   what the activation timestamp guarantees.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.experiments.runner import TrialRunner, resolve_runner
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.base import ExchangeMode
from repro.protocols.deathcerts import CertificatePolicy, DeathCertificateManager


@dataclasses.dataclass(slots=True)
class ScenarioResult:
    description: str
    resurrected: bool
    value_visible_everywhere: Optional[bool] = None
    reactivations: int = 0
    cycles: int = 0


def _converged_cluster(n: int, seed: int, policy: Optional[CertificatePolicy] = None):
    """A cluster running push-pull anti-entropy, with key 'x' = 'v1'
    already everywhere."""
    cluster = Cluster(n=n, seed=seed)
    anti = AntiEntropyProtocol(config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL))
    cluster.add_protocol(anti)
    manager = None
    if policy is not None:
        manager = DeathCertificateManager(policy)
        cluster.add_protocol(manager)
    cluster.inject_update(0, "x", "v1")
    cluster.run_until(lambda: cluster.converged(), max_cycles=200)
    return cluster, manager


def resurrection_scenario(n: int = 30, seed: int = 30, use_certificate: bool = False) -> ScenarioResult:
    """Scenario 1: delete at one site; does the item come back?"""
    cluster, __ = _converged_cluster(n, seed)
    if use_certificate:
        cluster.inject_delete(0, "x")
    else:
        # Naive removal: what a deletion would be without certificates.
        cluster.sites[0].store.purge("x")
    cluster.run_until(lambda: cluster.converged(), max_cycles=200)
    resurrected = cluster.sites[0].store.get("x") is not None
    return ScenarioResult(
        description="certificate" if use_certificate else "naive-delete",
        resurrected=resurrected,
        cycles=cluster.cycle,
    )


def fixed_threshold_scenario(
    n: int = 30, tau1: float = 10.0, seed: int = 31
) -> ScenarioResult:
    """Scenario 2: certificate discarded after tau1; an old copy held by
    a long-partitioned site then resurrects the item everywhere."""
    policy = CertificatePolicy(tau1=tau1, tau2=0.0)
    cluster, manager = _converged_cluster(n, seed, policy)
    straggler = n - 1
    cluster.sites[straggler].up = False          # long partition begins
    cluster.inject_delete(0, "x")
    cluster.run_until(
        lambda: cluster.converged(cluster.up_site_ids()), max_cycles=200
    )
    # Wait out the threshold so every up site discards the certificate.
    cluster.run_cycles(int(tau1) + 2)
    cluster.sites[straggler].up = True           # rejoins with old data
    cluster.run_until(lambda: cluster.converged(), max_cycles=400)
    resurrected = cluster.sites[0].store.get("x") is not None
    return ScenarioResult(
        description=f"fixed-threshold tau1={tau1:g}",
        resurrected=resurrected,
        cycles=cluster.cycle,
    )


def dormant_certificate_scenario(
    n: int = 30,
    tau1: float = 10.0,
    tau2: float = 500.0,
    retention_count: int = 4,
    seed: int = 32,
) -> ScenarioResult:
    """Scenario 3: same story, but dormant copies at ``r`` retention
    sites awaken and kill the resurrection."""
    policy = CertificatePolicy(tau1=tau1, tau2=tau2)
    cluster, manager = _converged_cluster(n, seed, policy)
    straggler = n - 1
    cluster.sites[straggler].up = False
    cluster.inject_delete(0, "x", retention_count=retention_count)
    cluster.run_until(
        lambda: cluster.converged(cluster.up_site_ids()), max_cycles=200
    )
    cluster.run_cycles(int(tau1) + 2)
    cluster.sites[straggler].up = True
    cluster.run_until(lambda: cluster.converged(), max_cycles=600)
    resurrected = any(
        cluster.sites[s].store.get("x") is not None for s in cluster.site_ids
    )
    return ScenarioResult(
        description=f"dormant r={retention_count}",
        resurrected=resurrected,
        reactivations=manager.stats.reactivations if manager else 0,
        cycles=cluster.cycle,
    )


def reinstatement_scenario(
    n: int = 30,
    tau1: float = 10.0,
    tau2: float = 500.0,
    retention_count: int = 4,
    seed: int = 33,
) -> ScenarioResult:
    """Scenario 4: delete, then legitimately reinstate the item; a later
    certificate reactivation must NOT cancel the reinstatement.

    The reactivated certificate keeps its original ordinary timestamp
    (only the activation timestamp moves), so the reinstating update —
    which is newer than the deletion — wins everywhere.
    """
    policy = CertificatePolicy(tau1=tau1, tau2=tau2)
    cluster, manager = _converged_cluster(n, seed, policy)
    straggler = n - 1
    cluster.sites[straggler].up = False
    cluster.inject_delete(0, "x", retention_count=retention_count)
    cluster.run_until(
        lambda: cluster.converged(cluster.up_site_ids()), max_cycles=200
    )
    # Let the certificate expire into dormancy at the retention sites.
    cluster.run_cycles(int(tau1) + 2)
    # The straggler rejoins with the obsolete value and spreads it until
    # a dormant certificate wakes up.
    cluster.sites[straggler].up = True
    cluster.run_until(lambda: manager.stats.reactivations > 0, max_cycles=400)
    # Now the dangerous interleaving: a legitimate reinstating update,
    # newer than the deletion but issued while a reactivated certificate
    # is circulating.  Because reactivation preserved the ordinary
    # timestamp, 'v2' must win everywhere.
    cluster.inject_update(1, "x", "v2")
    cluster.run_until(lambda: cluster.converged(), max_cycles=600)
    values = cluster.values_of("x")
    visible_everywhere = all(v == "v2" for v in values.values())
    return ScenarioResult(
        description="reinstatement survives reactivation",
        resurrected=not visible_everywhere,
        value_visible_everywhere=visible_everywhere,
        reactivations=manager.stats.reactivations if manager else 0,
        cycles=cluster.cycle,
    )


def _dispatch(fn, kwargs):
    """Trampoline so heterogeneous scenario calls fit one runner batch."""
    return fn(**kwargs)


def deletion_suite(
    runner: Optional[TrialRunner] = None,
) -> List[Tuple[str, ScenarioResult]]:
    """The whole Section 2 scenario battery as ``(label, result)`` rows.

    The five scenarios are independent seeded simulations, so they fan
    out over the trial runner; labels keep the CLI's presentation order.
    """
    tasks: List[Tuple[str, object, dict]] = [
        ("naive delete", resurrection_scenario, dict(use_certificate=False)),
        ("death certificate", resurrection_scenario, dict(use_certificate=True)),
        ("fixed threshold tau1", fixed_threshold_scenario, {}),
        ("dormant certificates", dormant_certificate_scenario, {}),
        ("reinstatement", reinstatement_scenario, {}),
    ]
    results = resolve_runner(runner).map(
        _dispatch, [dict(fn=fn, kwargs=kwargs) for __, fn, kwargs in tasks]
    )
    return [(label, result) for (label, __, ___), result in zip(tasks, results)]


def space_comparison(n: int = 300, tau: float = 30.0, tau1: float = 10.0, r: int = 4) -> float:
    """The paper's O(n) history-extension claim: equal space lets
    dormant certificates cover ``tau2 = (tau - tau1) n / r``."""
    return CertificatePolicy.space_budget_equivalent(tau, tau1, n, r)
