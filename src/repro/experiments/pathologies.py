"""Figures 1 and 2 (Section 3.2): topologies that defeat spatial rumors.

Both pathologies rely on isolated sites fairly distant from the rest of
the network:

* **Figure 1** — two nearby sites ``s`` and ``t`` slightly closer to
  each other than to a group of ``m`` equidistant sites.  With a
  ``Q^-2``-style distribution and ``m > k``, push rumor mongering
  started at ``s`` or ``t`` often dies inside ``{s, t}``; pull can
  leave ``s`` and ``t`` permanently ignorant of an update from the
  main group.
* **Figure 2** — a lone site ``s`` whose distance to the root of a
  complete binary tree exceeds the tree's height.  Under push, an
  update born in the tree may stop being hot before anyone contacts
  ``s``.

The drivers measure failure rates and the ``k`` needed for full
coverage, and demonstrate the paper's remedy: back rumor mongering
with anti-entropy.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.experiments.runner import TrialRunner, resolve_runner
from repro.protocols.backup import AntiEntropyBackup, RecoveryStrategy
from repro.protocols.base import ExchangeMode
from repro.protocols.rumor import RumorConfig, RumorMongeringProtocol
from repro.sim.metrics import EpidemicMetrics
from repro.sim.rng import derive_seed
from repro.topology import builders
from repro.topology.distance import SiteDistances
from repro.topology.graph import Topology
from repro.topology.spatial import PartnerSelector, QPowerSelector


@dataclasses.dataclass(slots=True)
class PathologyResult:
    trials: int
    failures: int                 # runs that left some site susceptible
    died_in_pair: int             # Figure 1: rumor never left {s, t}
    missed_lonely: int            # Figure 2: site s never learned it

    @property
    def failure_rate(self) -> float:
        return self.failures / self.trials if self.trials else 0.0


def _run_rumor(
    topology: Topology,
    selector: PartnerSelector,
    config: RumorConfig,
    start_site: int,
    seed: int,
    max_cycles: int = 2000,
) -> Tuple[Cluster, "object"]:
    cluster = Cluster(topology=topology, seed=seed)
    protocol = RumorMongeringProtocol(config, selector=selector)
    cluster.add_protocol(protocol)
    cluster.inject_update(start_site, "the-key", "the-value", track=True)
    metrics = cluster.metrics
    cluster.run_until(lambda: not protocol.active, max_cycles=max_cycles)
    return cluster, metrics


def run_pathology_trial(
    topology: Topology,
    selector: PartnerSelector,
    config: RumorConfig,
    start_site: int,
    seed: int,
    max_cycles: int = 2000,
) -> EpidemicMetrics:
    """One pathology trial, returning only the (picklable) metrics."""
    __, metrics = _run_rumor(
        topology, selector, config, start_site=start_site,
        seed=seed, max_cycles=max_cycles,
    )
    return metrics


def figure1_experiment(
    m: int = 20,
    k: int = 2,
    trials: int = 50,
    mode: ExchangeMode = ExchangeMode.PUSH,
    seed: int = 7,
    runner: Optional[TrialRunner] = None,
) -> PathologyResult:
    """Inject at ``s`` and watch push (or pull) rumors die near home."""
    topology, s, t, group = builders.figure1_topology(m)
    distances = SiteDistances(topology)
    selector = QPowerSelector(distances, a=2.0)
    config = RumorConfig(mode=mode, feedback=True, counter=True, k=k)
    results = resolve_runner(runner).map(
        run_pathology_trial,
        [
            dict(
                topology=topology, selector=selector, config=config,
                start_site=s, seed=derive_seed(seed, trial),
            )
            for trial in range(trials)
        ],
    )
    failures = 0
    died_in_pair = 0
    for metrics in results:
        if not metrics.complete:
            failures += 1
            if set(metrics.receipt_times) <= {s, t}:
                died_in_pair += 1
    return PathologyResult(
        trials=trials, failures=failures, died_in_pair=died_in_pair, missed_lonely=0
    )


def figure1_pull_experiment(
    m: int = 20,
    k: int = 2,
    trials: int = 50,
    seed: int = 8,
    runner: Optional[TrialRunner] = None,
) -> PathologyResult:
    """Figure 1 under pull: update starts in the main group; do the
    isolated pair ``{s, t}`` ever learn it?"""
    topology, s, t, group = builders.figure1_topology(m)
    distances = SiteDistances(topology)
    selector = QPowerSelector(distances, a=2.0)
    config = RumorConfig(mode=ExchangeMode.PULL, feedback=True, counter=True, k=k)
    results = resolve_runner(runner).map(
        run_pathology_trial,
        [
            dict(
                topology=topology, selector=selector, config=config,
                start_site=group[trial % len(group)], seed=derive_seed(seed, trial),
            )
            for trial in range(trials)
        ],
    )
    failures = 0
    pair_missed = 0
    for metrics in results:
        if not metrics.complete:
            failures += 1
            if s not in metrics.receipt_times or t not in metrics.receipt_times:
                pair_missed += 1
    return PathologyResult(
        trials=trials, failures=failures, died_in_pair=pair_missed, missed_lonely=0
    )


def figure2_experiment(
    depth: int = 5,
    spur_length: int = 8,
    k: int = 2,
    trials: int = 50,
    seed: int = 9,
    runner: Optional[TrialRunner] = None,
) -> PathologyResult:
    """Inject inside the tree; does lonely site ``s`` ever hear of it?"""
    topology, s, root = builders.figure2_topology(depth, spur_length)
    distances = SiteDistances(topology)
    selector = QPowerSelector(distances, a=2.0)
    config = RumorConfig(mode=ExchangeMode.PUSH, feedback=True, counter=True, k=k)
    tree_sites = [site for site in topology.sites if site != s]
    results = resolve_runner(runner).map(
        run_pathology_trial,
        [
            dict(
                topology=topology, selector=selector, config=config,
                start_site=tree_sites[trial % len(tree_sites)],
                seed=derive_seed(seed, trial),
            )
            for trial in range(trials)
        ],
    )
    failures = 0
    missed = 0
    for metrics in results:
        if not metrics.complete:
            failures += 1
            if s not in metrics.receipt_times:
                missed += 1
    return PathologyResult(
        trials=trials, failures=failures, died_in_pair=0, missed_lonely=missed
    )


def minimal_k_for_coverage(
    topology: Topology,
    selector: PartnerSelector,
    mode: ExchangeMode,
    trials: int = 20,
    k_max: int = 40,
    seed: int = 10,
    start_site: Optional[int] = None,
    runner: Optional[TrialRunner] = None,
) -> Optional[int]:
    """The smallest ``k`` achieving full coverage in every trial.

    This reproduces the paper's tuning procedure ("once k was adjusted
    to give 100% distribution in each of 200 trials ...").  Returns
    ``None`` if no ``k <= k_max`` suffices.  The sweep over ``k`` stays
    sequential (each k's verdict gates the next); the trials within one
    ``k`` fan out.
    """
    runner = resolve_runner(runner)
    sites = topology.sites
    for k in range(1, k_max + 1):
        config = RumorConfig(mode=mode, feedback=True, counter=True, k=k)
        results = runner.map(
            run_pathology_trial,
            [
                dict(
                    topology=topology, selector=selector, config=config,
                    start_site=(
                        start_site if start_site is not None
                        else sites[trial % len(sites)]
                    ),
                    seed=derive_seed(seed, k, trial),
                )
                for trial in range(trials)
            ],
        )
        if all(metrics.complete for metrics in results):
            return k
    return None


def run_backup_trial(
    topology: Topology,
    selector: PartnerSelector,
    k: int,
    start_site: int,
    anti_entropy_period: int,
    seed: int,
    max_cycles: int = 3000,
) -> bool:
    """One rumor + anti-entropy-backup trial; True when coverage was total."""
    cluster = Cluster(topology=topology, seed=seed)
    protocol = AntiEntropyBackup(
        rumor_config=RumorConfig(
            mode=ExchangeMode.PUSH, feedback=True, counter=True, k=k
        ),
        anti_entropy_period=anti_entropy_period,
        recovery=RecoveryStrategy.HOT_RUMOR,
        selector=selector,
    )
    cluster.add_protocol(protocol)
    cluster.inject_update(start_site, "the-key", "the-value", track=True)
    metrics = cluster.metrics
    cluster.run_until(lambda: metrics.infected == cluster.n, max_cycles=max_cycles)
    return metrics.complete


def backup_fixes_pathology(
    m: int = 20,
    k: int = 1,
    trials: int = 20,
    seed: int = 11,
    anti_entropy_period: int = 4,
    max_cycles: int = 3000,
    runner: Optional[TrialRunner] = None,
) -> PathologyResult:
    """Figure 1 again, but with anti-entropy backing up the rumor:
    coverage must now be total in every trial."""
    topology, s, t, group = builders.figure1_topology(m)
    distances = SiteDistances(topology)
    selector = QPowerSelector(distances, a=2.0)
    complete = resolve_runner(runner).map(
        run_backup_trial,
        [
            dict(
                topology=topology, selector=selector, k=k, start_site=s,
                anti_entropy_period=anti_entropy_period,
                seed=derive_seed(seed, trial), max_cycles=max_cycles,
            )
            for trial in range(trials)
        ],
    )
    failures = sum(1 for ok in complete if not ok)
    return PathologyResult(
        trials=trials, failures=failures, died_in_pair=0, missed_lonely=0
    )
