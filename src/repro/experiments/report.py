"""Plain-text table rendering for experiment results."""

from __future__ import annotations

import math
from typing import Any, List, Sequence


def format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.2e}"
        if magnitude < 0.1:
            return f"{value:.4f}"
        return f"{value:.2f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render an aligned ASCII table."""
    rendered: List[List[str]] = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values, maximum=None) -> str:
    """Render a sequence of non-negative values as an ASCII sparkline.

    Used by the examples to show epidemic curves inline; scales to the
    sequence's own maximum unless one is given.
    """
    values = list(values)
    if not values:
        return ""
    top = maximum if maximum is not None else max(values)
    if top <= 0:
        return SPARK_LEVELS[0] * len(values)
    rendered = []
    for value in values:
        level = int(round((len(SPARK_LEVELS) - 1) * max(0.0, value) / top))
        rendered.append(SPARK_LEVELS[min(level, len(SPARK_LEVELS) - 1)])
    return "".join(rendered)
