"""The parallel trial engine: fan independent Monte-Carlo trials out
over worker processes, deterministically.

Every table in the paper is an average over many independent trials
(250 per row of Tables 4-5).  Trials never share state — each builds
its own :class:`~repro.cluster.cluster.Cluster` from an explicit seed —
so they parallelize embarrassingly well.  The :class:`TrialRunner`
exploits that while keeping the repo's reproducibility contract:

* **Bit-for-bit determinism.**  A trial is a module-level function plus
  a kwargs dict containing its seed; the runner executes exactly the
  same calls whether serially or in a pool, and merges results back in
  submission order.  ``TrialRunner(jobs=1)`` and ``TrialRunner(jobs=8)``
  therefore produce *identical* results (a test asserts this), and the
  serial path is the plain ``for`` loop the experiments always ran.
* **Order-independent seeding.**  Per-trial seeds come from the same
  hash-based :func:`~repro.sim.rng.derive_seed` namespace the
  :class:`~repro.sim.rng.RngRegistry` uses, so trial ``i``'s stream
  never depends on how many trials run, in which order, or in which
  process (:func:`trial_seeds`).
* **Picklability.**  Trial functions must be importable module-level
  callables and their kwargs / results plain data (dataclasses, enums,
  topologies — no clusters, no lambdas).  All experiment drivers in
  :mod:`repro.experiments` satisfy this.

Used by every experiment driver (``tables``, ``spatial``, ``workloads``,
``baselines``, ``pathologies``, ``backup_scenarios``,
``deathcert_scenarios``) and exposed on the CLI as ``--jobs N``.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

from repro.sim.rng import RngRegistry, derive_seed


def default_jobs() -> int:
    """The default worker count: one per CPU."""
    return os.cpu_count() or 1


def trial_seeds(master_seed: int, *path: Hashable, count: int) -> List[int]:
    """``count`` per-trial master seeds under a label namespace.

    Derived through the :class:`RngRegistry` fork namespace, so the
    seed of trial ``i`` depends only on ``(master_seed, path, i)`` —
    never on execution order — and adding trials never perturbs
    existing ones.
    """
    registry = RngRegistry(master_seed)
    return [registry.fork(*path, index).master_seed for index in range(count)]


def _invoke(task) -> Any:
    """Top-level trampoline so (fn, kwargs) pairs cross the pool boundary."""
    fn, kwargs = task
    return fn(**kwargs)


class TrialRunner:
    """Runs a batch of independent trials, serially or in a process pool.

    ``jobs=1`` (or a single-element batch) short-circuits to a plain
    loop in this process — no pool, no pickling, the exact code path
    the experiments ran before parallelism existed.  ``jobs=None``
    means one worker per CPU.
    """

    def __init__(self, jobs: Optional[int] = None):
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs if jobs is not None else default_jobs()

    def map(
        self,
        fn: Callable[..., Any],
        kwargs_list: Sequence[Dict[str, Any]],
    ) -> List[Any]:
        """Run ``fn(**kwargs)`` for every kwargs dict; results in input order.

        The deterministic merge point: whatever the completion order in
        the pool, result ``i`` is always the return value of call ``i``.
        """
        tasks = list(kwargs_list)
        if self.jobs <= 1 or len(tasks) <= 1:
            return [fn(**kwargs) for kwargs in tasks]
        workers = min(self.jobs, len(tasks))
        # A few chunks per worker amortizes pickling without letting one
        # slow chunk serialize the tail of the batch.
        chunksize = max(1, math.ceil(len(tasks) / (workers * 4)))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(_invoke, [(fn, kwargs) for kwargs in tasks], chunksize=chunksize)
            )

    def describe(self) -> str:
        return "serial" if self.jobs <= 1 else f"parallel(jobs={self.jobs})"


#: The serial runner experiments default to when no runner is passed:
#: keeps library calls (and the test suite) single-process unless a
#: caller opts into parallelism.
SERIAL = TrialRunner(jobs=1)


def resolve_runner(runner: Optional[TrialRunner]) -> TrialRunner:
    """``None`` -> the serial runner (library default)."""
    return runner if runner is not None else SERIAL


__all__ = [
    "TrialRunner",
    "SERIAL",
    "default_jobs",
    "derive_seed",
    "resolve_runner",
    "trial_seeds",
]
