"""Tables 4-5 and the Section 3 spatial-distribution studies.

Each trial injects a single update at a randomly chosen site of the
synthetic CIN topology and runs push-pull anti-entropy until every site
has the update, recording:

* ``t_last`` / ``t_ave`` — convergence delays in cycles;
* **compare traffic** — anti-entropy conversations per cycle, averaged
  over all network links (and separately on the transatlantic
  ``bushey`` link): every conversation is charged to every link on the
  shortest path between the partners;
* **update traffic** — the total number of exchanges in which the
  update actually had to be shipped, again per link and on Bushey.

Table 4 uses no connection limit; Table 5 the most pessimistic
connection limit 1 with hunt limit 0.  Rows sweep the spatial
distribution: uniform, then equation (3.1.1) with a = 1.2 .. 2.0.

Also here: the rumor-mongering variants of the same experiment
(Section 3.2) and the line-network scaling study (Section 3 intro).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.experiments.runner import TrialRunner, resolve_runner
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.base import ExchangeMode
from repro.protocols.rumor import RumorConfig, RumorMongeringProtocol
from repro.sim.metrics import Edge, mean
from repro.sim.rng import derive_seed
from repro.sim.transport import ConnectionPolicy, UNLIMITED
from repro.topology import builders
from repro.topology.cin import CinNetwork, build_cin_like_topology
from repro.topology.distance import SiteDistances
from repro.topology.graph import Topology
from repro.topology.spatial import (
    DistancePowerSelector,
    PartnerSelector,
    SortedListSelector,
    UniformSelector,
)

import random


@dataclasses.dataclass(slots=True)
class SpatialRow:
    """One averaged row of a Table 4/5-style result."""

    label: str
    t_last: float
    t_ave: float
    compare_avg: float
    compare_special: float
    update_avg: float
    update_special: float
    runs: int
    incomplete_runs: int = 0

    def as_tuple(self):
        return (
            self.label,
            self.t_last,
            self.t_ave,
            self.compare_avg,
            self.compare_special,
            self.update_avg,
            self.update_special,
        )


@dataclasses.dataclass(slots=True)
class TrialResult:
    t_last: float
    t_ave: float
    cycles: int
    compare_total: float
    compare_special: float
    update_total: float
    update_special: float
    complete: bool


def run_anti_entropy_trial(
    topology: Topology,
    selector: PartnerSelector,
    seed: int,
    policy: ConnectionPolicy = UNLIMITED,
    special_link: Optional[Edge] = None,
    mode: ExchangeMode = ExchangeMode.PUSH_PULL,
    max_cycles: int = 500,
) -> TrialResult:
    """One update propagated by anti-entropy until full coverage."""
    cluster = Cluster(topology=topology, seed=seed)
    protocol = AntiEntropyProtocol(
        selector=selector, config=AntiEntropyConfig(mode=mode, policy=policy)
    )
    cluster.add_protocol(protocol)
    start_site = random.Random(derive_seed(seed, "start")).choice(cluster.site_ids)
    cluster.inject_update(start_site, "the-key", "the-value", track=True)
    metrics = cluster.metrics
    complete = True
    try:
        cluster.run_until(lambda: metrics.infected == cluster.n, max_cycles=max_cycles)
    except RuntimeError:
        complete = False
    traffic = cluster.traffic
    special = special_link
    return TrialResult(
        t_last=metrics.t_last,
        t_ave=metrics.t_ave,
        cycles=cluster.cycle,
        compare_total=traffic.compare.total,
        compare_special=traffic.compare.on_link(*special) if special else 0.0,
        update_total=traffic.update.total,
        update_special=traffic.update.on_link(*special) if special else 0.0,
        complete=complete,
    )


def run_rumor_spatial_trial(
    topology: Topology,
    selector: PartnerSelector,
    config: RumorConfig,
    seed: int,
    special_link: Optional[Edge] = None,
    max_cycles: int = 1000,
) -> TrialResult:
    """One update spread by rumor mongering on a routed topology."""
    cluster = Cluster(topology=topology, seed=seed)
    protocol = RumorMongeringProtocol(config, selector=selector)
    cluster.add_protocol(protocol)
    start_site = random.Random(derive_seed(seed, "start")).choice(cluster.site_ids)
    cluster.inject_update(start_site, "the-key", "the-value", track=True)
    metrics = cluster.metrics
    cluster.run_until(lambda: not protocol.active, max_cycles=max_cycles)
    traffic = cluster.traffic
    special = special_link
    # Report *useful* update traffic (the receiver needed it): that is
    # the Table 4 notion, making the Section 3.2 rumor-vs-anti-entropy
    # comparison apples to apples.  Redundant rumor shipments are still
    # visible in metrics.update_sends.
    return TrialResult(
        t_last=metrics.t_last,
        t_ave=metrics.t_ave,
        cycles=cluster.cycle,
        compare_total=traffic.compare.total,
        compare_special=traffic.compare.on_link(*special) if special else 0.0,
        update_total=traffic.useful_update.total,
        update_special=traffic.useful_update.on_link(*special) if special else 0.0,
        complete=metrics.complete,
    )


def standard_selectors(
    distances: SiteDistances, a_values: Sequence[float] = (1.2, 1.4, 1.6, 1.8, 2.0)
) -> List[Tuple[str, PartnerSelector]]:
    """The selector sweep of Tables 4 and 5: uniform plus (3.1.1)."""
    selectors: List[Tuple[str, PartnerSelector]] = [
        ("uniform", UniformSelector(distances.sites))
    ]
    for a in a_values:
        selectors.append((f"a={a:g}", SortedListSelector(distances, a)))
    return selectors


def spatial_table(
    cin: Optional[CinNetwork] = None,
    runs: int = 20,
    policy: ConnectionPolicy = UNLIMITED,
    seed: int = 4,
    a_values: Sequence[float] = (1.2, 1.4, 1.6, 1.8, 2.0),
    selectors: Optional[List[Tuple[str, PartnerSelector]]] = None,
    runner: Optional[TrialRunner] = None,
) -> List[SpatialRow]:
    """Tables 4 (policy=UNLIMITED) and 5 (connection limit 1, hunt 0).

    Each (selector, run) pair is an independent seeded trial; the whole
    sweep goes to the :class:`TrialRunner` as one batch and results are
    regrouped per selector, so the rows are identical for any ``jobs``.
    """
    runner = resolve_runner(runner)
    if cin is None:
        cin = build_cin_like_topology()
    distances = SiteDistances(cin.topology)
    if selectors is None:
        selectors = standard_selectors(distances, a_values)
    link_count = cin.topology.edge_count
    params = [
        dict(
            topology=cin.topology,
            selector=selector,
            seed=derive_seed(seed, label, run),
            policy=policy,
            special_link=cin.bushey,
        )
        for label, selector in selectors
        for run in range(runs)
    ]
    results = runner.map(run_anti_entropy_trial, params)
    rows: List[SpatialRow] = []
    for index, (label, __) in enumerate(selectors):
        trials = results[index * runs:(index + 1) * runs]
        rows.append(_summarize(label, trials, link_count, runs))
    return rows


def rumor_spatial_table(
    cin: Optional[CinNetwork] = None,
    runs: int = 20,
    seed: int = 5,
    a: float = 1.4,
    ks: Sequence[int] = (2, 3, 4, 5, 6),
    mode: ExchangeMode = ExchangeMode.PUSH_PULL,
    runner: Optional[TrialRunner] = None,
) -> List[SpatialRow]:
    """Section 3.2: push-pull rumor mongering with spatial selection.

    Sweeps ``k`` at a fixed spatial distribution; the paper's finding is
    that a modest finite ``k`` recovers Table 4's convergence and
    traffic while cutting critical-link load.
    """
    runner = resolve_runner(runner)
    if cin is None:
        cin = build_cin_like_topology()
    distances = SiteDistances(cin.topology)
    selector = SortedListSelector(distances, a)
    link_count = cin.topology.edge_count
    ks = list(ks)
    params = [
        dict(
            topology=cin.topology,
            selector=selector,
            config=RumorConfig(mode=mode, feedback=True, counter=True, k=k),
            seed=derive_seed(seed, k, run),
            special_link=cin.bushey,
        )
        for k in ks
        for run in range(runs)
    ]
    results = runner.map(run_rumor_spatial_trial, params)
    rows: List[SpatialRow] = []
    for index, k in enumerate(ks):
        trials = results[index * runs:(index + 1) * runs]
        rows.append(_summarize(f"k={k}", trials, link_count, runs))
    return rows


def _summarize(
    label: str, trials: List[TrialResult], link_count: int, runs: int
) -> SpatialRow:
    return SpatialRow(
        label=label,
        t_last=mean([t.t_last for t in trials]),
        t_ave=mean([t.t_ave for t in trials]),
        compare_avg=mean(
            [t.compare_total / (link_count * t.cycles) for t in trials if t.cycles]
        ),
        compare_special=mean([t.compare_special / t.cycles for t in trials if t.cycles]),
        update_avg=mean([t.update_total / link_count for t in trials]),
        update_special=mean([t.update_special for t in trials]),
        runs=runs,
        incomplete_runs=sum(1 for t in trials if not t.complete),
    )


@dataclasses.dataclass(slots=True)
class LineScalingRow:
    n: int
    a: float
    mean_link_traffic: float   # conversations per link per cycle
    t_last: float
    runs: int


def line_scaling(
    ns: Sequence[int] = (16, 32, 64, 128),
    a_values: Sequence[float] = (0.0, 1.0, 1.5, 2.0, 3.0),
    runs: int = 5,
    seed: int = 6,
    runner: Optional[TrialRunner] = None,
) -> List[LineScalingRow]:
    """Section 3's line-network tradeoff: traffic vs convergence.

    ``a = 0`` is the uniform distribution (``d^0``).  Expected shape:
    per-link traffic grows roughly like n (a<1), n^{2-a} (1<a<2),
    log n (a=2), O(1) (a>2), while convergence time stays polylog for
    a <= 2 and degrades toward polynomial for larger a.
    """
    runner = resolve_runner(runner)
    cells: List[Tuple[int, float, int]] = []   # (n, a, link_count)
    params = []
    for n in ns:
        topology = builders.line(n)
        distances = SiteDistances(topology)
        for a in a_values:
            if a == 0.0:
                selector: PartnerSelector = UniformSelector(topology.sites)
            else:
                selector = DistancePowerSelector(distances, a)
            cells.append((n, a, topology.edge_count))
            params.extend(
                dict(
                    topology=topology,
                    selector=selector,
                    seed=derive_seed(seed, n, a, run),
                    max_cycles=50 * n,
                )
                for run in range(runs)
            )
    results = runner.map(run_anti_entropy_trial, params)
    rows: List[LineScalingRow] = []
    for index, (n, a, link_count) in enumerate(cells):
        trials = results[index * runs:(index + 1) * runs]
        rows.append(
            LineScalingRow(
                n=n,
                a=a,
                mean_link_traffic=mean(
                    [
                        t.compare_total / (link_count * t.cycles)
                        for t in trials
                        if t.cycles
                    ]
                ),
                t_last=mean([t.t_last for t in trials]),
                runs=runs,
            )
        )
    return rows


# Paper values (Tables 4 and 5) for shape comparison.
PAPER_TABLE4 = [
    ("uniform", 7.8, 5.3, 5.9, 75.7, 5.8, 74.4),
    ("a=1.2", 10.0, 6.3, 2.0, 11.2, 2.6, 17.5),
    ("a=1.4", 10.3, 6.4, 1.9, 8.8, 2.5, 14.1),
    ("a=1.6", 10.9, 6.7, 1.7, 5.7, 2.3, 10.9),
    ("a=1.8", 12.0, 7.2, 1.5, 3.7, 2.1, 7.7),
    ("a=2.0", 13.3, 7.8, 1.4, 2.4, 1.9, 5.9),
]

PAPER_TABLE5 = [
    ("uniform", 11.0, 7.0, 3.7, 47.5, 5.8, 75.2),
    ("a=1.2", 16.9, 9.9, 1.1, 6.4, 2.7, 18.0),
    ("a=1.4", 17.3, 10.1, 1.1, 4.7, 2.5, 13.7),
    ("a=1.6", 19.1, 11.1, 0.9, 2.9, 2.3, 10.2),
    ("a=1.8", 21.5, 12.4, 0.8, 1.7, 2.1, 7.0),
    ("a=2.0", 24.6, 14.1, 0.7, 0.9, 1.9, 4.8),
]
