"""Tables 1-3: rumor-mongering variants on 1000 uniformly-mixed sites.

Each trial injects a single update at site 0 and runs the configured
rumor-mongering variant to quiescence (no hot rumors anywhere),
recording the paper's four metrics: residue ``s``, traffic ``m``
(update messages per site), and the convergence delays ``t_ave`` and
``t_last``.

* **Table 1** — push, feedback + counter, k = 1..5;
* **Table 2** — push, blind + coin, k = 1..5;
* **Table 3** — pull, feedback + counter (footnote semantics), k = 1..3.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.experiments.runner import TrialRunner, resolve_runner
from repro.protocols.base import ExchangeMode
from repro.protocols.rumor import RumorConfig, RumorMongeringProtocol
from repro.sim.metrics import EpidemicMetrics, mean
from repro.sim.transport import ConnectionPolicy, UNLIMITED
from repro.topology.spatial import PartnerSelector


@dataclasses.dataclass(slots=True)
class RumorRow:
    """One averaged row of a Table 1/2/3-style result."""

    k: int
    residue: float
    traffic: float
    t_ave: float
    t_last: float
    runs: int

    def as_tuple(self):
        return (self.k, self.residue, self.traffic, self.t_ave, self.t_last)


def run_rumor_trial(
    n: int,
    config: RumorConfig,
    seed: int,
    max_cycles: int = 1000,
    selector: Optional[PartnerSelector] = None,
    injection_site: int = 0,
    engine: str = "auto",
) -> EpidemicMetrics:
    """One epidemic to quiescence; returns its metrics.

    ``engine`` picks the implementation: ``"batched"`` runs the flat
    array core (:mod:`repro.sim.batch`), ``"reference"`` the scalar
    :class:`Cluster` path, and ``"auto"`` (default) the batched core
    whenever the trial shape allows it — uniform partner selection over
    the whole population (``selector=None``).  Both engines are
    bit-for-bit identical; the golden tests hold them equal.
    """
    if engine not in ("auto", "batched", "reference"):
        raise ValueError(f"unknown engine {engine!r}")
    use_batched = engine == "batched" or (engine == "auto" and selector is None)
    if use_batched:
        if selector is not None:
            raise ValueError("the batched engine requires uniform partner selection")
        from repro.sim.batch import rumor_trial

        return rumor_trial(
            n, config, seed, max_cycles=max_cycles, injection_site=injection_site
        )
    cluster = Cluster(n=n, seed=seed)
    protocol = RumorMongeringProtocol(config, selector=selector)
    cluster.add_protocol(protocol)
    cluster.inject_update(injection_site, "the-key", "the-value", track=True)
    cluster.run_until(lambda: not protocol.active, max_cycles=max_cycles)
    return cluster.metrics


def run_anti_entropy_trial(
    n: int,
    mode: ExchangeMode = ExchangeMode.PUSH_PULL,
    seed: int = 0,
    max_cycles: int = 200,
    injection_site: int = 0,
    engine: str = "auto",
) -> EpidemicMetrics:
    """One synchronous anti-entropy epidemic run until every site is
    infected; returns its metrics.  ``engine`` as in
    :func:`run_rumor_trial` (the batched core covers the unlimited
    uniform-selection shape both engines are benchmarked on)."""
    if engine not in ("auto", "batched", "reference"):
        raise ValueError(f"unknown engine {engine!r}")
    if engine != "reference":
        from repro.sim.batch import anti_entropy_trial

        return anti_entropy_trial(
            n, mode, seed, max_cycles=max_cycles, injection_site=injection_site
        )
    from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol

    cluster = Cluster(n=n, seed=seed)
    cluster.add_protocol(AntiEntropyProtocol(config=AntiEntropyConfig(mode=mode)))
    cluster.inject_update(injection_site, "the-key", "the-value", track=True)
    metrics = cluster.metrics
    cluster.run_until(lambda: metrics.infected == n, max_cycles=max_cycles)
    return metrics


def rumor_table(
    n: int,
    ks: Sequence[int],
    mode: ExchangeMode,
    feedback: bool,
    counter: bool,
    runs: int = 5,
    seed: int = 0,
    policy: ConnectionPolicy = UNLIMITED,
    minimization: bool = False,
    runner: Optional[TrialRunner] = None,
    engine: str = "auto",
) -> List[RumorRow]:
    """Run one table: sweep ``k``, average ``runs`` independent trials.

    The whole sweep — every ``(k, run)`` pair — is one flat batch
    handed to the :class:`TrialRunner`, so a parallel runner load-balances
    across the entire table rather than one row at a time.  Per-trial
    seeds are explicit, so the rows are identical whatever ``jobs`` is.
    """
    runner = resolve_runner(runner)
    ks = list(ks)
    configs = {
        k: RumorConfig(
            mode=mode,
            feedback=feedback,
            counter=counter,
            k=k,
            policy=policy,
            minimization=minimization,
        )
        for k in ks
    }
    params = [
        dict(n=n, config=configs[k], seed=seed * 10_000 + k * 100 + run, engine=engine)
        for k in ks
        for run in range(runs)
    ]
    results = runner.map(run_rumor_trial, params)
    rows: List[RumorRow] = []
    for index, k in enumerate(ks):
        metrics_list = results[index * runs:(index + 1) * runs]
        rows.append(
            RumorRow(
                k=k,
                residue=mean([m.residue for m in metrics_list]),
                traffic=mean([m.traffic_per_site for m in metrics_list]),
                t_ave=mean([m.t_ave for m in metrics_list]),
                t_last=mean([m.t_last for m in metrics_list]),
                runs=runs,
            )
        )
    return rows


def table1(
    n: int = 1000, runs: int = 5, seed: int = 1,
    runner: Optional[TrialRunner] = None, engine: str = "auto",
) -> List[RumorRow]:
    """Push rumor mongering with feedback and counters, k = 1..5."""
    return rumor_table(
        n, ks=range(1, 6), mode=ExchangeMode.PUSH, feedback=True, counter=True,
        runs=runs, seed=seed, runner=runner, engine=engine,
    )


def table2(
    n: int = 1000, runs: int = 5, seed: int = 2,
    runner: Optional[TrialRunner] = None, engine: str = "auto",
) -> List[RumorRow]:
    """Push rumor mongering, blind and coin, k = 1..5."""
    return rumor_table(
        n, ks=range(1, 6), mode=ExchangeMode.PUSH, feedback=False, counter=False,
        runs=runs, seed=seed, runner=runner, engine=engine,
    )


def table3(
    n: int = 1000, runs: int = 5, seed: int = 3,
    runner: Optional[TrialRunner] = None, engine: str = "auto",
) -> List[RumorRow]:
    """Pull rumor mongering with feedback and counters (footnote
    semantics: any needy recipient resets the counter), k = 1..3."""
    return rumor_table(
        n, ks=range(1, 4), mode=ExchangeMode.PULL, feedback=True, counter=True,
        runs=runs, seed=seed, runner=runner, engine=engine,
    )


# Paper values for shape comparison (EXPERIMENTS.md records the deltas).
PAPER_TABLE1 = [
    (1, 0.18, 1.7, 11.0, 16.8),
    (2, 0.037, 3.3, 12.1, 16.9),
    (3, 0.011, 4.5, 12.5, 17.4),
    (4, 0.0036, 5.6, 12.7, 17.5),
    (5, 0.0012, 6.7, 12.8, 17.7),
]

PAPER_TABLE2 = [
    (1, 0.96, 0.04, 19.0, 38.0),
    (2, 0.20, 1.6, 17.0, 33.0),
    (3, 0.060, 2.8, 15.0, 32.0),
    (4, 0.021, 3.9, 14.1, 32.0),
    (5, 0.008, 4.9, 13.8, 32.0),
]

PAPER_TABLE3 = [
    (1, 3.1e-2, 2.7, 9.97, 17.6),
    (2, 5.8e-4, 4.5, 10.07, 15.4),
    (3, 4.0e-6, 6.1, 10.08, 14.0),
]
