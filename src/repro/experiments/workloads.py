"""Synthetic update workloads and the steady-state checksum study.

The paper's tables track one update at a time; a deployed
Clearinghouse sees a continuous stream.  Two things only show up under
sustained load, both studied here:

* the **choice of tau** for the checksum + recent-update-list
  anti-entropy exchange (Section 1.3): tau must exceed the expected
  update distribution time or "checksum comparisons will usually fail
  and network traffic will rise to a level slightly higher than what
  would be produced by anti-entropy without checksums";
* steady-state traffic scaling with the update rate.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.experiments.runner import TrialRunner, resolve_runner
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.base import ExchangeMode
from repro.protocols.exchange import ChecksumWithRecent
from repro.sim.rng import derive_seed


@dataclasses.dataclass(frozen=True, slots=True)
class WorkloadConfig:
    """A continuous client workload.

    ``updates_per_cycle`` is the mean of a Poisson-like arrival process
    (binomial over sites); keys are drawn from ``key_space`` names with
    popularity skew ``zipf_s`` (0 = uniform); a ``delete_fraction`` of
    operations are deletions.
    """

    updates_per_cycle: float = 2.0
    key_space: int = 100
    zipf_s: float = 0.0
    delete_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.updates_per_cycle < 0:
            raise ValueError("updates_per_cycle must be non-negative")
        if self.key_space < 1:
            raise ValueError("key_space must be positive")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be non-negative")
        if not 0.0 <= self.delete_fraction < 1.0:
            raise ValueError("delete_fraction must be in [0, 1)")


class WorkloadDriver:
    """Injects a :class:`WorkloadConfig` into a cluster, cycle by cycle."""

    def __init__(self, cluster: Cluster, config: WorkloadConfig, seed: int = 0):
        self.cluster = cluster
        self.config = config
        self._rng = random.Random(derive_seed(seed, "workload"))
        self._sequence = 0
        # Precompute the key-popularity CDF.
        weights = [
            (rank + 1) ** (-config.zipf_s) for rank in range(config.key_space)
        ]
        total = sum(weights)
        cumulative = 0.0
        self._cdf: List[float] = []
        for weight in weights:
            cumulative += weight / total
            self._cdf.append(cumulative)
        self.operations = 0
        self.deletes = 0

    def _pick_key(self) -> str:
        import bisect

        index = bisect.bisect_left(self._cdf, self._rng.random())
        return f"key-{min(index, self.config.key_space - 1)}"

    def inject_one_cycle(self) -> int:
        """Inject this cycle's client operations; returns how many."""
        count = 0
        up = self.cluster.up_site_ids()
        if not up:
            return 0
        # Binomial arrivals approximating Poisson(updates_per_cycle).
        expected = self.config.updates_per_cycle
        whole = int(expected)
        count = whole + (1 if self._rng.random() < expected - whole else 0)
        for __ in range(count):
            site = self._rng.choice(up)
            key = self._pick_key()
            self.operations += 1
            if self._rng.random() < self.config.delete_fraction:
                self.cluster.inject_delete(site, key)
                self.deletes += 1
            else:
                self._sequence += 1
                self.cluster.inject_update(site, key, f"value-{self._sequence}")
        return count

    def run(self, cycles: int) -> None:
        """Interleave injection with cluster cycles."""
        for __ in range(cycles):
            self.inject_one_cycle()
            self.cluster.run_cycle()


@dataclasses.dataclass(slots=True)
class SteadyStateResult:
    tau: float
    update_rate: float
    checksum_success_rate: float
    entries_examined_per_exchange: float
    full_compare_rate: float
    converged_after_quiesce: bool


def run_tau_point(
    n: int,
    tau: float,
    update_rate: float,
    cycles: int,
    seed: int,
) -> SteadyStateResult:
    """One point of the tau sweep: a full sustained-load run at one tau."""
    cluster = Cluster(n=n, seed=derive_seed(seed, tau))
    protocol = AntiEntropyProtocol(
        config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL, synchronous=False),
        strategy=ChecksumWithRecent(tau=tau),
    )
    cluster.add_protocol(protocol)
    driver = WorkloadDriver(
        cluster, WorkloadConfig(updates_per_cycle=update_rate), seed=seed
    )
    driver.run(cycles)
    exchanges = max(protocol.stats.exchanges, 1)
    checksum_successes = protocol.stats.checksum_successes
    full_compares = protocol.stats.full_compares
    # Quiesce: stop injecting, confirm convergence still happens.
    converged = True
    try:
        cluster.run_until(cluster.converged, max_cycles=100)
    except RuntimeError:
        converged = False
    return SteadyStateResult(
        tau=tau,
        update_rate=update_rate,
        checksum_success_rate=checksum_successes / exchanges,
        entries_examined_per_exchange=(
            protocol.stats.entries_examined / exchanges
        ),
        full_compare_rate=full_compares / exchanges,
        converged_after_quiesce=converged,
    )


def checksum_tau_experiment(
    n: int = 30,
    tau_values: Sequence[float] = (2.0, 5.0, 10.0, 20.0, 50.0),
    update_rate: float = 2.0,
    cycles: int = 60,
    seed: int = 0,
    runner: Optional[TrialRunner] = None,
) -> List[SteadyStateResult]:
    """Sweep tau for the checksum + recent-list exchange under load.

    Expected shape: success rate near zero when tau is below the
    distribution time (~log n cycles), climbing toward one as tau
    passes it, with entries-examined falling correspondingly.  Each tau
    point is an independent seeded run, fanned out by the runner.
    """
    return resolve_runner(runner).map(
        run_tau_point,
        [
            dict(n=n, tau=tau, update_rate=update_rate, cycles=cycles, seed=seed)
            for tau in tau_values
        ],
    )
