"""The steady-state checksum study (and the workload shim behind it).

The paper's tables track one update at a time; a deployed
Clearinghouse sees a continuous stream.  Sustained load is what makes
the **choice of tau** for the checksum + recent-update-list exchange
matter (Section 1.3): tau must exceed the expected update distribution
time or "checksum comparisons will usually fail and network traffic
will rise to a level slightly higher than what would be produced by
anti-entropy without checksums".

Workload generation itself now lives in :mod:`repro.workload` — true
Poisson arrivals, Zipf popularity, read/delete mixes, open- and
closed-loop modes.  :class:`WorkloadConfig` and :class:`WorkloadDriver`
are re-exported here for compatibility; existing callers (and the tau
study below) run unchanged on the new machinery.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.experiments.runner import TrialRunner, resolve_runner
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.base import ExchangeMode
from repro.protocols.exchange import ChecksumWithRecent
from repro.sim.rng import derive_seed
from repro.workload.driver import WorkloadDriver
from repro.workload.generators import WorkloadConfig

__all__ = [
    "WorkloadConfig",
    "WorkloadDriver",
    "SteadyStateResult",
    "run_tau_point",
    "checksum_tau_experiment",
]


@dataclasses.dataclass(slots=True)
class SteadyStateResult:
    tau: float
    update_rate: float
    checksum_success_rate: float
    entries_examined_per_exchange: float
    full_compare_rate: float
    converged_after_quiesce: bool


def run_tau_point(
    n: int,
    tau: float,
    update_rate: float,
    cycles: int,
    seed: int,
) -> SteadyStateResult:
    """One point of the tau sweep: a full sustained-load run at one tau."""
    cluster = Cluster(n=n, seed=derive_seed(seed, tau))
    protocol = AntiEntropyProtocol(
        config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL, synchronous=False),
        strategy=ChecksumWithRecent(tau=tau),
    )
    cluster.add_protocol(protocol)
    driver = WorkloadDriver(
        cluster, WorkloadConfig(updates_per_cycle=update_rate), seed=seed
    )
    driver.run(cycles)
    exchanges = max(protocol.stats.exchanges, 1)
    checksum_successes = protocol.stats.checksum_successes
    full_compares = protocol.stats.full_compares
    # Quiesce: stop injecting, confirm convergence still happens.
    converged = True
    try:
        cluster.run_until(cluster.converged, max_cycles=100)
    except RuntimeError:
        converged = False
    return SteadyStateResult(
        tau=tau,
        update_rate=update_rate,
        checksum_success_rate=checksum_successes / exchanges,
        entries_examined_per_exchange=(
            protocol.stats.entries_examined / exchanges
        ),
        full_compare_rate=full_compares / exchanges,
        converged_after_quiesce=converged,
    )


def checksum_tau_experiment(
    n: int = 30,
    tau_values: Sequence[float] = (2.0, 5.0, 10.0, 20.0, 50.0),
    update_rate: float = 2.0,
    cycles: int = 60,
    seed: int = 0,
    runner: Optional[TrialRunner] = None,
) -> List[SteadyStateResult]:
    """Sweep tau for the checksum + recent-list exchange under load.

    Expected shape: success rate near zero when tau is below the
    distribution time (~log n cycles), climbing toward one as tau
    passes it, with entries-examined falling correspondingly.  Each tau
    point is an independent seeded run, fanned out by the runner.
    """
    return resolve_runner(runner).map(
        run_tau_point,
        [
            dict(n=n, tau=tau, update_rate=update_rate, cycles=cycles, seed=seed)
            for tau in tau_values
        ],
    )
