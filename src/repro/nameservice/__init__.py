"""A Clearinghouse-style replicated name service (Section 0.1, [Op]).

The paper's algorithms were built for the Xerox Clearinghouse: a
directory mapping three-level hierarchical names
(``organization:domain:local-name``) to machine addresses, user
identities, distribution lists, etc.  The top two levels partition the
name space into *domains*; each domain is replicated on a subset of
the Clearinghouse servers — from one server to all several hundred of
them — and it was the highly-replicated domains whose update traffic
melted the network in 1986.

This package is that substrate, built on the cluster/protocol layers:

* :mod:`repro.nameservice.names` — names, parsing, domain identity;
* :mod:`repro.nameservice.records` — the directory's typed records
  (addresses, aliases, groups);
* :mod:`repro.nameservice.service` — the :class:`Clearinghouse`:
  servers hosting many domains, each domain an independently
  replicated database with its own distribution protocols, plus the
  client operations (bind / lookup / unbind / list) with the relaxed
  consistency the paper assumes.
"""

from repro.nameservice.names import DomainId, Name
from repro.nameservice.records import AddressRecord, AliasRecord, GroupRecord
from repro.nameservice.service import Clearinghouse, DomainConfig

__all__ = [
    "DomainId",
    "Name",
    "AddressRecord",
    "AliasRecord",
    "GroupRecord",
    "Clearinghouse",
    "DomainConfig",
]
