"""Three-level hierarchical names (Clearinghouse [Op]).

A full name is ``organization:domain:local``; the first two levels
identify the *domain*, the unit of replication.  Names are
case-preserving but compare case-insensitively, as the Clearinghouse's
user-visible names did.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Tuple

_LABEL = re.compile(r"^[A-Za-z0-9][A-Za-z0-9 ._-]*$")


def _validate_label(label: str, what: str) -> str:
    if not isinstance(label, str) or not label:
        raise ValueError(f"{what} must be a non-empty string")
    if ":" in label:
        raise ValueError(f"{what} must not contain ':' (got {label!r})")
    if not _LABEL.match(label):
        raise ValueError(f"invalid {what}: {label!r}")
    return label


@dataclasses.dataclass(frozen=True, slots=True)
class DomainId:
    """The top two levels: the unit of replication."""

    organization: str
    domain: str

    def __post_init__(self) -> None:
        _validate_label(self.organization, "organization")
        _validate_label(self.domain, "domain")

    @property
    def key(self) -> Tuple[str, str]:
        return (self.organization.lower(), self.domain.lower())

    def name(self, local: str) -> "Name":
        return Name(self.organization, self.domain, local)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DomainId) and self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __str__(self) -> str:
        return f"{self.organization}:{self.domain}"

    @classmethod
    def parse(cls, text: str) -> "DomainId":
        parts = text.split(":")
        if len(parts) != 2:
            raise ValueError(f"expected 'org:domain', got {text!r}")
        return cls(parts[0], parts[1])


@dataclasses.dataclass(frozen=True, slots=True)
class Name:
    """A full three-level name: ``organization:domain:local``."""

    organization: str
    domain: str
    local: str

    def __post_init__(self) -> None:
        _validate_label(self.organization, "organization")
        _validate_label(self.domain, "domain")
        _validate_label(self.local, "local name")

    @property
    def domain_id(self) -> DomainId:
        return DomainId(self.organization, self.domain)

    @property
    def key(self) -> Tuple[str, str, str]:
        return (
            self.organization.lower(),
            self.domain.lower(),
            self.local.lower(),
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Name) and self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __str__(self) -> str:
        return f"{self.organization}:{self.domain}:{self.local}"

    @classmethod
    def parse(cls, text: str) -> "Name":
        parts = text.split(":")
        if len(parts) != 3:
            raise ValueError(f"expected 'org:domain:local', got {text!r}")
        return cls(parts[0], parts[1], parts[2])
