"""Directory record types (Clearinghouse [Op]).

The Clearinghouse mapped names to typed property sets: machine
addresses for servers and workstations, aliases, and distribution
lists (groups).  Three record kinds cover the behaviors the paper's
algorithms interact with; all are immutable values so they can live in
a :class:`~repro.core.store.ReplicaStore` entry unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet


@dataclasses.dataclass(frozen=True, slots=True)
class AddressRecord:
    """name -> network address (the name-lookup workhorse)."""

    address: str
    port: int = 0

    def __post_init__(self) -> None:
        if not self.address:
            raise ValueError("address must be non-empty")
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port out of range: {self.port}")

    def __str__(self) -> str:
        return f"{self.address}:{self.port}" if self.port else self.address


@dataclasses.dataclass(frozen=True, slots=True)
class AliasRecord:
    """name -> another name (resolved by the client library)."""

    target: str   # a full three-level name in text form

    def __post_init__(self) -> None:
        if self.target.count(":") != 2:
            raise ValueError(f"alias target must be a full name: {self.target!r}")


@dataclasses.dataclass(frozen=True, slots=True)
class GroupRecord:
    """name -> a set of member names (distribution lists).

    Members are a frozen set of full-name strings.  Note the paper's
    consistency model applies to the *record as a whole*: concurrent
    member additions at different sites resolve by last-writer-wins on
    the record, which is exactly the anomaly Grapevine/Clearinghouse
    operators lived with.
    """

    members: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        for member in self.members:
            if member.count(":") != 2:
                raise ValueError(f"group member must be a full name: {member!r}")

    def with_member(self, member: str) -> "GroupRecord":
        return GroupRecord(members=self.members | {member})

    def without_member(self, member: str) -> "GroupRecord":
        return GroupRecord(members=self.members - {member})

    def __contains__(self, member: str) -> bool:
        return member in self.members

    def __len__(self) -> int:
        return len(self.members)


Record = AddressRecord | AliasRecord | GroupRecord


def record_kind(record: Record) -> str:
    if isinstance(record, AddressRecord):
        return "address"
    if isinstance(record, AliasRecord):
        return "alias"
    if isinstance(record, GroupRecord):
        return "group"
    raise TypeError(f"not a directory record: {record!r}")
