"""The Clearinghouse service: many domains, each independently
replicated over a subset of the servers (Section 0.1, [Op]).

A :class:`Clearinghouse` owns a network topology whose sites are the
Clearinghouse servers.  Each *domain* (``org:domain``) is created with
its own replica set and its own distribution-protocol stack — by
default direct mail for timeliness plus push-pull anti-entropy as the
safety net, exactly the configuration the paper found straining the
CIN, so the spatial variants can be dropped in per domain.

Client operations go through a server (the ``via``/``at`` argument,
defaulting to the nearest replica): ``bind`` writes a record,
``unbind`` installs a death certificate, ``lookup`` reads — possibly
stale, per the paper's relaxed consistency — and ``resolve`` follows
alias chains across domains.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.core.store import StoreUpdate
from repro.nameservice.names import DomainId, Name
from repro.nameservice.records import Record
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.base import ExchangeMode, Protocol
from repro.protocols.direct_mail import DirectMailProtocol
from repro.sim.rng import derive_seed
from repro.topology.graph import Topology

ProtocolFactory = Callable[[Sequence[int]], List[Protocol]]


@dataclasses.dataclass(frozen=True, slots=True)
class DomainConfig:
    """How one domain is replicated and kept consistent.

    Exactly one of ``replicas`` (explicit server ids) or
    ``replication`` (a count; servers are sampled deterministically)
    must be given.  ``protocols`` builds the distribution stack for the
    domain's replica set; ``None`` selects the default mail +
    anti-entropy pair.
    """

    replicas: Optional[Sequence[int]] = None
    replication: Optional[int] = None
    protocols: Optional[ProtocolFactory] = None
    mail_loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if (self.replicas is None) == (self.replication is None):
            raise ValueError("give exactly one of replicas or replication")
        if self.replication is not None and self.replication < 1:
            raise ValueError("replication must be >= 1")


class _DomainRuntime:
    """One domain's replica cluster plus bookkeeping."""

    __slots__ = ("domain_id", "cluster", "replicas")

    def __init__(self, domain_id: DomainId, cluster: Cluster, replicas: List[int]):
        self.domain_id = domain_id
        self.cluster = cluster
        self.replicas = replicas


class Clearinghouse:
    """A network of name servers hosting replicated domains."""

    MAX_ALIAS_DEPTH = 8

    def __init__(self, topology: Topology, seed: int = 0):
        topology.validate()
        if topology.site_count < 1:
            raise ValueError("need at least one server")
        self.topology = topology
        self.seed = seed
        self._domains: Dict[DomainId, _DomainRuntime] = {}
        self.cycle = 0

    # ------------------------------------------------------------------
    # Domain administration
    # ------------------------------------------------------------------

    @property
    def servers(self) -> List[int]:
        return self.topology.sites

    def domains(self) -> List[DomainId]:
        return list(self._domains.keys())

    def create_domain(
        self, domain_id: DomainId | str, config: DomainConfig
    ) -> List[int]:
        """Create a domain; returns the chosen replica set."""
        if isinstance(domain_id, str):
            domain_id = DomainId.parse(domain_id)
        if domain_id in self._domains:
            raise ValueError(f"domain {domain_id} already exists")
        if config.replicas is not None:
            replicas = list(config.replicas)
            unknown = set(replicas) - set(self.servers)
            if unknown:
                raise ValueError(f"not servers: {sorted(unknown)}")
            if not replicas:
                raise ValueError("replica set must not be empty")
        else:
            count = min(config.replication, len(self.servers))
            rng = random.Random(derive_seed(self.seed, "replicas", domain_id.key))
            replicas = sorted(rng.sample(self.servers, count))
        cluster = Cluster(
            topology=self.topology,
            participants=replicas,
            seed=derive_seed(self.seed, "domain", domain_id.key),
        )
        # Keep domain clocks aligned with service-level cycles already run.
        for __ in range(self.cycle):
            cluster.run_cycle()
        if config.protocols is not None:
            stack = config.protocols(replicas)
        else:
            stack = self._default_stack(replicas, config.mail_loss_probability)
        for protocol in stack:
            cluster.add_protocol(protocol)
        runtime = _DomainRuntime(domain_id, cluster, replicas)
        self._domains[domain_id] = runtime
        return replicas

    def _default_stack(
        self, replicas: Sequence[int], mail_loss: float
    ) -> List[Protocol]:
        stack: List[Protocol] = []
        if len(replicas) > 1:
            stack.append(DirectMailProtocol(loss_probability=mail_loss))
            stack.append(
                AntiEntropyProtocol(
                    config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL)
                )
            )
        return stack

    def replicas_of(self, domain_id: DomainId) -> List[int]:
        return list(self._runtime(domain_id).replicas)

    def expand_domain(self, domain_id: DomainId | str, server: int) -> None:
        """Add a server to a domain's replica set.

        The new replica starts empty and catches up through the
        domain's distribution protocols — the paper's model for a
        slowly growing replica set.
        """
        if isinstance(domain_id, str):
            domain_id = DomainId.parse(domain_id)
        runtime = self._runtime(domain_id)
        if server in runtime.replicas:
            raise ValueError(f"server {server} already replicates {domain_id}")
        if server not in self.servers:
            raise ValueError(f"not a server: {server}")
        runtime.cluster.add_site(server)
        runtime.replicas.append(server)

    def contract_domain(self, domain_id: DomainId | str, server: int) -> None:
        """Drop a server from a domain's replica set (its copy is
        discarded; the remaining replicas are unaffected)."""
        if isinstance(domain_id, str):
            domain_id = DomainId.parse(domain_id)
        runtime = self._runtime(domain_id)
        if server not in runtime.replicas:
            raise ValueError(f"server {server} does not replicate {domain_id}")
        runtime.cluster.remove_site(server)
        runtime.replicas.remove(server)

    def _runtime(self, domain_id: DomainId) -> _DomainRuntime:
        runtime = self._domains.get(domain_id)
        if runtime is None:
            raise KeyError(f"no such domain: {domain_id}")
        return runtime

    # ------------------------------------------------------------------
    # Server selection
    # ------------------------------------------------------------------

    def nearest_replica(self, domain_id: DomainId, near: Optional[int] = None) -> int:
        """The replica closest to ``near`` (ties toward smaller id);
        the first replica when no position or no links are given."""
        replicas = self._runtime(domain_id).replicas
        if near is None or self.topology.edge_count == 0:
            return replicas[0]
        if near in replicas:
            return near
        return min(replicas, key=lambda s: (self.topology.distance(near, s), s))

    def _entry_server(
        self, domain_id: DomainId, via: Optional[int]
    ) -> int:
        replicas = self._runtime(domain_id).replicas
        if via is None:
            return replicas[0]
        if via in replicas:
            return via
        # The client's home server does not hold this domain: the
        # operation is forwarded to the nearest replica.
        return self.nearest_replica(domain_id, near=via)

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------

    def bind(
        self, name: Name | str, record: Record, via: Optional[int] = None
    ) -> StoreUpdate:
        """Write (or overwrite) ``name -> record`` at a server."""
        name = self._as_name(name)
        runtime = self._runtime(name.domain_id)
        server = self._entry_server(name.domain_id, via)
        return runtime.cluster.inject_update(server, name.key[2], record)

    def unbind(
        self,
        name: Name | str,
        via: Optional[int] = None,
        retention_count: int = 0,
    ) -> StoreUpdate:
        """Delete a binding: installs a death certificate that spreads
        like any update (Section 2)."""
        name = self._as_name(name)
        runtime = self._runtime(name.domain_id)
        server = self._entry_server(name.domain_id, via)
        return runtime.cluster.inject_delete(
            server, name.key[2], retention_count=retention_count
        )

    def lookup(self, name: Name | str, at: Optional[int] = None) -> Optional[Record]:
        """Read a binding at one server — possibly stale, never blocking."""
        name = self._as_name(name)
        runtime = self._runtime(name.domain_id)
        server = self._entry_server(name.domain_id, at)
        return runtime.cluster.sites[server].store.get(name.key[2])

    def resolve(self, name: Name | str, at: Optional[int] = None) -> Optional[Record]:
        """Lookup following alias chains (bounded depth, cross-domain)."""
        from repro.nameservice.records import AliasRecord

        name = self._as_name(name)
        for __ in range(self.MAX_ALIAS_DEPTH):
            record = self.lookup(name, at=at)
            if not isinstance(record, AliasRecord):
                return record
            name = Name.parse(record.target)
        raise ValueError(f"alias chain too deep resolving {name}")

    def list_domain(self, domain_id: DomainId | str, at: Optional[int] = None):
        """All visible bindings of a domain at one server."""
        if isinstance(domain_id, str):
            domain_id = DomainId.parse(domain_id)
        runtime = self._runtime(domain_id)
        server = self._entry_server(domain_id, at)
        store = runtime.cluster.sites[server].store
        return {local: record for local, record in store.visible_items()}

    def _as_name(self, name: Name | str) -> Name:
        return Name.parse(name) if isinstance(name, str) else name

    # ------------------------------------------------------------------
    # Time and consistency
    # ------------------------------------------------------------------

    def run_cycle(self) -> None:
        """Advance every domain by one protocol cycle."""
        self.cycle += 1
        for runtime in self._domains.values():
            runtime.cluster.run_cycle()

    def run_cycles(self, count: int) -> None:
        for __ in range(count):
            self.run_cycle()

    def run_until_consistent(self, max_cycles: int = 1000) -> int:
        """Run until every domain's replicas agree; returns cycles run."""
        start = self.cycle
        while not self.consistent():
            if self.cycle - start >= max_cycles:
                raise RuntimeError(
                    f"domains did not converge within {max_cycles} cycles"
                )
            self.run_cycle()
        return self.cycle - start

    def consistent(self, domain_id: Optional[DomainId] = None) -> bool:
        if domain_id is not None:
            return self._runtime(domain_id).cluster.converged()
        return all(r.cluster.converged() for r in self._domains.values())

    def domain_cluster(self, domain_id: DomainId | str) -> Cluster:
        """The underlying cluster — for attaching extra protocols,
        failure injection, or traffic inspection in experiments."""
        if isinstance(domain_id, str):
            domain_id = DomainId.parse(domain_id)
        return self._runtime(domain_id).cluster

    def total_traffic(self) -> Dict[str, float]:
        """Aggregate compare/update link traffic across all domains."""
        compare = 0.0
        update = 0.0
        for runtime in self._domains.values():
            compare += runtime.cluster.traffic.compare.total
            update += runtime.cluster.traffic.update.total
        return {"compare": compare, "update": update}
