"""The live gossip runtime: the paper's protocols over real sockets.

Everything else in this repository runs inside the single-process
deterministic simulator (``repro.sim``).  This package runs the *same*
protocol logic — anti-entropy difference resolution via
:class:`repro.protocols.exchange.ExchangeSession`, rumor mongering's
feedback counters, direct mail — between asyncio TCP peers:

* :mod:`repro.net.wire` — length-prefixed JSON message framing;
* :mod:`repro.net.membership` — the static peer roster (JSON/TOML);
* :mod:`repro.net.peer` — outbound connections with retry/backoff;
* :mod:`repro.net.node` — the :class:`GossipNode` runtime;
* :mod:`repro.net.runner` — N-node localhost clusters and the
  ``python -m repro live-demo`` measurement harness.
"""

from repro.net.membership import Membership, MembershipError, PeerInfo
from repro.net.node import GossipNode, NodeConfig
from repro.net.peer import InFlightBudget, Peer, PeerError, RetryPolicy
from repro.net.wire import Message, MessageType, WireError

__all__ = [
    "GossipNode",
    "InFlightBudget",
    "Membership",
    "MembershipError",
    "Message",
    "MessageType",
    "NodeConfig",
    "Peer",
    "PeerError",
    "PeerInfo",
    "RetryPolicy",
    "WireError",
]
