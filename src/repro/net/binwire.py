"""The v4 binary wire codec: MessagePack bodies behind a tiny prelude.

JSON framing (:mod:`repro.net.wire`, v1-v3) spends most of a hot
frame's encode/decode budget on text: float formatting, string
escaping, and number parsing.  Wire version 4 keeps the 4-byte length
prefix and the message model exactly as they are and swaps the body
for a binary encoding::

    byte 0      0xC1        (magic; reserved-never-used in MessagePack,
                             and distinct from ``{`` = 0x7B, so one byte
                             discriminates binary from JSON bodies)
    byte 1      version     (the frame's wire version, >= 4)
    byte 2      max         (the sender's advertised version ceiling)
    byte 3      type code   (:data:`TYPE_CODES`)
    bytes 4+    MessagePack ``[sender, payload]``

Values are MessagePack-encoded with one extension: integers outside the
64-bit range — the store's 128-bit checksums and checksum-tree nodes —
travel as ext type :data:`EXT_BIGINT` holding the minimal big-endian
two's-complement bytes, so they round-trip exactly like JSON's
arbitrary-precision ints.

The packer/unpacker here is a self-contained pure-python implementation
of the MessagePack subset the payloads need (nil, bool, int, float,
str, bytes, array, map, ext).  When the real ``msgpack`` library is
importable — it is optional, exactly like numpy for the batched
simulator core — it is used for the heavy lifting instead; set
``REPRO_PURE_PYTHON=1`` (:mod:`repro.sim.arrays`) to force the pure
path.  Both produce spec-valid MessagePack and accept each other's
output.

Encoding reuses one per-encoder ``bytearray`` so hot frames (PUSH
offers, RUMOR batches, MAIL, TREE frontiers) do not reallocate a
buffer per frame; a busy flag drops to a fresh buffer on re-entrant
use instead of corrupting the shared one.
"""

from __future__ import annotations

import struct
from typing import Any, List, Tuple

from repro.sim.arrays import pure_python_forced

#: The first body byte of every v4 binary frame.
BINARY_MAGIC = 0xC1

#: MessagePack extension type carrying an arbitrary-precision integer
#: as minimal big-endian two's-complement bytes.
EXT_BIGINT = 1

_PRELUDE = struct.Struct(">BBBB")
PRELUDE_BYTES = _PRELUDE.size

_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_I8 = struct.Struct(">b")
_I16 = struct.Struct(">h")
_I32 = struct.Struct(">i")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")


class BinWireError(Exception):
    """A binary body could not be packed or unpacked."""


def msgpack_available() -> bool:
    try:
        import msgpack  # noqa: F401
    except ImportError:
        return False
    return True


def _use_msgpack() -> bool:
    return not pure_python_forced() and msgpack_available()


# ----------------------------------------------------------------------
# Big-integer extension
# ----------------------------------------------------------------------


def _bigint_to_bytes(value: int) -> bytes:
    return value.to_bytes((value.bit_length() + 8) // 8 or 1, "big", signed=True)


def _bigint_from_bytes(data: bytes) -> int:
    if not data:
        raise BinWireError("empty bigint extension payload")
    return int.from_bytes(data, "big", signed=True)


# ----------------------------------------------------------------------
# Pure-python packer
# ----------------------------------------------------------------------


def _pack_into(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(0xC0)
    elif value is True:
        out.append(0xC3)
    elif value is False:
        out.append(0xC2)
    elif type(value) is int:
        _pack_int(out, value)
    elif type(value) is float:
        out.append(0xCB)
        out += _F64.pack(value)
    elif type(value) is str:
        _pack_str(out, value)
    elif type(value) is dict:
        _pack_map(out, value)
    elif type(value) in (list, tuple):
        _pack_array(out, value)
    elif isinstance(value, (bytes, bytearray)):
        _pack_bin(out, bytes(value))
    elif isinstance(value, int):  # int subclasses (enums); bool is the
        # True/False singletons, always caught above
        _pack_int(out, int(value))
    elif isinstance(value, float):
        out.append(0xCB)
        out += _F64.pack(float(value))
    elif isinstance(value, str):
        _pack_str(out, str(value))
    elif isinstance(value, dict):
        _pack_map(out, value)
    elif isinstance(value, (list, tuple)):
        _pack_array(out, value)
    else:
        raise BinWireError(f"cannot pack {type(value).__name__} value {value!r}")


def _pack_int(out: bytearray, value: int) -> None:
    if 0 <= value <= 0x7F:
        out.append(value)
    elif -32 <= value < 0:
        out.append(value & 0xFF)
    elif 0 < value:
        if value <= 0xFF:
            out.append(0xCC)
            out.append(value)
        elif value <= 0xFFFF:
            out.append(0xCD)
            out += _U16.pack(value)
        elif value <= 0xFFFFFFFF:
            out.append(0xCE)
            out += _U32.pack(value)
        elif value <= 0xFFFFFFFFFFFFFFFF:
            out.append(0xCF)
            out += _U64.pack(value)
        else:
            _pack_ext(out, EXT_BIGINT, _bigint_to_bytes(value))
    else:
        if value >= -0x80:
            out.append(0xD0)
            out += _I8.pack(value)
        elif value >= -0x8000:
            out.append(0xD1)
            out += _I16.pack(value)
        elif value >= -0x80000000:
            out.append(0xD2)
            out += _I32.pack(value)
        elif value >= -0x8000000000000000:
            out.append(0xD3)
            out += _I64.pack(value)
        else:
            _pack_ext(out, EXT_BIGINT, _bigint_to_bytes(value))


def _pack_str(out: bytearray, value: str) -> None:
    data = value.encode("utf-8")
    size = len(data)
    if size <= 0x1F:
        out.append(0xA0 | size)
    elif size <= 0xFF:
        out.append(0xD9)
        out.append(size)
    elif size <= 0xFFFF:
        out.append(0xDA)
        out += _U16.pack(size)
    else:
        out.append(0xDB)
        out += _U32.pack(size)
    out += data


def _pack_bin(out: bytearray, data: bytes) -> None:
    size = len(data)
    if size <= 0xFF:
        out.append(0xC4)
        out.append(size)
    elif size <= 0xFFFF:
        out.append(0xC5)
        out += _U16.pack(size)
    else:
        out.append(0xC6)
        out += _U32.pack(size)
    out += data


def _pack_array(out: bytearray, value) -> None:
    size = len(value)
    if size <= 0x0F:
        out.append(0x90 | size)
    elif size <= 0xFFFF:
        out.append(0xDC)
        out += _U16.pack(size)
    else:
        out.append(0xDD)
        out += _U32.pack(size)
    for item in value:
        _pack_into(out, item)


def _pack_map(out: bytearray, value: dict) -> None:
    size = len(value)
    if size <= 0x0F:
        out.append(0x80 | size)
    elif size <= 0xFFFF:
        out.append(0xDE)
        out += _U16.pack(size)
    else:
        out.append(0xDF)
        out += _U32.pack(size)
    for key, item in value.items():
        _pack_into(out, key)
        _pack_into(out, item)


def _pack_ext(out: bytearray, code: int, data: bytes) -> None:
    size = len(data)
    if size == 1:
        out.append(0xD4)
    elif size == 2:
        out.append(0xD5)
    elif size == 4:
        out.append(0xD6)
    elif size == 8:
        out.append(0xD7)
    elif size == 16:
        out.append(0xD8)
    elif size <= 0xFF:
        out.append(0xC7)
        out.append(size)
    elif size <= 0xFFFF:
        out.append(0xC8)
        out += _U16.pack(size)
    else:
        out.append(0xC9)
        out += _U32.pack(size)
    out.append(code & 0xFF)
    out += data


# ----------------------------------------------------------------------
# Pure-python unpacker
# ----------------------------------------------------------------------


class _Unpacker:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def _take(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise BinWireError("truncated MessagePack data")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def _guard_count(self, count: int) -> int:
        # Every element needs at least one byte; a hostile count dies
        # here instead of allocating a huge container.
        if count > len(self.data) - self.pos:
            raise BinWireError("MessagePack container count exceeds frame size")
        return count

    def unpack(self) -> Any:
        data = self.data
        if self.pos >= len(data):
            raise BinWireError("truncated MessagePack data")
        marker = data[self.pos]
        self.pos += 1
        if marker <= 0x7F:
            return marker
        if marker >= 0xE0:
            return marker - 0x100
        if 0x80 <= marker <= 0x8F:
            return self._unpack_map(marker & 0x0F)
        if 0x90 <= marker <= 0x9F:
            return self._unpack_array(marker & 0x0F)
        if 0xA0 <= marker <= 0xBF:
            return self._unpack_str(marker & 0x1F)
        handler = _MARKERS.get(marker)
        if handler is None:
            raise BinWireError(f"unsupported MessagePack marker 0x{marker:02x}")
        return handler(self)

    def _unpack_str(self, size: int) -> str:
        try:
            return self._take(size).decode("utf-8")
        except UnicodeDecodeError as error:
            raise BinWireError(f"invalid UTF-8 in string: {error}") from None

    def _unpack_array(self, count: int) -> List[Any]:
        self._guard_count(count)
        return [self.unpack() for __ in range(count)]

    def _unpack_map(self, count: int) -> dict:
        self._guard_count(count)
        result = {}
        for __ in range(count):
            key = self.unpack()
            result[key] = self.unpack()
        return result

    def _unpack_ext(self, size: int) -> Any:
        code = self._take(1)[0]
        payload = self._take(size)
        if code == EXT_BIGINT:
            return _bigint_from_bytes(payload)
        raise BinWireError(f"unknown extension type {code}")


_MARKERS = {
    0xC0: lambda u: None,
    0xC2: lambda u: False,
    0xC3: lambda u: True,
    0xC4: lambda u: bytes(u._take(u._take(1)[0])),
    0xC5: lambda u: bytes(u._take(_U16.unpack(u._take(2))[0])),
    0xC6: lambda u: bytes(u._take(_U32.unpack(u._take(4))[0])),
    0xC7: lambda u: u._unpack_ext(u._take(1)[0]),
    0xC8: lambda u: u._unpack_ext(_U16.unpack(u._take(2))[0]),
    0xC9: lambda u: u._unpack_ext(_U32.unpack(u._take(4))[0]),
    0xCA: lambda u: struct.unpack(">f", u._take(4))[0],
    0xCB: lambda u: _F64.unpack(u._take(8))[0],
    0xCC: lambda u: u._take(1)[0],
    0xCD: lambda u: _U16.unpack(u._take(2))[0],
    0xCE: lambda u: _U32.unpack(u._take(4))[0],
    0xCF: lambda u: _U64.unpack(u._take(8))[0],
    0xD0: lambda u: _I8.unpack(u._take(1))[0],
    0xD1: lambda u: _I16.unpack(u._take(2))[0],
    0xD2: lambda u: _I32.unpack(u._take(4))[0],
    0xD3: lambda u: _I64.unpack(u._take(8))[0],
    0xD4: lambda u: u._unpack_ext(1),
    0xD5: lambda u: u._unpack_ext(2),
    0xD6: lambda u: u._unpack_ext(4),
    0xD7: lambda u: u._unpack_ext(8),
    0xD8: lambda u: u._unpack_ext(16),
    0xD9: lambda u: u._unpack_str(u._take(1)[0]),
    0xDA: lambda u: u._unpack_str(_U16.unpack(u._take(2))[0]),
    0xDB: lambda u: u._unpack_str(_U32.unpack(u._take(4))[0]),
    0xDC: lambda u: u._unpack_array(_U16.unpack(u._take(2))[0]),
    0xDD: lambda u: u._unpack_array(_U32.unpack(u._take(4))[0]),
    0xDE: lambda u: u._unpack_map(_U16.unpack(u._take(2))[0]),
    0xDF: lambda u: u._unpack_map(_U32.unpack(u._take(4))[0]),
}


# ----------------------------------------------------------------------
# Public pack/unpack (accelerated when msgpack is importable)
# ----------------------------------------------------------------------


def pack_value(value: Any) -> bytes:
    """MessagePack-encode one value (bigints via :data:`EXT_BIGINT`)."""
    if _use_msgpack():
        import msgpack

        try:
            return msgpack.packb(value, use_bin_type=True, default=_msgpack_default)
        except OverflowError:
            # msgpack-python rejects >64-bit ints before consulting
            # ``default``; the pure packer handles them via the ext type.
            pass
        except (TypeError, ValueError) as error:
            raise BinWireError(str(error)) from None
    out = bytearray()
    _pack_into(out, value)
    return bytes(out)


def unpack_value(data: bytes) -> Any:
    """Decode one MessagePack value; trailing bytes are an error."""
    if _use_msgpack():
        import msgpack

        try:
            return msgpack.unpackb(
                data, raw=False, strict_map_key=False, ext_hook=_msgpack_ext_hook
            )
        except Exception as error:  # noqa: BLE001 - msgpack's zoo of errors
            raise BinWireError(f"bad MessagePack body: {error}") from None
    unpacker = _Unpacker(data)
    value = unpacker.unpack()
    if unpacker.pos != len(data):
        raise BinWireError(
            f"{len(data) - unpacker.pos} trailing bytes after MessagePack value"
        )
    return value


def _msgpack_default(value: Any) -> Any:
    import msgpack

    if isinstance(value, int):
        return msgpack.ExtType(EXT_BIGINT, _bigint_to_bytes(value))
    if isinstance(value, tuple):
        return list(value)
    raise TypeError(f"cannot pack {type(value).__name__}")


def _msgpack_ext_hook(code: int, data: bytes) -> Any:
    if code == EXT_BIGINT:
        return _bigint_from_bytes(data)
    raise BinWireError(f"unknown extension type {code}")


# ----------------------------------------------------------------------
# Frame bodies
# ----------------------------------------------------------------------


class FrameEncoder:
    """Builds v4 binary bodies into one reusable buffer.

    The per-frame allocation pattern matters on the live runtime's hot
    frames (every anti-entropy round trip encodes a PUSH offer and a
    reply); reusing a single ``bytearray`` keeps the encode path to one
    final ``bytes`` copy.  A busy flag guards re-entrancy (an encode
    triggered from within an encode — e.g. by a logging hook — gets a
    private buffer instead of corrupting the shared one).
    """

    __slots__ = ("_buffer", "_busy")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._busy = False

    def encode_body(
        self,
        version: int,
        max_version: int,
        type_code: int,
        sender: int,
        payload: dict,
    ) -> bytes:
        if self._busy:
            out = bytearray()
        else:
            out = self._buffer
            out.clear()
            self._busy = True
        try:
            out += _PRELUDE.pack(BINARY_MAGIC, version, max_version, type_code)
            if _use_msgpack():
                out += pack_value([sender, payload])
            else:
                _pack_into(out, [sender, payload])
            return bytes(out)
        finally:
            if out is self._buffer:
                self._busy = False


_SHARED_ENCODER = FrameEncoder()


def encode_binary_body(
    version: int, max_version: int, type_code: int, sender: int, payload: dict
) -> bytes:
    """One v4 frame body (everything after the length prefix)."""
    return _SHARED_ENCODER.encode_body(
        version, max_version, type_code, sender, payload
    )


def decode_binary_body(body: bytes) -> Tuple[int, int, int, int, dict]:
    """Split a v4 body into (version, max, type code, sender, payload).

    The caller (:func:`repro.net.wire.decode_body`) validates version
    and type against its tables; malformed MessagePack raises
    :class:`BinWireError` here.
    """
    if len(body) < PRELUDE_BYTES + 1:
        raise BinWireError(f"binary body of {len(body)} bytes is too short")
    magic, version, max_version, type_code = _PRELUDE.unpack_from(body)
    if magic != BINARY_MAGIC:
        raise BinWireError(f"bad binary magic 0x{magic:02x}")
    value = unpack_value(body[PRELUDE_BYTES:])
    if (
        not isinstance(value, list)
        or len(value) != 2
        or not isinstance(value[0], int)
        or isinstance(value[0], bool)
    ):
        raise BinWireError("binary body must decode to [sender, payload]")
    sender, payload = value
    if not isinstance(payload, dict):
        raise BinWireError(
            f"payload must be a map, got {type(payload).__name__}"
        )
    return version, max_version, type_code, sender, payload
