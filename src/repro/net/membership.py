"""The static peer roster a gossip node is configured with.

The paper's Clearinghouse assumed every site knows the (slowly
changing) replica set; the live runtime mirrors that with a roster
loaded from a JSON or TOML config file.  Each node entry carries the
node/site id, the TCP address, and a scalar *position* from which
pairwise topology distances are derived — enough to drive the
Section 3 spatial partner distributions without shipping a full graph.

JSON::

    {"version": 1,
     "nodes": [{"id": 0, "host": "127.0.0.1", "port": 9100, "position": 0.0},
               {"id": 1, "host": "127.0.0.1", "port": 9101, "position": 1.0}]}

TOML::

    version = 1
    [[nodes]]
    id = 0
    host = "127.0.0.1"
    port = 9100
    position = 0.0

Positions default to the node's index, which lays the cluster out on a
line — the topology of the paper's Section 3.1 analysis.
"""

from __future__ import annotations

import bisect
import dataclasses
import json
import pathlib
from typing import Any, Dict, Iterator, List, Sequence, Tuple

from repro.topology.spatial import (
    PartnerSelector,
    SortedListSelector,
    UniformSelector,
)

ROSTER_VERSION = 1


class MembershipError(ValueError):
    """A roster config is malformed or inconsistent."""


@dataclasses.dataclass(frozen=True, slots=True)
class PeerInfo:
    """One node's entry in the roster."""

    node_id: int
    host: str
    port: int
    position: float = 0.0

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def __str__(self) -> str:
        return f"node {self.node_id} @ {self.host}:{self.port}"


class Membership:
    """An immutable roster of :class:`PeerInfo` entries."""

    def __init__(self, peers: Sequence[PeerInfo]):
        if len(peers) < 1:
            raise MembershipError("a roster needs at least one node")
        self._peers: Dict[int, PeerInfo] = {}
        for peer in peers:
            if peer.node_id < 0:
                raise MembershipError(f"negative node id: {peer.node_id}")
            if peer.node_id in self._peers:
                raise MembershipError(f"duplicate node id: {peer.node_id}")
            self._peers[peer.node_id] = peer
        self._ordered = sorted(self._peers.values(), key=lambda p: p.node_id)

    # -- basic access ------------------------------------------------------

    @property
    def node_ids(self) -> List[int]:
        return [peer.node_id for peer in self._ordered]

    def __len__(self) -> int:
        return len(self._ordered)

    def __iter__(self) -> Iterator[PeerInfo]:
        return iter(self._ordered)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._peers

    def get(self, node_id: int) -> PeerInfo:
        try:
            return self._peers[node_id]
        except KeyError:
            raise MembershipError(f"node {node_id} is not in the roster") from None

    def others(self, node_id: int) -> List[PeerInfo]:
        self.get(node_id)  # validate
        return [peer for peer in self._ordered if peer.node_id != node_id]

    def distance(self, a: int, b: int) -> float:
        """Topology distance between two roster nodes.

        Derived from the scalar positions; distinct nodes are never
        closer than 1 (a distance of 0 would blow up the ``d^-a``
        weights).
        """
        if a == b:
            return 0.0
        gap = abs(self.get(a).position - self.get(b).position)
        return max(gap, 1.0)

    # -- selectors ---------------------------------------------------------

    def selector(self, spec: str = "uniform") -> PartnerSelector:
        """Build a partner selector over this roster.

        ``"uniform"`` gives the paper's baseline; ``"spatial:<a>"``
        (e.g. ``"spatial:2.0"``) gives the sorted-list spatial
        distribution of equation (3.1.1) over the roster's positions.
        """
        if len(self) < 2:
            raise MembershipError("partner selection needs at least two nodes")
        if spec == "uniform":
            return UniformSelector(self.node_ids)
        if spec.startswith("spatial:"):
            try:
                a = float(spec.split(":", 1)[1])
            except ValueError:
                raise MembershipError(f"bad spatial exponent in {spec!r}") from None
            return SortedListSelector(MembershipDistances(self), a=a)
        raise MembershipError(f"unknown selector spec {spec!r}")

    # -- serialization -----------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        return {
            "version": ROSTER_VERSION,
            "nodes": [
                {"id": p.node_id, "host": p.host, "port": p.port, "position": p.position}
                for p in self._ordered
            ],
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "Membership":
        if not isinstance(payload, dict):
            raise MembershipError("roster config must be an object")
        version = payload.get("version")
        if version != ROSTER_VERSION:
            raise MembershipError(f"unsupported roster version: {version!r}")
        nodes = payload.get("nodes")
        if not isinstance(nodes, list) or not nodes:
            raise MembershipError("roster config needs a non-empty 'nodes' array")
        peers = []
        for index, node in enumerate(nodes):
            if not isinstance(node, dict):
                raise MembershipError(f"node entry {index} must be an object")
            try:
                node_id = node["id"]
                host = node["host"]
                port = node["port"]
            except KeyError as error:
                raise MembershipError(
                    f"node entry {index} is missing field {error.args[0]!r}"
                ) from None
            position = node.get("position", float(index))
            if not isinstance(node_id, int) or isinstance(node_id, bool):
                raise MembershipError(f"node entry {index}: id must be an integer")
            if not isinstance(host, str) or not host:
                raise MembershipError(f"node entry {index}: host must be a string")
            if not isinstance(port, int) or not 0 < port < 65536:
                raise MembershipError(f"node entry {index}: bad port {port!r}")
            if not isinstance(position, (int, float)) or isinstance(position, bool):
                raise MembershipError(f"node entry {index}: position must be a number")
            peers.append(
                PeerInfo(node_id=node_id, host=host, port=port, position=float(position))
            )
        return cls(peers)

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "Membership":
        """Load a roster from a ``.json`` or ``.toml`` file."""
        path = pathlib.Path(path)
        try:
            raw = path.read_bytes()
        except OSError as error:
            raise MembershipError(f"cannot read roster {path}: {error}") from None
        if path.suffix == ".toml":
            import tomllib

            try:
                payload = tomllib.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, tomllib.TOMLDecodeError) as error:
                raise MembershipError(f"bad TOML in {path}: {error}") from None
        else:
            try:
                payload = json.loads(raw)
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise MembershipError(f"bad JSON in {path}: {error}") from None
        return cls.from_payload(payload)

    def dump(self, path: str | pathlib.Path) -> None:
        pathlib.Path(path).write_text(json.dumps(self.to_payload(), indent=2) + "\n")

    @classmethod
    def localhost(cls, ports: Sequence[int], host: str = "127.0.0.1") -> "Membership":
        """A roster of ``len(ports)`` nodes on one machine, laid out on a
        line (node ``i`` at position ``i``)."""
        return cls(
            [
                PeerInfo(node_id=i, host=host, port=port, position=float(i))
                for i, port in enumerate(ports)
            ]
        )


class MembershipDistances:
    """Adapter exposing roster distances through the interface the
    spatial selectors expect (``others_by_distance`` / ``q``),
    normally provided by :class:`repro.topology.distance.SiteDistances`."""

    def __init__(self, membership: Membership):
        self._membership = membership
        self.sites = membership.node_ids
        self._cache: Dict[int, Tuple[List[int], List[float]]] = {}

    def _sorted_view(self, s: int) -> Tuple[List[int], List[float]]:
        cached = self._cache.get(s)
        if cached is not None:
            return cached
        pairs = sorted(
            (self._membership.distance(s, other), other)
            for other in self.sites
            if other != s
        )
        view = ([site for __, site in pairs], [d for d, __ in pairs])
        self._cache[s] = view
        return view

    def others_by_distance(self, s: int) -> Tuple[List[int], List[float]]:
        return self._sorted_view(s)

    def q(self, s: int, d: float) -> int:
        """``Q_s(d)``: roster nodes within distance ``d`` of ``s``."""
        __, dists = self._sorted_view(s)
        return bisect.bisect_right(dists, d)
