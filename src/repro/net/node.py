"""The live gossip node: the paper's protocols over asyncio TCP.

A :class:`GossipNode` owns one :class:`~repro.core.store.ReplicaStore`
(timestamped by wall-clock time) and runs, concurrently:

* an **inbound server** answering PUSH / PULL_REQUEST / CHECKSUM /
  RUMOR / MAIL frames from peers;
* a periodic **anti-entropy loop** — pick a partner (uniform or a
  Section 3 spatial distribution over the roster), resolve differences
  through the same :class:`~repro.protocols.exchange.ExchangeSession`
  objects the simulator uses, with either the full-compare or the
  checksum-plus-recent-updates strategy of Section 1.3;
* a faster **rumor loop** — hot rumors are pushed to random partners,
  and the ACK's was-news feedback drives the Section 1.4 counter: a
  rumor goes cold after ``k`` unnecessary pushes.

Busy-server behavior mirrors :mod:`repro.sim.transport`: a node refuses
a conversation when ``connection_limit`` inbound conversations are
already in flight (the refusal is an ``ACK {"rejected": true}``), and a
refused initiator *hunts* — redraws partners up to ``hunt_limit`` more
times.

Nothing here re-implements merge semantics: entries are applied through
``ReplicaStore.apply_entry`` via ``ExchangeSession``, so the live
runtime and the simulator cannot drift apart.
"""

from __future__ import annotations

import asyncio
import dataclasses
import random
import socket
import time
from typing import Any, Dict, Hashable, List, Optional

from repro.core.serialize import (
    SerializeError,
    encode_timestamp,
    encode_updates,
)
from repro.core.store import ReplicaStore, StoreUpdate
from repro.core.timestamps import SimClock
from repro.net.membership import Membership, PeerInfo
from repro.net.peer import InFlightBudget, Peer, PeerError, RetryPolicy
from repro.net.wire import (
    MAX_FRAME_BYTES,
    Message,
    MessageType,
    WireError,
    encode_message,
    payload_updates,
    read_message,
)
from repro.protocols.base import ExchangeMode
from repro.protocols.exchange import ExchangeSession

_MODES_BY_VALUE = {mode.value: mode for mode in ExchangeMode}


@dataclasses.dataclass(frozen=True, slots=True)
class NodeConfig:
    """Tunables for one gossip node.

    Intervals are seconds of wall-clock time; ``tau`` (the recent-update
    window for the checksum strategy) must comfortably exceed the
    expected update-distribution time, exactly as in Section 1.3.
    """

    anti_entropy_interval: float = 0.2
    rumor_interval: float = 0.05
    mode: ExchangeMode = ExchangeMode.PUSH_PULL
    strategy: str = "full"            # "full" | "checksum"
    tau: float = 30.0
    rumor_k: int = 2
    connection_limit: int = 8         # inbound conversations in flight
    hunt_limit: int = 2               # extra partner draws after a rejection
    in_flight_limit: int = 4          # outbound conversations in flight
    selector: str = "uniform"         # "uniform" | "spatial:<a>"
    retry: RetryPolicy = RetryPolicy()
    max_frame: int = MAX_FRAME_BYTES

    def __post_init__(self) -> None:
        if self.anti_entropy_interval <= 0 or self.rumor_interval <= 0:
            raise ValueError("intervals must be positive")
        if self.strategy not in ("full", "checksum"):
            raise ValueError(f"unknown exchange strategy {self.strategy!r}")
        if self.tau <= 0:
            raise ValueError("tau must be positive")
        if self.rumor_k < 1:
            raise ValueError("rumor_k must be >= 1")
        if self.connection_limit < 1:
            raise ValueError("connection_limit must be >= 1")
        if self.hunt_limit < 0:
            raise ValueError("hunt_limit must be >= 0")


@dataclasses.dataclass(slots=True)
class NodeStats:
    """Counters a node keeps about its own traffic.

    ``received`` maps each key to the wall-clock moment this node first
    learned news about it — the per-site receipt times from which the
    demo harness computes the paper's ``t_ave``/``t_last`` delays.
    """

    frames_sent: Dict[str, int] = dataclasses.field(default_factory=dict)
    frames_received: Dict[str, int] = dataclasses.field(default_factory=dict)
    exchanges: int = 0               # anti-entropy conversations initiated
    checksum_successes: int = 0      # exchanges settled without full compare
    updates_shipped: int = 0         # entries sent to peers
    updates_absorbed: int = 0        # news applied from peers
    rumors_started: int = 0
    rejections_in: int = 0           # conversations this node refused
    rejections_out: int = 0          # refusals this node received
    hunts: int = 0                   # extra partner draws after refusals
    peer_failures: int = 0           # conversations dead after all retries
    received: Dict[Hashable, float] = dataclasses.field(default_factory=dict)

    def count_sent(self, kind: MessageType, n: int = 1) -> None:
        self.frames_sent[kind.value] = self.frames_sent.get(kind.value, 0) + n

    def count_received(self, kind: MessageType, n: int = 1) -> None:
        self.frames_received[kind.value] = self.frames_received.get(kind.value, 0) + n

    @property
    def frames_sent_total(self) -> int:
        return sum(self.frames_sent.values())

    @property
    def frames_received_total(self) -> int:
        return sum(self.frames_received.values())


@dataclasses.dataclass(slots=True)
class _HotRumor:
    """Per-node state for one hot rumor (feedback + counter, Section 1.4)."""

    update: StoreUpdate
    counter: int = 0


class GossipNode:
    """One networked replica: store + server + gossip loops."""

    def __init__(
        self,
        node_id: int,
        membership: Membership,
        config: NodeConfig = NodeConfig(),
        seed: Optional[int] = None,
    ):
        self.info: PeerInfo = membership.get(node_id)
        self.node_id = node_id
        self.membership = membership
        self.config = config
        self.store = ReplicaStore(
            site_id=node_id, clock=SimClock(site=node_id, time_source=time.time)
        )
        self.peers: Dict[int, Peer] = {
            peer.node_id: Peer(peer, config.retry)
            for peer in membership.others(node_id)
        }
        self._selector = membership.selector(config.selector) if len(membership) > 1 else None
        self._rng = random.Random(seed if seed is not None else node_id)
        self._budget = InFlightBudget(config.in_flight_limit)
        self._hot: Dict[Hashable, _HotRumor] = {}
        self._inbound_active = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._tasks: List[asyncio.Task] = []
        self.stats = NodeStats()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self, sock: Optional[socket.socket] = None) -> None:
        """Bind the server (on the roster address, or a pre-bound
        socket) and start the gossip loops."""
        if self._server is not None:
            raise RuntimeError(f"node {self.node_id} is already running")
        if sock is not None:
            self._server = await asyncio.start_server(self._serve, sock=sock)
        else:
            self._server = await asyncio.start_server(
                self._serve, self.info.host, self.info.port
            )
        self._tasks = [
            asyncio.create_task(
                self._periodic(self.config.anti_entropy_interval, self.run_anti_entropy_once),
                name=f"node{self.node_id}-anti-entropy",
            ),
            asyncio.create_task(
                self._periodic(self.config.rumor_interval, self.run_rumor_once),
                name=f"node{self.node_id}-rumor",
            ),
        ]

    async def stop(self) -> None:
        """Stop loops, close the server and all outbound connections."""
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks = []
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for peer in self.peers.values():
            await peer.close()

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def port(self) -> int:
        """The actually bound port (useful with ephemeral sockets)."""
        if self._server is None or not self._server.sockets:
            return self.info.port
        return self._server.sockets[0].getsockname()[1]

    async def _periodic(self, interval: float, step) -> None:
        while True:
            # Jitter desynchronizes the loops across nodes, like the
            # independent per-site timers of the paper's model.
            await asyncio.sleep(interval * (0.5 + self._rng.random()))
            try:
                await step()
            except asyncio.CancelledError:
                raise
            except Exception:
                # A single failed conversation must never kill the loop;
                # failures are already counted in stats.
                pass

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------

    def inject(self, key: Hashable, value: Any) -> StoreUpdate:
        """A client write at this node; becomes a hot rumor."""
        update = self.store.update(key, value)
        self._note_news([update])
        self._make_hot(update)
        return update

    def delete(self, key: Hashable) -> StoreUpdate:
        update = self.store.delete(key)
        self._note_news([update])
        self._make_hot(update)
        return update

    # ------------------------------------------------------------------
    # Outbound: anti-entropy
    # ------------------------------------------------------------------

    async def run_anti_entropy_once(self) -> bool:
        """One anti-entropy round: pick a partner (hunting past
        refusals) and resolve differences.  True when an exchange ran."""
        if self._selector is None:
            return False
        for attempt in range(self.config.hunt_limit + 1):
            if attempt:
                self.stats.hunts += 1
            partner_id = self._selector.choose(self.node_id, self._rng)
            peer = self.peers[partner_id]
            try:
                async with self._budget:
                    accepted = await self._anti_entropy_with(peer)
            except (PeerError, WireError):
                self.stats.peer_failures += 1
                continue  # partner down: hunt for another, like a busy site
            if accepted:
                self.stats.exchanges += 1
                return True
            self.stats.rejections_out += 1
        return False

    async def _anti_entropy_with(self, peer: Peer) -> bool:
        """Returns False when the partner refused the conversation."""
        mode = self.config.mode
        if self.config.strategy == "checksum":
            settled = await self._checksum_phase(peer, mode)
            if settled is None:
                return False  # refused
            if settled:
                self.stats.checksum_successes += 1
                return True
            # Checksums still disagree: fall through to a full exchange.
        session = ExchangeSession(self.store, mode)
        offered = session.offer()
        request_type = (
            MessageType.PUSH if mode.pushes else MessageType.PULL_REQUEST
        )
        reply = await self._call(
            peer,
            Message(
                type=request_type,
                sender=self.node_id,
                payload={"mode": mode.value, "updates": encode_updates(offered)},
            ),
        )
        if _rejected(reply):
            return False
        self.stats.updates_shipped += len(offered) if mode.pushes else 0
        if reply.type is MessageType.PULL_REPLY:
            absorbed = session.absorb(payload_updates(reply.payload))
            self.stats.updates_absorbed += len(absorbed)
            self._note_news(absorbed)
        return True

    async def _checksum_phase(self, peer: Peer, mode: ExchangeMode) -> Optional[bool]:
        """Section 1.3's cheap first phase over the wire.

        Returns True when the checksums agree after exchanging recent
        update lists, False when a full comparison is still needed, and
        ``None`` when the partner refused the conversation.
        """
        recent = self.store.recent_updates(self.config.tau) if mode.pushes else []
        reply = await self._call(
            peer,
            Message(
                type=MessageType.CHECKSUM,
                sender=self.node_id,
                payload={
                    "mode": mode.value,
                    "checksum": self.store.checksum,
                    "tau": self.config.tau,
                    "updates": encode_updates(recent),
                },
            ),
        )
        if _rejected(reply):
            return None
        if reply.type is not MessageType.CHECKSUM:
            raise WireError(f"expected CHECKSUM reply, got {reply.type.value}")
        self.stats.updates_shipped += len(recent)
        session = ExchangeSession(self.store, mode)
        absorbed = session.absorb(payload_updates(reply.payload))
        self.stats.updates_absorbed += len(absorbed)
        self._note_news(absorbed)
        theirs = reply.payload.get("checksum")
        return isinstance(theirs, int) and theirs == self.store.checksum

    # ------------------------------------------------------------------
    # Outbound: rumor mongering
    # ------------------------------------------------------------------

    async def run_rumor_once(self) -> bool:
        """Push the hot-rumor list to one partner; apply ACK feedback."""
        if self._selector is None or not self._hot:
            return False
        rumors = list(self._hot.values())
        updates = [rumor.update for rumor in rumors]
        partner_id = self._selector.choose(self.node_id, self._rng)
        peer = self.peers[partner_id]
        try:
            async with self._budget:
                reply = await self._call(
                    peer,
                    Message(
                        type=MessageType.RUMOR,
                        sender=self.node_id,
                        payload={"updates": encode_updates(updates)},
                    ),
                )
        except (PeerError, WireError):
            self.stats.peer_failures += 1
            return False
        if _rejected(reply):
            self.stats.rejections_out += 1
            return False
        self.stats.updates_shipped += len(updates)
        news = reply.payload.get("news", [])
        for index, rumor in enumerate(rumors):
            was_news = bool(news[index]) if index < len(news) else False
            if was_news:
                continue  # feedback: a useful push keeps the rumor hot
            rumor.counter += 1
            if rumor.counter >= self.config.rumor_k:
                self._hot.pop(rumor.update.key, None)
        return True

    def _make_hot(self, update: StoreUpdate) -> None:
        existing = self._hot.get(update.key)
        if existing is not None and not _beats(update, existing.update):
            return
        self._hot[update.key] = _HotRumor(update=update)
        self.stats.rumors_started += 1

    @property
    def hot_rumor_count(self) -> int:
        return len(self._hot)

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                message = await read_message(reader, self.config.max_frame)
                if message is None:
                    break
                self.stats.count_received(message.type)
                reply = self._handle(message)
                if reply is not None:
                    self.stats.count_sent(reply.type)
                    writer.write(encode_message(reply))
                    await writer.drain()
        except (WireError, OSError, asyncio.IncompleteReadError):
            pass  # a broken peer conversation only affects that peer
        finally:
            # No wait_closed() here: awaiting it can raise a spurious
            # CancelledError when the whole node is being torn down.
            writer.close()

    def _handle(self, message: Message) -> Optional[Message]:
        """Dispatch one inbound frame; returns the reply frame."""
        if self._inbound_active >= self.config.connection_limit:
            # The busy-server refusal of Section 1.4: the initiator may
            # hunt for another partner.
            self.stats.rejections_in += 1
            return self._ack({"rejected": True})
        self._inbound_active += 1
        try:
            try:
                if message.type in (MessageType.PUSH, MessageType.PULL_REQUEST):
                    return self._handle_exchange(message)
                if message.type is MessageType.CHECKSUM:
                    return self._handle_checksum(message)
                if message.type is MessageType.RUMOR:
                    return self._handle_rumor(message)
                if message.type is MessageType.MAIL:
                    return self._handle_mail(message)
            except (WireError, SerializeError) as error:
                return self._ack({"error": str(error)})
            return None  # ACKs need no answer
        finally:
            self._inbound_active -= 1

    def _handle_exchange(self, message: Message) -> Message:
        mode = _decode_mode(message.payload)
        offered = payload_updates(message.payload)
        if message.type is MessageType.PULL_REQUEST:
            # The offer is a digest only: never apply, only serve back.
            mode = ExchangeMode.PULL
        session = ExchangeSession(self.store, mode)
        reply = session.respond(offered)
        self._note_news(reply.applied)
        self.stats.updates_absorbed += len(reply.applied)
        if mode.pulls:
            self.stats.updates_shipped += len(reply.send_back)
            return Message(
                type=MessageType.PULL_REPLY,
                sender=self.node_id,
                payload={"updates": encode_updates(reply.send_back)},
            )
        return self._ack({"applied": len(reply.applied)})

    def _handle_checksum(self, message: Message) -> Message:
        if message.payload.get("probe"):
            return self._ack(self._probe_payload())
        mode = _decode_mode(message.payload)
        session = ExchangeSession(self.store, mode)
        absorbed = session.absorb(payload_updates(message.payload))
        self._note_news(absorbed)
        self.stats.updates_absorbed += len(absorbed)
        tau = message.payload.get("tau", self.config.tau)
        if not isinstance(tau, (int, float)) or isinstance(tau, bool) or tau <= 0:
            raise WireError(f"bad tau {tau!r}")
        recent = self.store.recent_updates(float(tau)) if mode.pulls else []
        self.stats.updates_shipped += len(recent)
        return Message(
            type=MessageType.CHECKSUM,
            sender=self.node_id,
            payload={
                "checksum": self.store.checksum,
                "updates": encode_updates(recent),
            },
        )

    def _handle_rumor(self, message: Message) -> Message:
        updates = payload_updates(message.payload)
        news: List[bool] = []
        for update in updates:
            was_news = self.store.apply_update(update).was_news
            news.append(was_news)
            if was_news:
                self._note_news([update])
                self._make_hot(update)  # infection: the rumor spreads here too
        self.stats.updates_absorbed += sum(news)
        return self._ack({"news": news})

    def _handle_mail(self, message: Message) -> Message:
        payload = message.payload
        if "key" in payload:
            # Client injection: stamp with this node's clock and start
            # spreading (the paper's "update at the originating site").
            update = self.inject(payload["key"], payload.get("value"))
            return self._ack(
                {"applied": True, "timestamp": encode_timestamp(update.timestamp)}
            )
        updates = payload_updates(payload)
        news: List[bool] = []
        for update in updates:
            was_news = self.store.apply_update(update).was_news
            news.append(was_news)
            if was_news:
                self._note_news([update])
        self.stats.updates_absorbed += sum(news)
        return self._ack({"news": news})

    def _probe_payload(self) -> Dict[str, Any]:
        """Status snapshot for the measurement harness."""
        stats = self.stats
        return {
            "node": self.node_id,
            "checksum": self.store.checksum,
            "entries": len(self.store),
            "received": {str(key): t for key, t in stats.received.items()},
            "exchanges": stats.exchanges,
            "checksum_successes": stats.checksum_successes,
            "updates_shipped": stats.updates_shipped,
            "updates_absorbed": stats.updates_absorbed,
            "frames_sent": dict(stats.frames_sent),
            "frames_received": dict(stats.frames_received),
            "rejections_in": stats.rejections_in,
            "rejections_out": stats.rejections_out,
            "peer_failures": stats.peer_failures,
            "hot_rumors": len(self._hot),
        }

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    async def _call(self, peer: Peer, message: Message) -> Message:
        self.stats.count_sent(message.type)
        reply = await peer.call(message)
        self.stats.count_received(reply.type)
        return reply

    def _ack(self, payload: Dict[str, Any]) -> Message:
        return Message(type=MessageType.ACK, sender=self.node_id, payload=payload)

    def _note_news(self, updates: List[StoreUpdate]) -> None:
        now = time.time()
        for update in updates:
            self.stats.received.setdefault(update.key, now)


def _rejected(reply: Message) -> bool:
    return reply.type is MessageType.ACK and bool(reply.payload.get("rejected"))


def _decode_mode(payload: Dict[str, Any]) -> ExchangeMode:
    mode = _MODES_BY_VALUE.get(payload.get("mode"))
    if mode is None:
        raise WireError(f"bad exchange mode {payload.get('mode')!r}")
    return mode


def _beats(challenger: StoreUpdate, incumbent: StoreUpdate) -> bool:
    from repro.protocols.base import entry_beats

    return entry_beats(challenger.entry, incumbent.entry)
