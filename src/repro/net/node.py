"""The live gossip node: the paper's protocols over asyncio TCP.

A :class:`GossipNode` owns one :class:`~repro.core.store.ReplicaStore`
(timestamped by wall-clock time) and runs, concurrently:

* an **inbound server** answering PUSH / PULL_REQUEST / CHECKSUM /
  RUMOR / MAIL frames from peers;
* a periodic **anti-entropy loop** — pick a partner (uniform or a
  Section 3 spatial distribution over the roster), resolve differences
  through the same :class:`~repro.protocols.exchange.ExchangeSession`
  objects the simulator uses, with either the full-compare or the
  checksum-plus-recent-updates strategy of Section 1.3;
* a faster **rumor loop** — hot rumors are pushed to random partners,
  and the ACK's was-news feedback drives the Section 1.4 counter: a
  rumor goes cold after ``k`` unnecessary pushes.

Busy-server behavior mirrors :mod:`repro.sim.transport`: a node refuses
a conversation when ``connection_limit`` inbound conversations are
already in flight (the refusal is an ``ACK {"rejected": true}``), and a
refused initiator *hunts* — redraws partners up to ``hunt_limit`` more
times.

Nothing here re-implements merge semantics: entries are applied through
``ReplicaStore.apply_entry`` via ``ExchangeSession``, so the live
runtime and the simulator cannot drift apart.
"""

from __future__ import annotations

import asyncio
import dataclasses
import random
import socket
import time
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.core.serialize import (
    SerializeError,
    encode_timestamp,
    encode_updates,
)
from repro.core.store import ApplyResult, ReplicaStore, StoreUpdate
from repro.core.timestamps import SimClock
from repro.net.membership import Membership, PeerInfo
from repro.net.peer import InFlightBudget, Peer, PeerError, RetryPolicy
from repro.obs.events import EventBus, EventKind
from repro.obs.metrics import MetricsRegistry, linear_buckets
from repro.obs.profiling import Profiler
from repro.obs.spans import (
    SpanContext,
    TraceHopLru,
    emit_delivery_span,
    trace_id_of,
)
from repro.net.wire import (
    BASE_VERSION,
    MAX_FRAME_BYTES,
    Message,
    MessageType,
    PROTOCOL_VERSION,
    TRACE_WIRE_VERSION,
    TREE_WIRE_VERSION,
    WireError,
    encode_message,
    negotiated_version,
    payload_bucket_list,
    payload_span_contexts,
    payload_tree_nodes,
    payload_updates,
    read_message,
)
from repro.protocols.base import ExchangeMode
from repro.protocols.exchange import ExchangeSession

_MODES_BY_VALUE = {mode.value: mode for mode in ExchangeMode}


@dataclasses.dataclass(frozen=True, slots=True)
class NodeConfig:
    """Tunables for one gossip node.

    Intervals are seconds of wall-clock time; ``tau`` (the recent-update
    window for the checksum strategy) must comfortably exceed the
    expected update-distribution time, exactly as in Section 1.3.
    """

    anti_entropy_interval: float = 0.2
    rumor_interval: float = 0.05
    mode: ExchangeMode = ExchangeMode.PUSH_PULL
    strategy: str = "full"            # "full" | "checksum" | "hierarchical"
    tau: float = 30.0
    rumor_k: int = 2
    connection_limit: int = 8         # inbound conversations in flight
    hunt_limit: int = 2               # extra partner draws after a rejection
    in_flight_limit: int = 4          # outbound conversations in flight
    selector: str = "uniform"         # "uniform" | "spatial:<a>"
    retry: RetryPolicy = RetryPolicy()
    max_frame: int = MAX_FRAME_BYTES

    def __post_init__(self) -> None:
        if self.anti_entropy_interval <= 0 or self.rumor_interval <= 0:
            raise ValueError("intervals must be positive")
        if self.strategy not in ("full", "checksum", "hierarchical"):
            raise ValueError(f"unknown exchange strategy {self.strategy!r}")
        if self.strategy == "hierarchical" and self.mode is not ExchangeMode.PUSH_PULL:
            # Pruning a checksum subtree needs both sides' data present
            # in the compared values; one-way modes cannot certify that.
            raise ValueError("hierarchical strategy requires push-pull mode")
        if self.tau <= 0:
            raise ValueError("tau must be positive")
        if self.rumor_k < 1:
            raise ValueError("rumor_k must be >= 1")
        if self.connection_limit < 1:
            raise ValueError("connection_limit must be >= 1")
        if self.hunt_limit < 0:
            raise ValueError("hunt_limit must be >= 0")


#: NodeStats scalar counters and the registry families backing them.
_SCALAR_COUNTERS = {
    "exchanges": (
        "repro_exchanges_total", "Anti-entropy conversations initiated"),
    "checksum_successes": (
        "repro_checksum_successes_total",
        "Exchanges settled by the Section 1.3 checksum phase alone"),
    "updates_shipped": (
        "repro_updates_shipped_total", "Database entries sent to peers"),
    "updates_absorbed": (
        "repro_updates_absorbed_total", "News applied from peers"),
    "rumors_started": (
        "repro_rumors_started_total", "Hot rumors started at this node"),
    "tree_rounds": (
        "repro_tree_rounds_total",
        "TREE drill-down round trips in hierarchical exchanges"),
    "entries_avoided": (
        "repro_entries_avoided_total",
        "Local entries a hierarchical exchange did not have to offer"),
    "rejections_in": (
        "repro_rejections_in_total", "Inbound conversations this node refused"),
    "rejections_out": (
        "repro_rejections_out_total", "Refusals this node received"),
    "hunts": (
        "repro_hunts_total", "Extra partner draws after refusals or failures"),
    "peer_failures": (
        "repro_peer_failures_total", "Conversations dead after all retries"),
}


class NodeStats:
    """Counters a node keeps about its own traffic.

    Since the observability layer landed these are backed by a
    :class:`repro.obs.metrics.MetricsRegistry` — the same numbers are
    exported as labeled Prometheus/JSON series over the ``STATUS`` wire
    message — but the historical attribute API is preserved: read and
    ``+=`` the scalar counters (``stats.exchanges += 1``), and read
    ``frames_sent`` / ``frames_received`` as plain per-type dicts.

    ``received`` maps each key to the wall-clock moment this node first
    learned news about it — the per-site receipt times from which the
    demo harness computes the paper's ``t_ave``/``t_last`` delays.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.received: Dict[Hashable, float] = {}
        self._frames_sent = self.registry.counter(
            "repro_frames_sent_total", "Frames sent, by message type",
            labels=("type",),
        )
        self._frames_received = self.registry.counter(
            "repro_frames_received_total", "Frames received, by message type",
            labels=("type",),
        )
        self.exchange_seconds = self.registry.histogram(
            "repro_exchange_seconds",
            "Latency of one initiated anti-entropy conversation (seconds)",
        )
        self.dirty_buckets = self.registry.histogram(
            "repro_dirty_buckets",
            "Differing buckets found per hierarchical drill-down",
            buckets=linear_buckets(0.0, 8.0, 16),
        )
        self._scalars = {
            attr: self.registry.counter(name, help)
            for attr, (name, help) in _SCALAR_COUNTERS.items()
        }

    def count_sent(self, kind: MessageType, n: int = 1) -> None:
        self._frames_sent.inc(n, type=kind.value)

    def count_received(self, kind: MessageType, n: int = 1) -> None:
        self._frames_received.inc(n, type=kind.value)

    @property
    def frames_sent(self) -> Dict[str, int]:
        return {
            labels["type"]: int(cell.value)
            for labels, cell in self._frames_sent.labeled_series()
        }

    @property
    def frames_received(self) -> Dict[str, int]:
        return {
            labels["type"]: int(cell.value)
            for labels, cell in self._frames_received.labeled_series()
        }

    @property
    def frames_sent_total(self) -> int:
        return int(self._frames_sent.total())

    @property
    def frames_received_total(self) -> int:
        return int(self._frames_received.total())


def _scalar_counter_property(attr: str) -> property:
    def getter(self: NodeStats) -> int:
        return int(self._scalars[attr].value())

    def setter(self: NodeStats, value: int) -> None:
        delta = value - int(self._scalars[attr].value())
        if delta < 0:
            raise ValueError(f"NodeStats.{attr} is a counter; it only goes up")
        if delta:
            self._scalars[attr].inc(delta)

    return property(getter, setter, doc=_SCALAR_COUNTERS[attr][1])


for _attr in _SCALAR_COUNTERS:
    setattr(NodeStats, _attr, _scalar_counter_property(_attr))


@dataclasses.dataclass(slots=True)
class _HotRumor:
    """Per-node state for one hot rumor (feedback + counter, Section 1.4)."""

    update: StoreUpdate
    counter: int = 0


class GossipNode:
    """One networked replica: store + server + gossip loops."""

    def __init__(
        self,
        node_id: int,
        membership: Membership,
        config: NodeConfig = NodeConfig(),
        seed: Optional[int] = None,
        bus: Optional[EventBus] = None,
    ):
        self.info: PeerInfo = membership.get(node_id)
        self.node_id = node_id
        self.membership = membership
        self.config = config
        self.bus = bus if bus is not None else EventBus()
        self.store = ReplicaStore(
            site_id=node_id, clock=SimClock(site=node_id, time_source=time.time)
        )
        self.peers: Dict[int, Peer] = {
            peer.node_id: Peer(peer, config.retry, observer=self._peer_event)
            for peer in membership.others(node_id)
        }
        self._selector = membership.selector(config.selector) if len(membership) > 1 else None
        self._rng = random.Random(seed if seed is not None else node_id)
        self._budget = InFlightBudget(config.in_flight_limit)
        self._hot: Dict[Hashable, _HotRumor] = {}
        self._inbound_active = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._tasks: List[asyncio.Task] = []
        self._started_at = time.time()
        self.stats = NodeStats()
        # Phase timers share the stats registry, so profiling numbers
        # travel in every STATUS snapshot.  Live granularity is one
        # network conversation — timing overhead is noise at that scale.
        self.profiler = Profiler(registry=self.stats.registry)
        # trace id -> this node's hop distance from the update's origin,
        # forwarded as the trace context of outbound update lists.
        # LRU-bounded: hop data only matters while a trace circulates,
        # and an unbounded map would grow with every update ever seen.
        self._span_hops = TraceHopLru()
        # peer id -> highest wire version that peer has advertised.
        # Until a peer advertises v2 it is assumed to be a v1 node and
        # gets v1 frames with no trace-context fields.
        self._peer_versions: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self, sock: Optional[socket.socket] = None) -> None:
        """Bind the server (on the roster address, or a pre-bound
        socket) and start the gossip loops."""
        if self._server is not None:
            raise RuntimeError(f"node {self.node_id} is already running")
        if sock is not None:
            self._server = await asyncio.start_server(self._serve, sock=sock)
        else:
            self._server = await asyncio.start_server(
                self._serve, self.info.host, self.info.port
            )
        self._started_at = time.time()
        self._tasks = [
            asyncio.create_task(
                self._periodic(self.config.anti_entropy_interval, self.run_anti_entropy_once),
                name=f"node{self.node_id}-anti-entropy",
            ),
            asyncio.create_task(
                self._periodic(self.config.rumor_interval, self.run_rumor_once),
                name=f"node{self.node_id}-rumor",
            ),
        ]

    async def stop(self) -> None:
        """Stop loops, close the server and all outbound connections."""
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            # On 3.11, wait_for can swallow a cancellation when its
            # inner future completes in the same event-loop step
            # (bpo-42130), leaving the loop task running with the
            # cancel request consumed.  Keep cancelling until the task
            # actually finishes instead of awaiting it once.
            while not task.done():
                task.cancel()
                await asyncio.wait((task,), timeout=1.0)
            if not task.cancelled():
                task.exception()  # retrieved, so the loop never warns
        self._tasks = []
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for peer in self.peers.values():
            await peer.close()

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def port(self) -> int:
        """The actually bound port (useful with ephemeral sockets)."""
        if self._server is None or not self._server.sockets:
            return self.info.port
        return self._server.sockets[0].getsockname()[1]

    async def _periodic(self, interval: float, step) -> None:
        while True:
            task = asyncio.current_task()
            # A wait_for inside the step can swallow a pending
            # cancellation (bpo-42130); the request stays visible in
            # cancelling() because nothing uncancels, so honor it.
            # Task.cancelling() is 3.11+ only — on 3.10 the re-cancel
            # loop in stop() is the sole (still sufficient) backstop.
            cancelling = getattr(task, "cancelling", None)
            if cancelling is not None and cancelling():
                raise asyncio.CancelledError
            # Jitter desynchronizes the loops across nodes, like the
            # independent per-site timers of the paper's model.
            await asyncio.sleep(interval * (0.5 + self._rng.random()))
            try:
                await step()
            except asyncio.CancelledError:
                raise
            except Exception:
                # A single failed conversation must never kill the loop;
                # failures are already counted in stats.
                pass

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------

    def inject(self, key: Hashable, value: Any) -> StoreUpdate:
        """A client write at this node; becomes a hot rumor."""
        update = self.store.update(key, value)
        self._announce_injection(update, deletion=False)
        self._make_hot(update)
        return update

    def delete(self, key: Hashable) -> StoreUpdate:
        update = self.store.delete(key)
        self._announce_injection(update, deletion=True)
        self._make_hot(update)
        return update

    def _announce_injection(self, update: StoreUpdate, deletion: bool) -> None:
        """Emit the injection events with one shared timestamp, so the
        trace replay and the node's own receipt record agree exactly."""
        now = time.time()
        trace = trace_id_of(update)
        self._span_hops.setdefault(trace, 0)
        self.bus.emit(
            EventKind.UPDATE_INJECTED,
            node=self.node_id,
            time=now,
            key=str(update.key),
            deletion=deletion,
        )
        self._note_news([update], now=now)
        if self.bus.has_sinks:
            emit_delivery_span(
                self.bus,
                node=self.node_id,
                update=update,
                result=ApplyResult.APPLIED,
                trace=trace,
                src=None,
                hop=0,
                first=True,
                time=now,
            )

    # ------------------------------------------------------------------
    # Outbound: anti-entropy
    # ------------------------------------------------------------------

    async def run_anti_entropy_once(self) -> bool:
        """One anti-entropy round: pick a partner (hunting past
        refusals) and resolve differences.  True when an exchange ran."""
        if self._selector is None:
            return False
        for attempt in range(self.config.hunt_limit + 1):
            if attempt:
                self.stats.hunts += 1
            with self.profiler.phase("partner-selection"):
                partner_id = self._selector.choose(self.node_id, self._rng)
            peer = self.peers[partner_id]
            self.bus.emit(
                EventKind.EXCHANGE_STARTED,
                node=self.node_id,
                partner=partner_id,
                mode=self.config.mode.value,
                strategy=self.config.strategy,
                attempt=attempt,
            )
            began = time.monotonic()
            try:
                async with self._budget:
                    with self.profiler.phase("exchange"):
                        accepted = await self._anti_entropy_with(peer)
            except (PeerError, WireError):
                self.stats.peer_failures += 1
                continue  # partner down: hunt for another, like a busy site
            if accepted:
                self.stats.exchanges += 1
                self.stats.exchange_seconds.observe(time.monotonic() - began)
                return True
            self.stats.rejections_out += 1
            self.bus.emit(
                EventKind.REJECTION,
                node=self.node_id,
                partner=partner_id,
                direction="out",
            )
        return False

    async def _anti_entropy_with(self, peer: Peer) -> bool:
        """Returns False when the partner refused the conversation."""
        mode = self.config.mode
        shipped = received = 0
        via = "full"
        scope_buckets: Optional[List[int]] = None
        if self.config.strategy == "checksum":
            phase = await self._checksum_phase(peer, mode)
            if phase is None:
                return False  # refused
            settled, shipped, received = phase
            if settled:
                self.stats.checksum_successes += 1
                self._settled(peer, mode, "checksum", shipped, received)
                return True
            # Checksums still disagree: fall through to a full exchange.
            via = "checksum+full"
        elif (
            self.config.strategy == "hierarchical"
            and self.wire_version(peer.node_id) >= TREE_WIRE_VERSION
        ):
            # A peer that has not yet advertised v3 (including every
            # peer before its first conversation) takes the plain full
            # exchange below — v1/v2 nodes never see TREE frames or
            # bucket-scoped payloads.
            walk = await self._tree_phase(peer, mode)
            if walk is None:
                return False  # refused
            if walk == "mismatch":
                # Bucket counts disagree; the trees don't line up.
                via = "tree+full"
            else:
                dirty = walk
                self.stats.dirty_buckets.observe(len(dirty))
                if not dirty:
                    self.stats.checksum_successes += 1
                    self._settled(peer, mode, "tree", 0, 0)
                    return True
                scope_buckets = dirty
                via = "tree"
        session = ExchangeSession(self.store, mode)
        if scope_buckets is None:
            offered = session.offer()
        else:
            offered = [
                update
                for bucket in scope_buckets
                for update in self.store.bucket_updates(bucket)
            ]
        request_type = (
            MessageType.PUSH if mode.pushes else MessageType.PULL_REQUEST
        )
        payload = {"mode": mode.value, "updates": encode_updates(offered)}
        if scope_buckets is not None:
            payload["buckets"] = scope_buckets
            payload["bits"] = self.store.bucket_bits
            self.stats.entries_avoided += max(0, len(self.store) - len(offered))
        if mode.pushes and self.wire_version(peer.node_id) >= TRACE_WIRE_VERSION:
            payload["spans"] = self._span_contexts(offered, time.time())
        reply = await self._call(
            peer,
            Message(type=request_type, sender=self.node_id, payload=payload),
        )
        if _rejected(reply):
            return False
        sent = len(offered) if mode.pushes else 0
        self.stats.updates_shipped += sent
        shipped += sent
        if reply.type is MessageType.PULL_REPLY:
            incoming = payload_updates(reply.payload)
            ctxs = payload_span_contexts(reply.payload, len(incoming))
            received += len(incoming)
            with self.profiler.phase("merge"):
                applied = session.absorb_with_results(incoming)
            now = time.time()
            self._record_deliveries(applied, src=peer.node_id, ctxs=ctxs, now=now)
            absorbed = [update for update, result in applied if result.was_news]
            self.stats.updates_absorbed += len(absorbed)
            self._note_news(absorbed, now=now)
        if via == "tree":
            # Resolved through the tree without a full comparison: the
            # same success the checksum strategy counts, achieved with
            # bucket-scoped traffic.
            self.stats.checksum_successes += 1
        self._settled(peer, mode, via, shipped, received)
        return True

    def _settled(
        self, peer: Peer, mode: ExchangeMode, via: str, shipped: int, received: int
    ) -> None:
        """One accepted anti-entropy conversation, fully accounted.

        ``shipped``/``received`` count every entry that crossed the wire
        in either direction, so summing ``exchange-settled`` events
        reproduces the paper's update-traffic ``m`` exactly as the
        per-node ``repro_updates_shipped_total`` counters do.
        """
        self.bus.emit(
            EventKind.EXCHANGE_SETTLED,
            node=self.node_id,
            partner=peer.node_id,
            mode=mode.value,
            via=via,
            shipped=shipped,
            received=received,
        )

    async def _checksum_phase(
        self, peer: Peer, mode: ExchangeMode
    ) -> Optional[tuple]:
        """Section 1.3's cheap first phase over the wire.

        Returns ``(settled, shipped, received)`` — ``settled`` is True
        when the checksums agree after exchanging recent update lists —
        or ``None`` when the partner refused the conversation.
        """
        recent = self.store.recent_updates(self.config.tau) if mode.pushes else []
        payload = {
            "mode": mode.value,
            "checksum": self.store.checksum,
            "tau": self.config.tau,
            "updates": encode_updates(recent),
        }
        if recent and self.wire_version(peer.node_id) >= TRACE_WIRE_VERSION:
            payload["spans"] = self._span_contexts(recent, time.time())
        reply = await self._call(
            peer,
            Message(type=MessageType.CHECKSUM, sender=self.node_id, payload=payload),
        )
        if _rejected(reply):
            return None
        if reply.type is not MessageType.CHECKSUM:
            raise WireError(f"expected CHECKSUM reply, got {reply.type.value}")
        self.stats.updates_shipped += len(recent)
        session = ExchangeSession(self.store, mode)
        incoming = payload_updates(reply.payload)
        ctxs = payload_span_contexts(reply.payload, len(incoming))
        with self.profiler.phase("merge"):
            applied = session.absorb_with_results(incoming)
        now = time.time()
        self._record_deliveries(applied, src=peer.node_id, ctxs=ctxs, now=now)
        absorbed = [update for update, result in applied if result.was_news]
        self.stats.updates_absorbed += len(absorbed)
        self._note_news(absorbed, now=now)
        theirs = reply.payload.get("checksum")
        settled = isinstance(theirs, int) and theirs == self.store.checksum
        self.bus.emit(
            EventKind.CHECKSUM_HIT if settled else EventKind.CHECKSUM_MISS,
            node=self.node_id,
            partner=peer.node_id,
        )
        return settled, len(recent), len(incoming)

    async def _tree_phase(self, peer: Peer, mode: ExchangeMode):
        """Walk the checksum trees level by level over TREE frames.

        Each round trip sends the differing nodes of one tree level with
        this node's checksums; the peer answers with its children's
        values for the internal nodes that differ, plus the buckets of
        differing leaves.  Equal subtrees are pruned on both sides, so
        traffic per round is proportional to the *difference*, and the
        number of rounds to ``bucket_bits``.

        Returns the sorted dirty-bucket list, ``"mismatch"`` when the
        peer's bucket count differs from ours (caller falls back to a
        full exchange), or ``None`` when the peer refused.
        """
        tree = self.store.checksum_tree
        bits = self.store.bucket_bits
        request = [[1, tree.root]]
        dirty: List[int] = []
        while request:
            payload = {"mode": mode.value, "bits": bits, "nodes": request}
            reply = await self._call(
                peer,
                Message(type=MessageType.TREE, sender=self.node_id, payload=payload),
            )
            if _rejected(reply):
                return None
            if reply.type is not MessageType.TREE:
                raise WireError(f"expected TREE reply, got {reply.type.value}")
            self.stats.tree_rounds += 1
            if reply.payload.get("mismatch"):
                return "mismatch"
            dirty.extend(payload_bucket_list(reply.payload, "dirty"))
            request = []
            for node_id, theirs in payload_tree_nodes(reply.payload, "frontier"):
                if not tree.valid_node(node_id):
                    raise WireError(f"tree node {node_id} out of range")
                if tree.node(node_id) == theirs:
                    continue  # our subtree matches theirs: pruned
                if tree.is_leaf(node_id):
                    dirty.append(tree.bucket_of_leaf(node_id))
                else:
                    request.append([node_id, tree.node(node_id)])
        return sorted(set(dirty))

    # ------------------------------------------------------------------
    # Outbound: rumor mongering
    # ------------------------------------------------------------------

    async def run_rumor_once(self) -> bool:
        """Push the hot-rumor list to one partner; apply ACK feedback."""
        if self._selector is None or not self._hot:
            return False
        rumors = list(self._hot.values())
        updates = [rumor.update for rumor in rumors]
        with self.profiler.phase("partner-selection"):
            partner_id = self._selector.choose(self.node_id, self._rng)
        peer = self.peers[partner_id]
        payload = {"updates": encode_updates(updates)}
        if self.wire_version(partner_id) >= TRACE_WIRE_VERSION:
            payload["spans"] = self._span_contexts(updates, time.time())
        try:
            async with self._budget:
                with self.profiler.phase("exchange"):
                    reply = await self._call(
                        peer,
                        Message(
                            type=MessageType.RUMOR,
                            sender=self.node_id,
                            payload=payload,
                        ),
                    )
        except (PeerError, WireError):
            self.stats.peer_failures += 1
            return False
        if _rejected(reply):
            self.stats.rejections_out += 1
            self.bus.emit(
                EventKind.REJECTION,
                node=self.node_id,
                partner=partner_id,
                direction="out",
            )
            return False
        self.stats.updates_shipped += len(updates)
        self.bus.emit(
            EventKind.RUMOR_SENT,
            node=self.node_id,
            partner=partner_id,
            shipped=len(updates),
        )
        news = reply.payload.get("news", [])
        for index, rumor in enumerate(rumors):
            was_news = bool(news[index]) if index < len(news) else False
            if was_news:
                continue  # feedback: a useful push keeps the rumor hot
            rumor.counter += 1
            if rumor.counter >= self.config.rumor_k:
                self._hot.pop(rumor.update.key, None)
                self.bus.emit(
                    EventKind.RUMOR_DEAD,
                    node=self.node_id,
                    key=str(rumor.update.key),
                    counter=rumor.counter,
                )
        return True

    def _make_hot(self, update: StoreUpdate) -> None:
        existing = self._hot.get(update.key)
        if existing is not None and not _beats(update, existing.update):
            return
        self._hot[update.key] = _HotRumor(update=update)
        self.stats.rumors_started += 1
        self.bus.emit(EventKind.RUMOR_HOT, node=self.node_id, key=str(update.key))

    @property
    def hot_rumor_count(self) -> int:
        return len(self._hot)

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                message = await read_message(reader, self.config.max_frame)
                if message is None:
                    break
                self.stats.count_received(message.type)
                reply = self._handle(message)
                if reply is not None:
                    self.stats.count_sent(reply.type)
                    writer.write(encode_message(reply))
                    await writer.drain()
        except (WireError, OSError, asyncio.IncompleteReadError):
            pass  # a broken peer conversation only affects that peer
        finally:
            # No wait_closed() here: awaiting it can raise a spurious
            # CancelledError when the whole node is being torn down.
            writer.close()

    def _handle(self, message: Message) -> Optional[Message]:
        """Handle one inbound frame; returns the reply frame.

        Wraps :meth:`_dispatch` with version negotiation: the sender's
        ``max`` advert is remembered, and the reply is stamped with the
        negotiated version — a v1 peer gets a pure v1 frame back, a v2
        peer a v2 frame whose payload may carry trace contexts.
        """
        version = negotiated_version(message)
        self._peer_versions[message.sender] = version
        reply = self._dispatch(message)
        if reply is None or reply.version == version:
            return reply
        return dataclasses.replace(reply, version=version)

    def _dispatch(self, message: Message) -> Optional[Message]:
        """Dispatch one inbound frame; returns the reply frame."""
        if message.type is MessageType.STATUS:
            # Introspection is served even while gossip is being
            # refused: an overloaded node must stay observable.
            return Message(
                type=MessageType.STATUS,
                sender=self.node_id,
                payload=self.status_payload(),
            )
        if self._inbound_active >= self.config.connection_limit:
            # The busy-server refusal of Section 1.4: the initiator may
            # hunt for another partner.
            self.stats.rejections_in += 1
            self.bus.emit(
                EventKind.REJECTION,
                node=self.node_id,
                partner=message.sender,
                direction="in",
            )
            return self._ack({"rejected": True})
        self._inbound_active += 1
        try:
            try:
                if message.type in (MessageType.PUSH, MessageType.PULL_REQUEST):
                    return self._handle_exchange(message)
                if message.type is MessageType.CHECKSUM:
                    return self._handle_checksum(message)
                if message.type is MessageType.TREE:
                    return self._handle_tree(message)
                if message.type is MessageType.RUMOR:
                    return self._handle_rumor(message)
                if message.type is MessageType.MAIL:
                    return self._handle_mail(message)
            except (WireError, SerializeError) as error:
                return self._ack({"error": str(error)})
            return None  # ACKs need no answer
        finally:
            self._inbound_active -= 1

    def _handle_exchange(self, message: Message) -> Message:
        mode = _decode_mode(message.payload)
        offered = payload_updates(message.payload)
        if message.type is MessageType.PULL_REQUEST:
            # The offer is a digest only: never apply, only serve back.
            mode = ExchangeMode.PULL
        scope = self._exchange_scope(message.payload)
        ctxs = payload_span_contexts(message.payload, len(offered))
        # Keyed by trace id, not bare key: a frame carrying two versions
        # of one key must not hand version A's context to version B.
        ctx_by_trace = {trace_id_of(u): ctx for u, ctx in zip(offered, ctxs)}
        session = ExchangeSession(self.store, mode)
        with self.profiler.phase("merge"):
            reply = session.respond(offered, scope=scope)
        now = time.time()
        self._record_deliveries(
            list(zip(reply.applied, reply.applied_results)),
            src=message.sender,
            ctxs=[ctx_by_trace.get(trace_id_of(u)) for u in reply.applied],
            now=now,
        )
        self._note_news(reply.applied, now=now)
        self.stats.updates_absorbed += len(reply.applied)
        if mode.pulls:
            self.stats.updates_shipped += len(reply.send_back)
            payload = {"updates": encode_updates(reply.send_back)}
            if self.wire_version(message.sender) >= TRACE_WIRE_VERSION:
                payload["spans"] = self._span_contexts(reply.send_back, now)
            return Message(
                type=MessageType.PULL_REPLY,
                sender=self.node_id,
                payload=payload,
            )
        return self._ack({"applied": len(reply.applied)})

    def _handle_checksum(self, message: Message) -> Message:
        if message.payload.get("probe"):
            return self._ack(self._probe_payload())
        mode = _decode_mode(message.payload)
        session = ExchangeSession(self.store, mode)
        incoming = payload_updates(message.payload)
        ctxs = payload_span_contexts(message.payload, len(incoming))
        with self.profiler.phase("merge"):
            applied = session.absorb_with_results(incoming)
        now = time.time()
        self._record_deliveries(applied, src=message.sender, ctxs=ctxs, now=now)
        absorbed = [update for update, result in applied if result.was_news]
        self._note_news(absorbed, now=now)
        self.stats.updates_absorbed += len(absorbed)
        tau = message.payload.get("tau", self.config.tau)
        if not isinstance(tau, (int, float)) or isinstance(tau, bool) or tau <= 0:
            raise WireError(f"bad tau {tau!r}")
        recent = self.store.recent_updates(float(tau)) if mode.pulls else []
        self.stats.updates_shipped += len(recent)
        payload = {
            "checksum": self.store.checksum,
            "updates": encode_updates(recent),
        }
        if self.wire_version(message.sender) >= TRACE_WIRE_VERSION:
            payload["spans"] = self._span_contexts(recent, now)
        return Message(
            type=MessageType.CHECKSUM,
            sender=self.node_id,
            payload=payload,
        )

    def _exchange_scope(self, payload: Dict[str, Any]):
        """The local ``(key, entry)`` scope of a bucket-limited offer.

        A v3 initiator that resolved differences through a TREE
        drill-down scopes its PUSH to the dirty buckets; the responder
        must then only send back entries from *those* buckets, or the
        reply would ship (nearly) its whole table.  Returns ``None`` —
        whole-store scope — for ordinary offers, and also when the
        advertised bucket geometry does not match ours: resolving over
        the full table is always correct, just not as cheap.
        """
        if "buckets" not in payload:
            return None
        buckets = payload_bucket_list(payload, "buckets")
        if payload.get("bits") != self.store.bucket_bits:
            return None
        count = self.store.bucket_count
        if any(bucket >= count for bucket in buckets):
            raise WireError(f"bucket index out of range in {buckets!r}")
        return [
            pair for bucket in buckets for pair in self.store.bucket_entries(bucket)
        ]

    def _handle_tree(self, message: Message) -> Message:
        """One level of a hierarchical-checksum drill-down (v3).

        The initiator sends ``(node_id, checksum)`` pairs from its tree;
        for each that differs from ours we answer with our children's
        values (internal nodes) or the bucket index (leaves).  Equal
        nodes are dropped — that subtree is settled.
        """
        payload = message.payload
        bits = payload.get("bits")
        if bits != self.store.bucket_bits:
            return Message(
                type=MessageType.TREE,
                sender=self.node_id,
                payload={"bits": self.store.bucket_bits, "mismatch": True},
            )
        tree = self.store.checksum_tree
        frontier: List[List[int]] = []
        dirty: List[int] = []
        for node_id, theirs in payload_tree_nodes(payload):
            if not tree.valid_node(node_id):
                raise WireError(f"tree node {node_id} out of range")
            if tree.node(node_id) == theirs:
                continue
            if tree.is_leaf(node_id):
                dirty.append(tree.bucket_of_leaf(node_id))
            else:
                left, right = tree.children(node_id)
                frontier.append([left, tree.node(left)])
                frontier.append([right, tree.node(right)])
        self.stats.tree_rounds += 1
        return Message(
            type=MessageType.TREE,
            sender=self.node_id,
            payload={"bits": bits, "frontier": frontier, "dirty": dirty},
        )

    def _handle_rumor(self, message: Message) -> Message:
        updates = payload_updates(message.payload)
        ctxs = payload_span_contexts(message.payload, len(updates))
        with self.profiler.phase("merge"):
            applied = [(u, self.store.apply_update(u)) for u in updates]
        now = time.time()
        self._record_deliveries(applied, src=message.sender, ctxs=ctxs, now=now)
        news: List[bool] = []
        for update, result in applied:
            news.append(result.was_news)
            if result.was_news:
                self._note_news([update], now=now)
                self._note_reactivation(update, result)
                self._make_hot(update)  # infection: the rumor spreads here too
        self.stats.updates_absorbed += sum(news)
        return self._ack({"news": news})

    def _handle_mail(self, message: Message) -> Message:
        payload = message.payload
        if "read" in payload:
            # Client read: this replica's current view of one key, with
            # the entry's timestamp so a load generator can measure how
            # far behind the globally latest write this node is.
            entry = self.store.entry(payload["read"])
            if entry is None:
                return self._ack({"found": False, "timestamp": None})
            return self._ack(
                {
                    "found": True,
                    "deleted": entry.is_deletion,
                    "timestamp": encode_timestamp(entry.timestamp),
                    "value": None if entry.is_deletion else entry.value,
                }
            )
        if "key" in payload:
            # Client injection: stamp with this node's clock and start
            # spreading (the paper's "update at the originating site").
            # ``delete`` issues a death certificate instead of a write.
            if payload.get("delete"):
                update = self.delete(payload["key"])
            else:
                update = self.inject(payload["key"], payload.get("value"))
            return self._ack(
                {"applied": True, "timestamp": encode_timestamp(update.timestamp)}
            )
        updates = payload_updates(payload)
        ctxs = payload_span_contexts(payload, len(updates))
        with self.profiler.phase("merge"):
            applied = [(u, self.store.apply_update(u)) for u in updates]
        now = time.time()
        self._record_deliveries(applied, src=message.sender, ctxs=ctxs, now=now)
        news: List[bool] = []
        for update, result in applied:
            news.append(result.was_news)
            if result.was_news:
                self._note_news([update], now=now)
                self._note_reactivation(update, result)
        self.stats.updates_absorbed += sum(news)
        return self._ack({"news": news})

    def _probe_payload(self) -> Dict[str, Any]:
        """Status snapshot for the measurement harness."""
        stats = self.stats
        return {
            "node": self.node_id,
            "checksum": self.store.checksum,
            "entries": len(self.store),
            "received": {str(key): t for key, t in stats.received.items()},
            "exchanges": stats.exchanges,
            "checksum_successes": stats.checksum_successes,
            "updates_shipped": stats.updates_shipped,
            "updates_absorbed": stats.updates_absorbed,
            "frames_sent": dict(stats.frames_sent),
            "frames_received": dict(stats.frames_received),
            "rejections_in": stats.rejections_in,
            "rejections_out": stats.rejections_out,
            "peer_failures": stats.peer_failures,
            "hot_rumors": len(self._hot),
        }

    def status_payload(self) -> Dict[str, Any]:
        """The ``STATUS`` introspection reply: identity, S/I/R census,
        receipt times, and the full metrics-registry snapshot."""
        hot_keys = sorted(str(key) for key in self._hot)
        entries = len(self.store)
        return {
            "node": self.node_id,
            "roster_size": len(self.membership),
            "uptime_seconds": time.time() - self._started_at,
            "checksum": self.store.checksum,
            "entries": entries,
            "buckets": {
                "bits": self.store.bucket_bits,
                "count": self.store.bucket_count,
                "nonzero": sum(1 for _ in self.store.checksum_tree.nonzero_buckets()),
            },
            "census": {
                # This node's own S/I/R view over the keys it stores:
                # hot rumors are infective, the rest removed.  A node
                # cannot see its own susceptibility — assemble the
                # cluster-wide census by asking every roster member.
                "infective": len(hot_keys),
                "removed": max(entries - len(hot_keys), 0),
            },
            "hot_keys": hot_keys,
            "received": {str(key): t for key, t in self.stats.received.items()},
            "config": {
                "mode": self.config.mode.value,
                "strategy": self.config.strategy,
                "selector": self.config.selector,
                "anti_entropy_interval": self.config.anti_entropy_interval,
                "rumor_interval": self.config.rumor_interval,
            },
            "wire": {
                "version": PROTOCOL_VERSION,
                "peers": {
                    str(peer_id): version
                    for peer_id, version in sorted(self._peer_versions.items())
                },
            },
            "metrics": self.stats.registry.snapshot(),
        }

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    async def _call(self, peer: Peer, message: Message) -> Message:
        # Requests ride at the version negotiated with this peer so far
        # (BASE_VERSION before the first reply): once a peer has
        # advertised v4, every subsequent request to it is a binary
        # frame, not just our replies.
        version = self.wire_version(peer.node_id)
        if version > message.version:
            message = dataclasses.replace(message, version=version)
        self.stats.count_sent(message.type)
        reply = await peer.call(message)
        self.stats.count_received(reply.type)
        self._peer_versions[reply.sender] = negotiated_version(reply)
        return reply

    def wire_version(self, peer_id: int) -> int:
        """The wire version negotiated with ``peer_id`` so far."""
        return self._peer_versions.get(peer_id, BASE_VERSION)

    def _span_contexts(
        self, updates: List[StoreUpdate], now: float
    ) -> List[Dict[str, Any]]:
        """The ``spans`` payload field for an outbound update list."""
        contexts = []
        for update in updates:
            trace = trace_id_of(update)
            contexts.append(
                SpanContext(
                    trace=trace, hop=self._span_hops.get(trace), sent_at=now
                ).to_wire()
            )
        return contexts

    def _record_deliveries(
        self,
        pairs: List[Tuple[StoreUpdate, ApplyResult]],
        src: int,
        ctxs: Optional[List[Optional[SpanContext]]] = None,
        now: Optional[float] = None,
    ) -> None:
        """Account one batch of deliveries from peer ``src``.

        Learns this node's hop distance from each update's origin (the
        sender's hop + 1, when the sender sent a trace context) and
        emits one delivery span per update.  The trace id is always
        derived locally from the update itself — the wire context only
        contributes hop and send-time, so a garbled context cannot
        reroute a span into another update's tree.
        """
        if not pairs:
            return
        if now is None:
            now = time.time()
        has_sinks = self.bus.has_sinks
        with self.profiler.phase("emit"):
            for index, (update, result) in enumerate(pairs):
                ctx = ctxs[index] if ctxs is not None and index < len(ctxs) else None
                trace = trace_id_of(update)
                hop = None
                if ctx is not None and ctx.hop is not None:
                    hop = ctx.hop + 1
                if result.was_news and hop is not None:
                    self._span_hops.setdefault(trace, hop)
                if has_sinks:
                    emit_delivery_span(
                        self.bus,
                        node=self.node_id,
                        update=update,
                        result=result,
                        trace=trace,
                        src=src,
                        hop=hop,
                        sent_at=None if ctx is None else ctx.sent_at,
                        first=result.was_news,
                        time=now,
                    )

    def _ack(self, payload: Dict[str, Any]) -> Message:
        return Message(type=MessageType.ACK, sender=self.node_id, payload=payload)

    def _note_news(
        self, updates: List[StoreUpdate], now: Optional[float] = None
    ) -> None:
        if now is None:
            now = time.time()
        for update in updates:
            if update.key not in self.stats.received:
                self.stats.received[update.key] = now
                self.bus.emit(
                    EventKind.NEWS_RECEIVED,
                    node=self.node_id,
                    time=now,
                    key=str(update.key),
                )

    def _note_reactivation(self, update: StoreUpdate, result: ApplyResult) -> None:
        if result is ApplyResult.RESURRECTION_BLOCKED:
            # A dormant death certificate met obsolete data and woke up
            # (Section 2's antibody); the same event the simulator emits.
            self.bus.emit(
                EventKind.DEATH_CERT_ACTIVATED,
                node=self.node_id,
                key=str(update.key),
            )

    def _peer_event(
        self, kind: str, info: PeerInfo, attempt: int, error: BaseException
    ) -> None:
        self.bus.emit(
            EventKind.PEER_RETRY if kind == "retry" else EventKind.PEER_FAILURE,
            node=self.node_id,
            partner=info.node_id,
            attempt=attempt,
            error=type(error).__name__,
        )


def _rejected(reply: Message) -> bool:
    return reply.type is MessageType.ACK and bool(reply.payload.get("rejected"))


def _decode_mode(payload: Dict[str, Any]) -> ExchangeMode:
    mode = _MODES_BY_VALUE.get(payload.get("mode"))
    if mode is None:
        raise WireError(f"bad exchange mode {payload.get('mode')!r}")
    return mode


def _beats(challenger: StoreUpdate, incumbent: StoreUpdate) -> bool:
    from repro.protocols.base import entry_beats

    return entry_beats(challenger.entry, incumbent.entry)
