"""Outbound connection management: one :class:`Peer` per remote node.

A gossip conversation is a request/reply round trip.  Real links fail
in all the ways the paper's "unreliable network" phrase glosses over:
connections are refused while a node restarts, a peer accepts and then
stalls, a frame is cut off mid-send.  :meth:`Peer.call` wraps one
round trip in per-attempt timeouts and retries with exponential
backoff, reconnecting after any failure.

The :class:`InFlightBudget` mirrors the simulator's connection limits
(:mod:`repro.sim.transport`): a node holds at most ``limit`` outbound
conversations at once, just as the paper's servers could hold only a
few simultaneous conversations.  (The *inbound* half of that policy —
rejection and hunting — lives in :mod:`repro.net.node`.)
"""

from __future__ import annotations

import asyncio
import dataclasses
from typing import Callable, List, Optional, Tuple

from repro.net.membership import PeerInfo
from repro.net.wire import Message, WireError, encode_message, read_message

#: Observer signature: ``observer(kind, peer_info, attempt, error)`` with
#: ``kind`` one of ``"retry"`` (another attempt follows) or ``"failure"``
#: (the call is exhausted).  Used by :class:`repro.net.node.GossipNode`
#: to emit ``peer-retry`` / ``peer-failure`` observability events.
PeerObserver = Callable[[str, PeerInfo, int, BaseException], None]


class PeerError(Exception):
    """A conversation with a peer failed after all retries."""


@dataclasses.dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Timeouts and exponential backoff for one peer's conversations.

    ``attempts`` counts total tries; between consecutive tries the
    client sleeps ``backoff_base * backoff_factor**i`` seconds, capped
    at ``backoff_max``.
    """

    connect_timeout: float = 2.0
    io_timeout: float = 5.0
    attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.connect_timeout <= 0 or self.io_timeout <= 0:
            raise ValueError("timeouts must be positive")
        if self.backoff_base < 0 or self.backoff_factor < 1 or self.backoff_max < 0:
            raise ValueError("bad backoff parameters")

    def backoff_schedule(self) -> List[float]:
        """The sleep before each retry (``attempts - 1`` values)."""
        return [
            min(self.backoff_base * self.backoff_factor**i, self.backoff_max)
            for i in range(self.attempts - 1)
        ]


#: Failures worth retrying: refused/reset connections, timeouts, and
#: broken frames (a peer dying mid-send surfaces as WireError).
_RETRYABLE = (OSError, asyncio.TimeoutError, TimeoutError, WireError)


class Peer:
    """A client for one remote gossip node.

    The underlying TCP connection is cached between calls and replaced
    after any failure.  One ``Peer`` serves one conversation at a time
    (an internal lock serializes concurrent callers), matching the
    paper's model of a conversation as an exclusive connection.

    ``bytes_sent`` / ``frames_sent`` count outbound request traffic
    (framing prefix included) so callers can compare wire formats —
    the same conversation shrinks when the peer negotiates the binary
    v4 codec instead of JSON.
    """

    def __init__(
        self,
        info: PeerInfo,
        policy: RetryPolicy = RetryPolicy(),
        observer: Optional[PeerObserver] = None,
    ):
        self.info = info
        self.policy = policy
        self.observer = observer
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()
        self.calls = 0
        self.failures = 0        # failed attempts (may be retried)
        self.exhausted = 0       # calls that failed every attempt
        self.bytes_sent = 0      # request frames, framing prefix included
        self.frames_sent = 0

    @property
    def node_id(self) -> int:
        return self.info.node_id

    @property
    def connected(self) -> bool:
        return self._writer is not None and not self._writer.is_closing()

    async def call(self, message: Message) -> Message:
        """One request/reply round trip, with retry and backoff."""
        policy = self.policy
        backoffs = policy.backoff_schedule()
        async with self._lock:
            self.calls += 1
            last_error: Optional[BaseException] = None
            for attempt in range(policy.attempts):
                try:
                    return await self._call_once(message)
                except _RETRYABLE as error:
                    last_error = error
                    self.failures += 1
                    await self._teardown()
                    if attempt < len(backoffs):
                        self._observe("retry", attempt, error)
                        await asyncio.sleep(backoffs[attempt])
            self.exhausted += 1
            self._observe("failure", policy.attempts, last_error)
            raise PeerError(
                f"{self.info}: no reply after {policy.attempts} attempts "
                f"({type(last_error).__name__}: {last_error})"
            ) from last_error

    def _observe(self, kind: str, attempt: int, error: Optional[BaseException]) -> None:
        if self.observer is not None and error is not None:
            try:
                self.observer(kind, self.info, attempt, error)
            except Exception:
                pass  # observability must never break the conversation

    async def _call_once(self, message: Message) -> Message:
        reader, writer = await self._ensure_connected()
        frame = encode_message(message)
        self.bytes_sent += len(frame)
        self.frames_sent += 1
        writer.write(frame)
        await asyncio.wait_for(writer.drain(), self.policy.io_timeout)
        reply = await asyncio.wait_for(read_message(reader), self.policy.io_timeout)
        if reply is None:
            raise WireError("peer closed the connection before replying")
        return reply

    async def _ensure_connected(
        self,
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self.connected:
            return self._reader, self._writer  # type: ignore[return-value]
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.info.host, self.info.port),
            self.policy.connect_timeout,
        )
        self._reader, self._writer = reader, writer
        return reader, writer

    async def _teardown(self) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass

    async def close(self) -> None:
        async with self._lock:
            await self._teardown()


class InFlightBudget:
    """Bounds a node's concurrent outbound conversations.

    The asyncio analogue of the simulator's
    :class:`repro.sim.transport.ConnectionPolicy` limit, on the
    initiator side: gossip loops acquire a slot before starting an
    exchange, so a slow peer cannot pile up unbounded conversations.

    Use as an async context manager::

        async with budget:
            await peer.call(...)
    """

    def __init__(self, limit: int):
        if limit < 1:
            raise ValueError("in-flight limit must be >= 1")
        self.limit = limit
        self._semaphore = asyncio.Semaphore(limit)
        self._active = 0

    @property
    def in_flight(self) -> int:
        return self._active

    @property
    def available(self) -> int:
        return self.limit - self._active

    async def __aenter__(self) -> "InFlightBudget":
        await self._semaphore.acquire()
        self._active += 1
        return self

    async def __aexit__(self, *exc_info) -> None:
        self._active -= 1
        self._semaphore.release()
