"""Launch and measure localhost gossip clusters.

:class:`LiveCluster` boots N :class:`~repro.net.node.GossipNode`\\ s on
real TCP sockets (pre-bound ephemeral ports, so parallel test runs
never collide), and talks to them the way any external client would:
over the wire, with MAIL injections and CHECKSUM probes.

:func:`live_demo` is the measurement harness behind
``python -m repro live-demo``: inject one update, optionally kill and
restart a node mid-run, wait for every store's checksum to agree, and
report the paper's observables.  All nodes share one
:class:`~repro.obs.events.EventBus`; a
:class:`~repro.obs.convergence.ConvergenceTracker` sink on that bus is
the *only* source of the reported ``t_ave`` / ``t_last`` / ``residue``
/ traffic numbers — so replaying a ``--trace-file`` JSONL through
:meth:`ConvergenceTracker.from_events` reproduces the printed report
exactly.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import math
import socket
import time
from typing import Any, Dict, List, Optional

from repro.net.membership import Membership
from repro.net.node import GossipNode, NodeConfig
from repro.net.peer import Peer, PeerError, RetryPolicy
from repro.net.wire import Message, MessageType
from repro.obs.convergence import ConvergenceTracker
from repro.obs.events import HARNESS_NODE, EventBus, EventKind, JsonlTraceWriter

#: Sender id the harness uses on the wire; negative ids are reserved
#: for clients that are not roster members.
CLIENT_ID = -1


def _bind_ephemeral(n: int, host: str = "127.0.0.1") -> List[socket.socket]:
    """Pre-bind ``n`` listening sockets on ephemeral ports.

    Binding before building the roster removes the pick-a-port race
    entirely: the ports in the membership file are already ours.
    """
    socks = []
    for __ in range(n):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        socks.append(sock)
    return socks


class LiveCluster:
    """N gossip nodes on localhost, plus a client-side view of them."""

    def __init__(
        self,
        membership: Membership,
        config: NodeConfig,
        bus: Optional[EventBus] = None,
    ):
        self.membership = membership
        self.config = config
        # One bus for the whole cluster: every node (including ones
        # restarted after a kill) emits into the same event stream.
        self.bus = bus if bus is not None else EventBus()
        self.nodes: Dict[int, GossipNode] = {}
        self._probes: Dict[int, Peer] = {}

    @classmethod
    async def launch(
        cls,
        n: int,
        config: NodeConfig = NodeConfig(),
        host: str = "127.0.0.1",
        bus: Optional[EventBus] = None,
    ) -> "LiveCluster":
        if n < 2:
            raise ValueError("a cluster needs at least two nodes")
        socks = _bind_ephemeral(n, host)
        ports = [sock.getsockname()[1] for sock in socks]
        membership = Membership.localhost(ports, host=host)
        cluster = cls(membership, config, bus=bus)
        try:
            for node_id, sock in enumerate(socks):
                node = GossipNode(node_id, membership, config, bus=cluster.bus)
                await node.start(sock=sock)
                cluster.nodes[node_id] = node
        except BaseException:
            await cluster.stop()
            raise
        return cluster

    async def stop(self) -> None:
        for node in self.nodes.values():
            await node.stop()
        for probe in self._probes.values():
            await probe.close()
        self._probes.clear()

    # -- node churn --------------------------------------------------------

    async def kill(self, node_id: int) -> None:
        """Stop a node abruptly; its in-memory store is lost."""
        node = self.nodes.pop(node_id)
        await node.stop()
        probe = self._probes.pop(node_id, None)
        if probe is not None:
            await probe.close()

    async def restart(self, node_id: int) -> GossipNode:
        """Bring a killed node back, empty, on its roster address.

        The restarted replica starts from nothing — anti-entropy must
        catch it up, exactly like the paper's recovering site.
        """
        if node_id in self.nodes:
            raise ValueError(f"node {node_id} is still running")
        node = GossipNode(node_id, self.membership, self.config, bus=self.bus)
        await node.start()
        self.nodes[node_id] = node
        return node

    # -- wire-level client operations -------------------------------------

    def _probe_peer(self, node_id: int) -> Peer:
        probe = self._probes.get(node_id)
        if probe is None:
            probe = Peer(
                self.membership.get(node_id),
                RetryPolicy(connect_timeout=2.0, io_timeout=5.0, attempts=2),
            )
            self._probes[node_id] = probe
        return probe

    async def inject(self, node_id: int, key: str, value: Any) -> Message:
        """Client write, over TCP, at one node."""
        return await self._probe_peer(node_id).call(
            Message(
                type=MessageType.MAIL,
                sender=CLIENT_ID,
                payload={"key": key, "value": value},
            )
        )

    async def delete_key(self, node_id: int, key: str) -> Message:
        """Client delete, over TCP: the node issues a death certificate."""
        return await self._probe_peer(node_id).call(
            Message(
                type=MessageType.MAIL,
                sender=CLIENT_ID,
                payload={"key": key, "delete": True},
            )
        )

    async def read(self, node_id: int, key: str) -> Dict[str, Any]:
        """Client read, over TCP: one node's current view of ``key``
        (``found``, ``timestamp``, ``value``), without touching gossip."""
        reply = await self._probe_peer(node_id).call(
            Message(
                type=MessageType.MAIL,
                sender=CLIENT_ID,
                payload={"read": key},
            )
        )
        return reply.payload

    async def probe(self, node_id: int) -> Dict[str, Any]:
        """CHECKSUM status probe of one node."""
        reply = await self._probe_peer(node_id).call(
            Message(
                type=MessageType.CHECKSUM,
                sender=CLIENT_ID,
                payload={"probe": True},
            )
        )
        return reply.payload

    async def probe_all(self) -> Dict[int, Dict[str, Any]]:
        results: Dict[int, Dict[str, Any]] = {}
        for node_id in sorted(self.nodes):
            results[node_id] = await self.probe(node_id)
        return results

    async def status(self, node_id: int) -> Dict[str, Any]:
        """STATUS introspection of one node: identity, census, and its
        full metrics-registry snapshot (served even while gossip
        conversations are being refused)."""
        reply = await self._probe_peer(node_id).call(
            Message(type=MessageType.STATUS, sender=CLIENT_ID)
        )
        return reply.payload

    async def status_all(self) -> Dict[int, Dict[str, Any]]:
        results: Dict[int, Dict[str, Any]] = {}
        for node_id in sorted(self.nodes):
            results[node_id] = await self.status(node_id)
        return results

    async def converged(self, key: Optional[str] = None) -> bool:
        """All running nodes agree (equal checksums, non-empty stores);
        with ``key``, every node must additionally have received it."""
        try:
            probes = await self.probe_all()
        except PeerError:
            return False
        if not probes:
            return False
        checksums = {p["checksum"] for p in probes.values()}
        if len(checksums) != 1 or not all(p["entries"] for p in probes.values()):
            return False
        if key is not None:
            return all(key in p["received"] for p in probes.values())
        return True

    async def wait_converged(
        self, key: Optional[str] = None, timeout: float = 30.0, poll: float = 0.05
    ) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if await self.converged(key):
                return True
            await asyncio.sleep(poll)
        return False


# ---------------------------------------------------------------------------
# The live-demo harness
# ---------------------------------------------------------------------------


@dataclasses.dataclass(slots=True)
class NodeReport:
    """Per-site traffic as seen by one node's own counters."""

    node_id: int
    entries: int
    exchanges: int
    updates_shipped: int
    updates_absorbed: int
    frames_sent: int
    frames_received: int
    rejections: int
    receipt_delay: Optional[float]   # seconds after injection; None = never


@dataclasses.dataclass(slots=True)
class ClusterReport:
    """What one live-demo run measured.

    The headline numbers (``t_ave``, ``t_last``, ``residue``,
    ``updates_per_site``) come from the cluster-wide event stream via
    :class:`~repro.obs.convergence.ConvergenceTracker`; the per-node
    rows come from each node's own counters, probed over the wire.
    """

    n: int
    key: str
    converged: bool
    wall_seconds: float              # injection -> converged
    t_ave: float                     # paper delay metrics (seconds)
    t_last: float
    residue: float
    updates_per_site: float          # the paper's m, over live nodes
    nodes: List[NodeReport]
    churned_node: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (``--json``); NaN delays become null."""
        blob = dataclasses.asdict(self)
        for field in ("t_ave", "t_last"):
            if math.isnan(blob[field]):
                blob[field] = None
        return blob

    def lines(self) -> List[str]:
        out = [
            f"nodes={self.n} key={self.key!r} converged={self.converged} "
            f"in {self.wall_seconds:.2f}s wall",
            f"delay: t_ave={self.t_ave:.3f}s t_last={self.t_last:.3f}s "
            f"residue={self.residue:.3f} updates/site={self.updates_per_site:.1f}",
        ]
        if self.churned_node is not None:
            out.append(
                f"churn: node {self.churned_node} was killed mid-run and "
                "restarted empty; anti-entropy caught it up"
            )
        header = (
            f"{'node':>4} {'entries':>7} {'exchanges':>9} {'upd sent':>8} "
            f"{'upd recv':>8} {'frames out':>10} {'frames in':>9} "
            f"{'rejects':>7} {'delay(s)':>8}"
        )
        out.append(header)
        for row in self.nodes:
            delay = f"{row.receipt_delay:.3f}" if row.receipt_delay is not None else "-"
            out.append(
                f"{row.node_id:>4} {row.entries:>7} {row.exchanges:>9} "
                f"{row.updates_shipped:>8} {row.updates_absorbed:>8} "
                f"{row.frames_sent:>10} {row.frames_received:>9} "
                f"{row.rejections:>7} {delay:>8}"
            )
        return out


#: Backwards-compatible alias for the pre-rename report type.
LiveDemoReport = ClusterReport


async def live_demo(
    nodes: int = 8,
    config: NodeConfig = NodeConfig(),
    churn: bool = False,
    timeout: float = 30.0,
    key: str = "printer:bldg-35",
    value: Any = "10.0.7.12",
    trace_file: Optional[str] = None,
    metrics_file: Optional[str] = None,
) -> ClusterReport:
    """Boot a cluster, inject one update, measure its epidemic.

    With ``churn=True`` the highest-numbered node is killed right after
    the injection and restarted (with an empty store) once the others
    have converged — demonstrating that losing a node never blocks the
    rest, and that anti-entropy repopulates a recovered replica.

    ``trace_file`` streams every bus event to a JSONL file
    (:class:`~repro.obs.events.JsonlTraceWriter`); the run opens with a
    ``run-started`` event so :meth:`ConvergenceTracker.from_events` can
    recompute this function's exact report from the trace alone.
    ``metrics_file`` dumps each node's final STATUS snapshot (metrics
    registry included) as one JSON object keyed by node id.
    """
    bus = EventBus()
    tracker = ConvergenceTracker(n=nodes, key=key)
    bus.add_sink(tracker.observe)
    # flush_every=1: a live demo may be SIGTERMed (CI timeouts, ^C) and
    # the tail of the trace is exactly the part that matters then.
    writer = (
        JsonlTraceWriter(trace_file, flush_every=1)
        if trace_file is not None
        else None
    )
    if writer is not None:
        bus.add_sink(writer)
    statuses: Dict[int, Dict[str, Any]] = {}
    try:
        cluster = await LiveCluster.launch(nodes, config, bus=bus)
        victim = max(cluster.nodes) if churn else None
        try:
            bus.emit(
                EventKind.RUN_STARTED,
                node=HARNESS_NODE,
                n=nodes,
                key=key,
                churn=churn,
            )
            injected_at = time.time()
            await cluster.inject(0, key, value)
            if victim is not None:
                await cluster.kill(victim)
                survivors_ok = await cluster.wait_converged(key, timeout=timeout)
                await cluster.restart(victim)
                converged = survivors_ok and await cluster.wait_converged(
                    key, timeout=timeout
                )
            else:
                converged = await cluster.wait_converged(key, timeout=timeout)
            wall = time.time() - injected_at
            probes = await cluster.probe_all()
            if metrics_file is not None:
                statuses = await cluster.status_all()
        finally:
            await cluster.stop()
    finally:
        if writer is not None:
            bus.remove_sink(writer)
            writer.close()
    if metrics_file is not None:
        with open(metrics_file, "w", encoding="utf-8") as handle:
            json.dump(
                {str(node_id): status for node_id, status in statuses.items()},
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")

    rows: List[NodeReport] = []
    for node_id, payload in sorted(probes.items()):
        rows.append(
            NodeReport(
                node_id=node_id,
                entries=payload["entries"],
                exchanges=payload["exchanges"],
                updates_shipped=payload["updates_shipped"],
                updates_absorbed=payload["updates_absorbed"],
                frames_sent=sum(payload["frames_sent"].values()),
                frames_received=sum(payload["frames_received"].values()),
                rejections=payload["rejections_in"] + payload["rejections_out"],
                receipt_delay=tracker.delay_of(node_id),
            )
        )
    return ClusterReport(
        n=nodes,
        key=key,
        converged=converged,
        wall_seconds=wall,
        t_ave=tracker.t_ave,
        t_last=tracker.t_last,
        residue=tracker.residue,
        updates_per_site=tracker.traffic_per_site,
        nodes=rows,
        churned_node=victim,
    )


async def query_status(config_path: str, node_id: int) -> Dict[str, Any]:
    """Ask one roster node for its STATUS snapshot, over TCP.

    The client side of ``python -m repro status --config ... --id N``:
    loads the membership roster, sends one ``STATUS`` frame, and
    returns the reply payload (identity, S/I/R census, receipt times,
    metrics-registry snapshot).
    """
    membership = Membership.load(config_path)
    peer = Peer(
        membership.get(node_id),
        RetryPolicy(connect_timeout=2.0, io_timeout=5.0, attempts=2),
    )
    try:
        reply = await peer.call(Message(type=MessageType.STATUS, sender=CLIENT_ID))
    finally:
        await peer.close()
    return reply.payload


async def serve_node(
    config_path: str, node_id: int, node_config: NodeConfig = NodeConfig()
) -> None:
    """Run one roster node until cancelled (``python -m repro node``)."""
    membership = Membership.load(config_path)
    node = GossipNode(node_id, membership, node_config)
    await node.start()
    try:
        await asyncio.Event().wait()  # serve forever
    finally:
        await node.stop()
