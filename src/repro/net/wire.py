"""Wire framing for the live gossip runtime.

A frame is a 4-byte big-endian length prefix followed by a UTF-8 JSON
body::

    {"v": 1, "max": 2, "type": "push", "sender": 3, "payload": {...}}

The versioned header lets incompatible future formats be rejected
cleanly instead of misparsed.  Bodies reuse the checkpoint codec of
:mod:`repro.core.serialize` for entries, so anything that crosses the
wire is exactly what a checkpoint would contain — death certificates
with activation timestamps and retention lists included.

**Version negotiation.**  ``v`` is the version this frame is written
in; ``max`` advertises the highest version the sender understands.
Decoders (including the original v1 decoder) ignore unknown top-level
and payload keys, so the advert is backward compatible: a v1 peer sees
a plain v1 frame and never learns about ``max``.  A node replies at
``min(own max, peer's advertised max)`` — see :func:`negotiated_version`
— and only attaches v2-only payload fields (the per-update trace
contexts of :mod:`repro.obs.spans`) once the peer has advertised v2.
v2 changes nothing else: every v1 field keeps its meaning.  v3 adds the
``TREE`` message type (hierarchical-checksum drill-down) and the
``buckets``/``bits`` fields on ``PUSH`` payloads that scope an offer to
a set of hash buckets; a node never sends either to a peer that has not
advertised v3, falling back to the v1/v2 exchange instead, so v1 and v2
peers see exactly the traffic they always did.  v4 changes the *body
encoding* only: the same messages travel as MessagePack behind a
one-byte magic (:mod:`repro.net.binwire`) instead of JSON text.  The
first body byte (0xC1, impossible in JSON) discriminates, so a v4 node
decodes both formats and — as with every prior version — writes v4
bodies only to peers that advertised v4.

Message types map onto the paper's mechanisms:

========================  ====================================================
``PUSH``                  anti-entropy offer (initiator's full table); the
                          responder applies newer entries and answers with a
                          ``PULL_REPLY`` (push-pull) or ``ACK`` (push only)
``PULL_REQUEST``          anti-entropy offer used purely as a digest: nothing
                          is applied at the responder, which answers with the
                          entries the initiator lacks in a ``PULL_REPLY``
``PULL_REPLY``            the responder's half of an exchange
``CHECKSUM``              Section 1.3's cheap first phase (recent update list
                          + database checksum), and — with ``{"probe": true}``
                          — a read-only status probe used by the demo harness
``RUMOR``                 hot-rumor push (Section 1.4); the ``ACK`` carries
                          per-update was-news feedback for the sender's
                          counters
``MAIL``                  direct mail between peers, or a client injection
                          (``{"key": ..., "value": ...}``) stamped by the
                          receiving node's clock
``STATUS``                live introspection: any client can ask a node for
                          its metrics-registry snapshot and S/I/R census; the
                          reply is a ``STATUS`` frame and is served even when
                          the node is refusing gossip conversations
``ACK``                   generic reply: feedback, probe results, rejections
``TREE``                  (v3) one level of a hierarchical-checksum
                          drill-down: the initiator sends checksum-tree
                          nodes, the responder answers with the children
                          that differ and the dirty buckets reached
========================  ====================================================

All decoding is strict: malformed frames raise :class:`WireError`, and
oversized frames are rejected before allocation so a bad peer cannot
balloon memory.
"""

from __future__ import annotations

import asyncio
import dataclasses
import enum
import json
import struct
from typing import Any, Dict, Optional

from repro.core.serialize import SerializeError

#: Highest wire version this build speaks.
PROTOCOL_VERSION = 4
#: The version frames are stamped with by default — the floor every
#: peer understands.
BASE_VERSION = 1
#: Versions this decoder accepts.
SUPPORTED_VERSIONS = frozenset({1, 2, 3, 4})
#: First version whose payloads may carry per-update trace contexts.
TRACE_WIRE_VERSION = 2
#: First version that understands ``TREE`` drill-down frames and
#: bucket-scoped ``PUSH`` payloads.
TREE_WIRE_VERSION = 3
#: First version whose bodies are binary (MessagePack behind a magic
#: byte, :mod:`repro.net.binwire`) instead of UTF-8 JSON.  Semantically
#: identical to v3: same message types, same payload fields.
BINARY_WIRE_VERSION = 4

#: Hard ceiling on one frame's body size (16 MiB).  Full-table offers
#: for the demo workloads are a few KiB; this bound exists to stop a
#: malformed or hostile length prefix from forcing a giant allocation.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")
HEADER_BYTES = _HEADER.size


class WireError(Exception):
    """A frame could not be encoded, read, or decoded."""


class MessageType(enum.Enum):
    PUSH = "push"
    PULL_REQUEST = "pull-request"
    PULL_REPLY = "pull-reply"
    CHECKSUM = "checksum"
    RUMOR = "rumor"
    MAIL = "mail"
    STATUS = "status"
    ACK = "ack"
    TREE = "tree"


_TYPES_BY_VALUE = {t.value: t for t in MessageType}


@dataclasses.dataclass(frozen=True, slots=True)
class Message:
    """One framed message: a type, the sending node's id, and a payload.

    ``version`` is the version the frame is (or was) written in;
    ``max_version`` is the sender's advertised ceiling.  Inbound, a
    frame without a ``max`` key (a v1 peer) decodes with
    ``max_version == version``.
    """

    type: MessageType
    sender: int
    payload: Dict[str, Any] = dataclasses.field(default_factory=dict)
    version: int = BASE_VERSION
    max_version: int = PROTOCOL_VERSION


def negotiated_version(message: Message, ours: int = PROTOCOL_VERSION) -> int:
    """The highest version both we and ``message``'s sender speak."""
    return min(ours, message.max_version)


#: Stable small codes for the binary body's type byte.  Append-only:
#: codes are wire format, never renumber.
TYPE_CODES = {
    MessageType.PUSH: 0,
    MessageType.PULL_REQUEST: 1,
    MessageType.PULL_REPLY: 2,
    MessageType.CHECKSUM: 3,
    MessageType.RUMOR: 4,
    MessageType.MAIL: 5,
    MessageType.STATUS: 6,
    MessageType.ACK: 7,
    MessageType.TREE: 8,
}
_TYPES_BY_CODE = {code: t for t, code in TYPE_CODES.items()}


def encode_message(message: Message, max_frame: int = MAX_FRAME_BYTES) -> bytes:
    """Encode ``message`` as one length-prefixed frame.

    Frames stamped at :data:`BINARY_WIRE_VERSION` or later get the
    binary body; earlier versions keep the UTF-8 JSON body, byte for
    byte what a v1-v3 build would write.
    """
    if message.version >= BINARY_WIRE_VERSION:
        from repro.net.binwire import BinWireError, encode_binary_body

        try:
            body = encode_binary_body(
                message.version,
                message.max_version,
                TYPE_CODES[message.type],
                message.sender,
                message.payload,
            )
        except BinWireError as error:
            raise WireError(f"cannot encode binary frame: {error}") from None
    else:
        body = json.dumps(
            {
                "v": message.version,
                "max": message.max_version,
                "type": message.type.value,
                "sender": message.sender,
                "payload": message.payload,
            },
            separators=(",", ":"),
        ).encode("utf-8")
    if len(body) > max_frame:
        raise WireError(
            f"message of {len(body)} bytes exceeds the {max_frame}-byte frame limit"
        )
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> Message:
    """Decode one frame body (everything after the length prefix).

    The first byte discriminates the format: 0xC1 opens a v4 binary
    body, anything else is parsed as the JSON object of v1-v3.
    """
    if body[:1] == b"\xc1":
        return _decode_binary_body(body)
    try:
        blob = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(f"frame body is not valid JSON: {error}") from None
    if not isinstance(blob, dict):
        raise WireError(f"frame body must be an object, got {type(blob).__name__}")
    version = blob.get("v")
    if version not in SUPPORTED_VERSIONS:
        raise WireError(
            f"unsupported wire version {version!r} "
            f"(this node speaks up to {PROTOCOL_VERSION})"
        )
    max_version = blob.get("max", version)
    if not isinstance(max_version, int) or isinstance(max_version, bool):
        max_version = version
    max_version = max(version, max_version)
    type_name = blob.get("type")
    message_type = _TYPES_BY_VALUE.get(type_name)
    if message_type is None:
        raise WireError(f"unknown message type {type_name!r}")
    sender = blob.get("sender")
    if not isinstance(sender, int) or isinstance(sender, bool):
        raise WireError(f"sender must be a node id, got {sender!r}")
    payload = blob.get("payload", {})
    if not isinstance(payload, dict):
        raise WireError(f"payload must be an object, got {type(payload).__name__}")
    return Message(
        type=message_type,
        sender=sender,
        payload=payload,
        version=version,
        max_version=max_version,
    )


def _decode_binary_body(body: bytes) -> Message:
    from repro.net.binwire import BinWireError, decode_binary_body

    try:
        version, max_version, type_code, sender, payload = decode_binary_body(body)
    except BinWireError as error:
        raise WireError(f"bad binary frame: {error}") from None
    if version not in SUPPORTED_VERSIONS or version < BINARY_WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version!r} "
            f"(this node speaks up to {PROTOCOL_VERSION})"
        )
    message_type = _TYPES_BY_CODE.get(type_code)
    if message_type is None:
        raise WireError(f"unknown message type code {type_code}")
    return Message(
        type=message_type,
        sender=sender,
        payload=payload,
        version=version,
        max_version=max(version, max_version),
    )


async def read_message(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME_BYTES
) -> Optional[Message]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary.

    EOF in the middle of a frame (a peer dying mid-send) and malformed
    bodies raise :class:`WireError`.
    """
    try:
        header = await reader.readexactly(HEADER_BYTES)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close between frames
        raise WireError("connection closed mid-header") from None
    (length,) = _HEADER.unpack(header)
    if length == 0:
        raise WireError("zero-length frame")
    if length > max_frame:
        raise WireError(
            f"incoming frame of {length} bytes exceeds the {max_frame}-byte limit"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise WireError(
            f"connection closed mid-frame ({len(error.partial)}/{length} bytes)"
        ) from None
    return decode_body(body)


def payload_updates(payload: Dict[str, Any], field: str = "updates"):
    """Decode a list of store updates out of a message payload.

    Wraps :class:`repro.core.serialize.SerializeError` into
    :class:`WireError` so transport code has a single failure type for
    "the peer sent garbage".
    """
    from repro.core.serialize import decode_updates

    try:
        return decode_updates(payload.get(field, []))
    except SerializeError as error:
        raise WireError(f"bad {field!r} in payload: {error}") from None


def payload_span_contexts(
    payload: Dict[str, Any], count: int, field: str = "spans"
) -> list:
    """Decode the per-update trace contexts riding beside an update list.

    Returns one ``Optional[SpanContext]`` per update.  Trace contexts
    are observability, not data: anything missing or malformed — absent
    field (a v1 peer), wrong length, wrong types — degrades to ``None``
    entries instead of raising, so a bad span annotation can never
    poison an otherwise valid exchange.
    """
    from repro.obs.spans import SpanContext

    blobs = payload.get(field)
    if not isinstance(blobs, list) or len(blobs) != count:
        return [None] * count
    return [SpanContext.from_wire(blob) for blob in blobs]


def payload_tree_nodes(
    payload: Dict[str, Any], field: str = "nodes"
) -> list[tuple[int, int]]:
    """Decode a ``[[node_id, checksum], ...]`` list from a TREE payload.

    Unlike span contexts, tree nodes are *data*: a malformed list means
    the drill-down cannot proceed, so garbage raises :class:`WireError`
    rather than degrading.  Node ids must be positive and checksums
    non-negative integers (JSON carries Python's arbitrary-precision
    ints, so 128-bit checksum values round-trip exactly).
    """
    blobs = payload.get(field, [])
    if not isinstance(blobs, list):
        raise WireError(f"bad {field!r} in payload: expected an array")
    nodes: list[tuple[int, int]] = []
    for blob in blobs:
        if (
            not isinstance(blob, (list, tuple))
            or len(blob) != 2
            or not isinstance(blob[0], int)
            or isinstance(blob[0], bool)
            or not isinstance(blob[1], int)
            or isinstance(blob[1], bool)
            or blob[0] < 1
            or blob[1] < 0
        ):
            raise WireError(
                f"bad {field!r} in payload: expected [node_id, checksum] pairs, "
                f"got {blob!r}"
            )
        nodes.append((blob[0], blob[1]))
    return nodes


def payload_bucket_list(payload: Dict[str, Any], field: str = "dirty") -> list[int]:
    """Decode a list of bucket indexes from a TREE payload."""
    blobs = payload.get(field, [])
    if not isinstance(blobs, list) or not all(
        isinstance(b, int) and not isinstance(b, bool) and b >= 0 for b in blobs
    ):
        raise WireError(f"bad {field!r} in payload: expected bucket indexes")
    return list(blobs)
