"""Runtime-agnostic observability: events, metrics, convergence, lineage.

One instrumentation layer for both runtimes.  The simulator
(:mod:`repro.cluster`) and the live asyncio nodes (:mod:`repro.net`)
emit the same typed events onto an :class:`EventBus` and count into the
same :class:`MetricsRegistry`; :class:`ConvergenceTracker` turns either
stream into the paper's residue / traffic / delay observables, and
:class:`LineageIndex` rebuilds per-update infection trees from the
delivery-span stream (:mod:`repro.obs.spans`).  :class:`Profiler`
phase timers attribute wall time to the stages of a gossip round.  See
``docs/observability.md`` for the event taxonomy, metric names, span
schema, and trace format.
"""

from repro.obs.convergence import ConvergenceReport, ConvergenceTracker
from repro.obs.events import (
    Event,
    EventBus,
    EventKind,
    HARNESS_NODE,
    JsonlTraceWriter,
    RingBufferSink,
    TraceError,
    read_trace,
)
from repro.obs.lineage import InfectionTree, LineageIndex, render_analysis
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.profiling import NULL_PROFILER, Profiler
from repro.obs.spans import (
    DeliverySpan,
    SpanContext,
    TraceHopLru,
    emit_delivery_span,
    span_of_event,
    trace_id_of,
)

__all__ = [
    "ConvergenceReport",
    "ConvergenceTracker",
    "Counter",
    "DeliverySpan",
    "Event",
    "EventBus",
    "EventKind",
    "Gauge",
    "HARNESS_NODE",
    "Histogram",
    "InfectionTree",
    "JsonlTraceWriter",
    "LineageIndex",
    "MetricError",
    "MetricsRegistry",
    "NULL_PROFILER",
    "Profiler",
    "RingBufferSink",
    "SpanContext",
    "TraceError",
    "TraceHopLru",
    "emit_delivery_span",
    "read_trace",
    "render_analysis",
    "span_of_event",
    "trace_id_of",
]
