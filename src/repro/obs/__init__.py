"""Runtime-agnostic observability: events, metrics, convergence.

One instrumentation layer for both runtimes.  The simulator
(:mod:`repro.cluster`) and the live asyncio nodes (:mod:`repro.net`)
emit the same typed events onto an :class:`EventBus` and count into the
same :class:`MetricsRegistry`; :class:`ConvergenceTracker` turns either
stream into the paper's residue / traffic / delay observables.  See
``docs/observability.md`` for the event taxonomy, metric names, and
trace schema.
"""

from repro.obs.convergence import ConvergenceReport, ConvergenceTracker
from repro.obs.events import (
    Event,
    EventBus,
    EventKind,
    HARNESS_NODE,
    JsonlTraceWriter,
    RingBufferSink,
    TraceError,
    read_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)

__all__ = [
    "ConvergenceReport",
    "ConvergenceTracker",
    "Counter",
    "Event",
    "EventBus",
    "EventKind",
    "Gauge",
    "HARNESS_NODE",
    "Histogram",
    "JsonlTraceWriter",
    "MetricError",
    "MetricsRegistry",
    "RingBufferSink",
    "TraceError",
    "read_trace",
]
