"""Shared convergence accounting: residue, traffic, t_ave, t_last.

Section 1.4 judges every distribution mechanism by the same three
observables.  This module is the single implementation of that math,
used by three consumers:

* the simulator — :class:`repro.sim.metrics.EpidemicMetrics` *is* a
  :class:`ConvergenceTracker` (a subclass, kept for its import path);
* the live runner — ``repro.net.runner.live_demo`` feeds the tracker
  from the event bus instead of doing its own delay arithmetic;
* trace files — :meth:`ConvergenceTracker.from_events` replays a JSONL
  trace (:func:`repro.obs.events.read_trace`) and recomputes the same
  numbers the run reported, so results are auditable after the fact.

Time units are whatever the event source used (cycles in the
simulator, wall-clock seconds live); the tracker only subtracts them.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Dict, Hashable, Iterable, List, Optional

from repro.obs.events import Event, EventKind


class ConvergenceTracker:
    """Spread statistics for one update epidemic through ``n`` sites.

    Feed it directly (:meth:`record_receipt` and friends) or from an
    event stream (:meth:`observe` / :meth:`from_events`).  Both the
    simulator and the live runtime use *this* object, so "residue" or
    "t_ave" can never mean two subtly different things again.
    """

    def __init__(self, n: int, injection_time: float = 0.0, key: Optional[str] = None):
        if n <= 0:
            raise ValueError("need at least one site")
        self.n = n
        self.injection_time = injection_time
        self.key = key
        self.receipt_times: Dict[Hashable, float] = {}
        self.update_sends = 0
        self.comparisons = 0
        self.cycles_run = 0
        self.rejected_connections = 0

    # -- direct recording --------------------------------------------------

    def record_receipt(self, site: Hashable, time: float) -> None:
        """Record the first time ``site`` learned the update."""
        if site not in self.receipt_times:
            self.receipt_times[site] = time

    def record_update_send(self, count: int = 1) -> None:
        self.update_sends += count

    def record_comparison(self, count: int = 1) -> None:
        self.comparisons += count

    def record_rejection(self, count: int = 1) -> None:
        self.rejected_connections += count

    # -- event-stream recording --------------------------------------------

    def _tracks(self, event: Event) -> bool:
        if self.key is None:
            return True
        return event.payload.get("key") == self.key

    def observe(self, event: Event) -> None:
        """Consume one bus event (usable as a sink: ``bus.add_sink(tracker.observe)``)."""
        kind = event.kind
        if kind is EventKind.UPDATE_INJECTED:
            if self._tracks(event):
                if not self.receipt_times:
                    # First injection of the tracked key defines t = 0.
                    self.injection_time = event.time
                self.record_receipt(event.node, event.time)
        elif kind is EventKind.NEWS_RECEIVED:
            if self._tracks(event):
                self.record_receipt(event.node, event.time)
        elif kind is EventKind.EXCHANGE_SETTLED:
            # shipped + received covers both directions of the
            # conversation, matching the sum of the two nodes'
            # updates_shipped counters.
            self.record_update_send(
                int(event.payload.get("shipped", 0))
                + int(event.payload.get("received", 0))
            )
            self.record_comparison()
        elif kind is EventKind.RUMOR_SENT:
            self.record_update_send(int(event.payload.get("shipped", 0)))
        elif kind is EventKind.REJECTION:
            # Both halves of a refusal are evented (direction in/out);
            # count each refused conversation once, on the initiator.
            if event.payload.get("direction") != "in":
                self.record_rejection()
        elif kind is EventKind.CYCLE_COMPLETED:
            self.cycles_run = max(self.cycles_run, int(event.payload.get("cycle", 0)))

    @classmethod
    def from_events(
        cls,
        events: Iterable[Event],
        key: Optional[str] = None,
        n: Optional[int] = None,
    ) -> "ConvergenceTracker":
        """Rebuild a tracker by replaying an event stream.

        ``n`` defaults to the ``run-started`` event's ``n`` field; the
        tracked ``key`` likewise defaults to the one announced there.
        Raises :class:`ValueError` when neither source provides ``n``.
        """
        events = iter(events)
        buffered: List[Event] = []
        for event in events:
            buffered.append(event)
            if event.kind is EventKind.RUN_STARTED:
                if n is None:
                    n = event.payload.get("n")
                if key is None:
                    key = event.payload.get("key")
                break
        if n is None:
            raise ValueError(
                "population size unknown: pass n= or include a run-started event"
            )
        tracker = cls(n=int(n), key=key)
        for event in buffered:
            tracker.observe(event)
        for event in events:
            tracker.observe(event)
        return tracker

    # -- derived quantities ------------------------------------------------

    @property
    def infected(self) -> int:
        return len(self.receipt_times)

    @property
    def residue(self) -> float:
        """Fraction of sites that never received the update."""
        return (self.n - self.infected) / self.n

    @property
    def traffic_per_site(self) -> float:
        """The paper's ``m``: update messages sent per site."""
        return self.update_sends / self.n

    def delays(self) -> List[float]:
        return [t - self.injection_time for t in self.receipt_times.values()]

    @property
    def t_ave(self) -> float:
        """Mean injection-to-arrival delay over receiving sites."""
        delays = self.delays()
        if not delays:
            return math.nan
        return sum(delays) / len(delays)

    @property
    def t_last(self) -> float:
        """Delay until the last receiving site got the update."""
        delays = self.delays()
        if not delays:
            return math.nan
        return max(delays)

    @property
    def complete(self) -> bool:
        return self.infected == self.n

    def delay_of(self, site: Hashable) -> Optional[float]:
        """One site's injection-to-arrival delay (None: never received)."""
        receipt = self.receipt_times.get(site)
        if receipt is None:
            return None
        return receipt - self.injection_time

    def report(self) -> "ConvergenceReport":
        return ConvergenceReport(
            n=self.n,
            key=self.key,
            injection_time=self.injection_time,
            infected=self.infected,
            residue=self.residue,
            t_ave=self.t_ave,
            t_last=self.t_last,
            update_sends=self.update_sends,
            traffic_per_site=self.traffic_per_site,
            comparisons=self.comparisons,
            rejected_connections=self.rejected_connections,
        )


@dataclasses.dataclass(frozen=True, slots=True)
class ConvergenceReport:
    """The paper's observables for one epidemic, as plain data."""

    n: int
    key: Optional[str]
    injection_time: float
    infected: int
    residue: float
    t_ave: float
    t_last: float
    update_sends: int
    traffic_per_site: float
    comparisons: int
    rejected_connections: int

    def to_dict(self) -> Dict[str, Any]:
        blob = dataclasses.asdict(self)
        # NaN is not JSON; absent delays serialize as null.
        for field in ("t_ave", "t_last"):
            if math.isnan(blob[field]):
                blob[field] = None
        return blob
