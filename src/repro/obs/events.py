"""The structured event bus: one stream of typed events from either runtime.

The paper measures every algorithm through the same observables —
residue, traffic, delay (Section 1.4) — regardless of whether the
mechanism is direct mail, anti-entropy, or rumor mongering.  The event
bus gives the repo the same property at the instrumentation layer: the
discrete-event simulator (:mod:`repro.cluster`) and the live asyncio
runtime (:mod:`repro.net`) emit the *same* typed events, so one
consumer (:mod:`repro.obs.convergence`, a JSONL trace file, a test)
works against both.

An :class:`Event` is a kind, a timestamp (wall-clock seconds for the
live runtime, cycles for the simulator), the emitting node's id, and a
JSON-safe payload.  The bus assigns a monotonically increasing
sequence number so event order is total even when timestamps tie.

Sinks are plain callables ``sink(event)``.  Two batteries-included
sinks ship here:

* :class:`JsonlTraceWriter` — one JSON object per line, the trace
  schema documented in ``docs/observability.md``; traces round-trip
  through :func:`read_trace`.
* :class:`RingBufferSink` — a bounded in-memory buffer keeping the most
  recent events (old events are dropped, not the new ones), for live
  introspection and post-run analysis without unbounded growth.

Emitting on a bus with no sinks is a near-no-op (no :class:`Event` is
even constructed), so instrumented code paths can emit unconditionally.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
import json
import pathlib
import time
from collections import deque
from typing import Any, Callable, Dict, Iterator, List, Optional, Union


class EventKind(enum.Enum):
    """The event taxonomy (see docs/observability.md)."""

    # Run/harness lifecycle
    RUN_STARTED = "run-started"
    CYCLE_COMPLETED = "cycle-completed"
    CENSUS = "census"
    # Data plane
    UPDATE_INJECTED = "update-injected"
    NEWS_RECEIVED = "news-received"
    DEATH_CERT_ACTIVATED = "death-cert-activated"
    DELIVERY_SPAN = "delivery-span"
    # Anti-entropy
    EXCHANGE_STARTED = "exchange-started"
    EXCHANGE_SETTLED = "exchange-settled"
    CHECKSUM_HIT = "checksum-hit"
    CHECKSUM_MISS = "checksum-miss"
    # Rumor mongering
    RUMOR_HOT = "rumor-hot"
    RUMOR_DEAD = "rumor-dead"
    RUMOR_SENT = "rumor-sent"
    # Transport health
    REJECTION = "rejection"
    PEER_RETRY = "peer-retry"
    PEER_FAILURE = "peer-failure"
    # Workload (repro.workload): staleness-sampling reads and the
    # per-window steady-state summaries behind the curve outputs.
    READ_SAMPLED = "read-sampled"
    WORKLOAD_WINDOW = "workload-window"


_KINDS_BY_VALUE = {kind.value: kind for kind in EventKind}

#: Node id events carry when they come from a harness/client rather
#: than a roster node (matches ``repro.net.runner.CLIENT_ID``).
HARNESS_NODE = -1


class TraceError(Exception):
    """A trace line could not be decoded back into an :class:`Event`."""


@dataclasses.dataclass(frozen=True, slots=True)
class Event:
    """One observed occurrence.

    ``time`` is whatever clock the emitting runtime uses — wall-clock
    seconds live, simulated cycles in the simulator.  Consumers that
    compute delays only ever *subtract* event times, so the unit rides
    along untouched.
    """

    kind: EventKind
    time: float
    node: int
    seq: int = 0
    payload: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """The JSONL trace representation of this event."""
        return {
            "seq": self.seq,
            "t": self.time,
            "kind": self.kind.value,
            "node": self.node,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, blob: Any) -> "Event":
        if not isinstance(blob, dict):
            raise TraceError(f"trace record must be an object, got {type(blob).__name__}")
        kind = _KINDS_BY_VALUE.get(blob.get("kind"))
        if kind is None:
            raise TraceError(f"unknown event kind {blob.get('kind')!r}")
        t = blob.get("t")
        if not isinstance(t, (int, float)) or isinstance(t, bool):
            raise TraceError(f"bad event time {t!r}")
        node = blob.get("node")
        if not isinstance(node, int) or isinstance(node, bool):
            raise TraceError(f"bad event node {node!r}")
        payload = blob.get("payload", {})
        if not isinstance(payload, dict):
            raise TraceError(f"bad event payload {payload!r}")
        seq = blob.get("seq", 0)
        if not isinstance(seq, int) or isinstance(seq, bool):
            raise TraceError(f"bad event seq {seq!r}")
        return cls(kind=kind, time=float(t), node=node, seq=seq, payload=payload)


#: A sink is any callable taking one event.
EventSink = Callable[[Event], None]


class EventBus:
    """Fan-out point for events: emitters on one side, sinks on the other.

    The bus is deliberately synchronous and in-process: the live
    runtime's nodes share one bus per process (``LiveCluster``), the
    simulator's cluster owns one, and tests attach list sinks directly.
    """

    def __init__(self, clock: Callable[[], float] = time.time):
        self._clock = clock
        self._sinks: List[EventSink] = []
        self._seq = itertools.count()
        self.emitted = 0
        #: Plain attribute mirror of :attr:`active`, maintained by
        #: add_sink/remove_sink.  Emit call sites on simulator hot paths
        #: read it to skip building payload kwargs entirely when nobody
        #: is listening — one attribute load instead of a property call.
        self.has_sinks = False

    def add_sink(self, sink: EventSink) -> EventSink:
        self._sinks.append(sink)
        self.has_sinks = True
        return sink

    def remove_sink(self, sink: EventSink) -> None:
        self._sinks.remove(sink)
        self.has_sinks = bool(self._sinks)

    @property
    def active(self) -> bool:
        """True when at least one sink would see an emitted event."""
        return bool(self._sinks)

    def emit(
        self,
        kind: EventKind,
        node: int = HARNESS_NODE,
        time: Optional[float] = None,
        **payload: Any,
    ) -> Optional[Event]:
        """Emit one event to every sink; returns it (None when no sinks).

        A sink that raises does not stop delivery to the other sinks —
        observability must never take the observed system down — but the
        first error is re-raised after delivery so tests see it.
        """
        if not self._sinks:
            return None
        event = Event(
            kind=kind,
            time=self._clock() if time is None else time,
            node=node,
            seq=next(self._seq),
            payload=payload,
        )
        self.emitted += 1
        first_error: Optional[BaseException] = None
        for sink in self._sinks:
            try:
                sink(event)
            except Exception as error:  # noqa: BLE001 - isolate sinks
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        return event


class RingBufferSink:
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._buffer: deque = deque(maxlen=capacity)
        self.seen = 0

    def __call__(self, event: Event) -> None:
        self._buffer.append(event)
        self.seen += 1

    @property
    def dropped(self) -> int:
        return self.seen - len(self._buffer)

    @property
    def events(self) -> List[Event]:
        return list(self._buffer)

    def of_kind(self, kind: EventKind) -> List[Event]:
        return [event for event in self._buffer if event.kind is kind]

    def clear(self) -> None:
        self._buffer.clear()


class JsonlTraceWriter:
    """Writes each event as one JSON line; usable as a context manager.

    ``flush_every`` bounds how many tail events a killed process can
    lose: the writer flushes the OS-level buffer after every N events
    (``1`` = after each event, for long live runs that may be
    SIGTERMed; ``0`` = never flush until close, for throughput).
    """

    def __init__(self, path: Union[str, pathlib.Path], flush_every: int = 256):
        if flush_every < 0:
            raise ValueError("flush_every must be >= 0")
        self.path = pathlib.Path(path)
        self.flush_every = flush_every
        self._handle = self.path.open("w", encoding="utf-8")
        self.written = 0

    def __call__(self, event: Event) -> None:
        if self._handle.closed:
            return
        self._handle.write(json.dumps(event.to_dict(), separators=(",", ":")) + "\n")
        self.written += 1
        if self.flush_every and self.written % self.flush_every == 0:
            self._handle.flush()

    def flush(self) -> None:
        if not self._handle.closed:
            self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_trace(path: Union[str, pathlib.Path]) -> Iterator[Event]:
    """Yield the events of a JSONL trace file, in file order.

    Blank lines are skipped; malformed lines raise :class:`TraceError`
    with the offending line number.
    """
    with pathlib.Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                blob = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceError(f"{path}:{lineno}: not valid JSON: {error}") from None
            yield Event.from_dict(blob)
