"""Infection-tree reconstruction from the delivery-span stream.

A trace (live or simulated) contains one ``delivery-span`` event per
delivery attempt.  :class:`LineageIndex` groups spans by trace id and
rebuilds, for each traced update, the **infection tree**: who first
delivered the update to whom, at what depth, and how long each hop
took.  On top of the tree it computes the per-update analytics the
aggregate observables can't express:

* per-hop delivery latency (child's first delivery minus parent's);
* hop count / tree depth versus the O(log n) epidemic expectation;
* redundant-delivery counts per link (the traffic the feedback/counter
  variations of Section 1.4 exist to suppress);
* per-link traffic attribution (every delivery, useful or not).

``python -m repro trace analyze <trace.jsonl>`` drives this module;
:func:`render_analysis` produces its human-readable report.
"""

from __future__ import annotations

import math
import statistics
from collections import Counter
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.events import Event, EventKind
from repro.obs.spans import DeliverySpan, span_of_event


class InfectionTree:
    """The reconstructed propagation tree of one traced update."""

    def __init__(self, trace: str):
        self.trace = trace
        self.key: Optional[str] = None
        self.spans: List[DeliverySpan] = []
        #: node -> the span that first delivered the update there.
        self.first_delivery: Dict[int, DeliverySpan] = {}
        #: Extra ``first=True`` spans for an already-infected node
        #: (reinfection after churn, or duplicated instrumentation).
        self.duplicate_first: List[DeliverySpan] = []
        #: (src, dst) -> redundant (non-first) delivery count.
        self.redundant: Counter = Counter()
        #: (src, dst) -> every delivery crossing that link.
        self.link_traffic: Counter = Counter()

    # -- construction -------------------------------------------------

    def add(self, span: DeliverySpan) -> None:
        self.spans.append(span)
        if self.key is None:
            self.key = span.key
        if span.src is not None:
            self.link_traffic[(span.src, span.node)] += 1
        if span.first:
            if span.node in self.first_delivery:
                self.duplicate_first.append(span)
            else:
                self.first_delivery[span.node] = span
        elif span.src is not None:
            self.redundant[(span.src, span.node)] += 1

    # -- structure ----------------------------------------------------

    @property
    def root(self) -> Optional[int]:
        """The injecting node (its first delivery has no source)."""
        for node, span in self.first_delivery.items():
            if span.src is None:
                return node
        return None

    def children(self) -> Dict[Optional[int], List[int]]:
        """parent node -> nodes it first-delivered to, by first delivery."""
        tree: Dict[Optional[int], List[int]] = {}
        for node, span in sorted(self.first_delivery.items()):
            if span.src is None:
                continue
            tree.setdefault(span.src, []).append(node)
        return tree

    def depth_of(self, node: int) -> Optional[int]:
        """Hops from the origin to ``node``'s first delivery.

        Prefers the hop recorded on the span (carried over the wire or
        computed by the emitting runtime); falls back to walking the
        tree, so v1-peer traces without wire hop counts still resolve.
        """
        span = self.first_delivery.get(node)
        if span is None:
            return None
        if span.hop is not None:
            return span.hop
        if span.src is None:
            return 0
        seen = {node}
        depth = 0
        current: Optional[DeliverySpan] = span
        while current is not None and current.src is not None:
            if current.src in seen:  # broken lineage: cycle in src links
                return None
            seen.add(current.src)
            depth += 1
            parent = self.first_delivery.get(current.src)
            if parent is not None and parent.hop is not None:
                return parent.hop + depth
            current = parent
        if current is None:
            return None
        return depth

    @property
    def max_depth(self) -> int:
        depths = [self.depth_of(node) for node in self.first_delivery]
        return max((d for d in depths if d is not None), default=0)

    # -- latency ------------------------------------------------------

    def hop_latency(self, node: int) -> Optional[float]:
        """Delivery latency of the hop *into* ``node``.

        The child's first-delivery time minus the parent's — time units
        are whatever clock the trace used (seconds live, cycles
        simulated).  The root, and orphans whose parent never appears
        as a first delivery, have no hop latency.
        """
        span = self.first_delivery.get(node)
        if span is None or span.src is None:
            return None
        parent = self.first_delivery.get(span.src)
        if parent is None:
            return None
        return span.time - parent.time

    def hop_latencies(self) -> List[Tuple[int, float]]:
        """(node, latency) for every node with a measurable inbound hop."""
        out: List[Tuple[int, float]] = []
        for node in sorted(self.first_delivery):
            latency = self.hop_latency(node)
            if latency is not None:
                out.append((node, latency))
        return out

    def network_latency(self, node: int) -> Optional[float]:
        """Receive time minus the sender's ``sent_at`` clock, if carried."""
        span = self.first_delivery.get(node)
        if span is None or span.sent_at is None:
            return None
        return span.time - span.sent_at

    # -- judgements ---------------------------------------------------

    def infected(self) -> List[int]:
        return sorted(self.first_delivery)

    def complete(self, n: int) -> bool:
        """True when every one of ``n`` nodes was first-delivered once."""
        return len(self.first_delivery) >= n and not self.duplicate_first

    def anomalies(
        self, n: Optional[int] = None, stall_factor: float = 4.0
    ) -> List[str]:
        """Human-readable flags for propagation pathologies."""
        flags: List[str] = []
        for span in self.duplicate_first:
            flags.append(
                f"node {span.node} first-delivered more than once "
                f"(again from {span.src} at t={span.time:g}) — reinfection or churn"
            )
        for node, span in sorted(self.first_delivery.items()):
            if span.src is not None and span.src not in self.first_delivery:
                flags.append(
                    f"orphan edge: node {node} learned from {span.src}, "
                    f"which never appears as a first delivery"
                )
        if n is not None and n > 0:
            missing = n - len(self.first_delivery)
            if missing > 0:
                flags.append(
                    f"incomplete tree: {len(self.first_delivery)}/{n} nodes "
                    f"infected ({missing} never reached)"
                )
            # Epidemic push-pull converges in O(log n) rounds; a chain
            # much deeper than that means propagation degenerated.
            budget = 2 * math.ceil(math.log2(n)) + 2 if n > 1 else 1
            depth = self.max_depth
            if depth > budget:
                flags.append(
                    f"hop count {depth} exceeds the O(log n) budget "
                    f"({budget} for n={n})"
                )
        latencies = [latency for _, latency in self.hop_latencies()]
        if len(latencies) >= 3:
            median = statistics.median(latencies)
            if median > 0:
                for node, latency in self.hop_latencies():
                    if latency > stall_factor * median:
                        flags.append(
                            f"stalled subtree: hop into node {node} took "
                            f"{latency:g} ({latency / median:.1f}x the median hop)"
                        )
        return flags

    # -- export -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace": self.trace,
            "key": self.key,
            "root": self.root,
            "infected": self.infected(),
            "spans": len(self.spans),
            "max_depth": self.max_depth,
            "edges": [
                {
                    "node": node,
                    "src": span.src,
                    "t": span.time,
                    "hop": self.depth_of(node),
                    "latency": self.hop_latency(node),
                    "network_latency": self.network_latency(node),
                }
                for node, span in sorted(self.first_delivery.items())
            ],
            "redundant": [
                {"src": src, "dst": dst, "count": count}
                for (src, dst), count in sorted(self.redundant.items())
            ],
            "link_traffic": [
                {"src": src, "dst": dst, "count": count}
                for (src, dst), count in sorted(self.link_traffic.items())
            ],
            "duplicate_first": len(self.duplicate_first),
        }


class LineageIndex:
    """All infection trees of one trace, keyed by trace id.

    Usable online as a bus sink (``bus.add_sink(index.observe)``) or
    offline over a replayed trace file (:meth:`from_events`); both
    paths see the identical span schema, so analyze-after equals
    observe-during.
    """

    def __init__(self):
        self.trees: Dict[str, InfectionTree] = {}
        self.n: Optional[int] = None
        self.key: Optional[str] = None
        self.events_seen = 0

    def observe(self, event: Event) -> None:
        self.events_seen += 1
        if event.kind is EventKind.RUN_STARTED:
            n = event.payload.get("n")
            if isinstance(n, int) and not isinstance(n, bool):
                self.n = n
            key = event.payload.get("key")
            if isinstance(key, str):
                self.key = key
            return
        span = span_of_event(event)
        if span is None:
            return
        tree = self.trees.get(span.trace)
        if tree is None:
            tree = self.trees[span.trace] = InfectionTree(span.trace)
        tree.add(span)

    @classmethod
    def from_events(cls, events: Iterable[Event]) -> "LineageIndex":
        index = cls()
        for event in events:
            index.observe(event)
        return index

    def tree_for_key(self, key: str) -> Optional[InfectionTree]:
        """The (single) tree tracing ``key``; None when absent, the
        largest when several versions of the key were traced."""
        candidates = [t for t in self.trees.values() if t.key == key]
        if not candidates:
            return None
        return max(candidates, key=lambda t: len(t.spans))

    def anomalies(self) -> List[Tuple[str, str]]:
        out: List[Tuple[str, str]] = []
        for trace in sorted(self.trees):
            for flag in self.trees[trace].anomalies(n=self.n):
                out.append((trace, flag))
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n": self.n,
            "key": self.key,
            "traces": [self.trees[trace].to_dict() for trace in sorted(self.trees)],
            "anomalies": [
                {"trace": trace, "flag": flag} for trace, flag in self.anomalies()
            ],
        }


def _histogram_lines(values: List[float], bins: int = 8, width: int = 32) -> List[str]:
    """A small ASCII histogram (one line per bin, ``#`` bars)."""
    if not values:
        return ["  (no samples)"]
    lo, hi = min(values), max(values)
    if hi <= lo:
        return [f"  [{lo:g}] {'#' * min(len(values), width)} ({len(values)})"]
    span = (hi - lo) / bins
    counts = [0] * bins
    for value in values:
        slot = min(int((value - lo) / span), bins - 1)
        counts[slot] += 1
    peak = max(counts)
    lines = []
    for i, count in enumerate(counts):
        left = lo + i * span
        right = left + span
        bar = "#" * max(1 if count else 0, round(count / peak * width))
        lines.append(f"  [{left:8.4g} .. {right:8.4g}) {bar:<{width}} {count}")
    return lines


def render_analysis(index: LineageIndex) -> List[str]:
    """The ``repro trace analyze`` report, one string per output line."""
    lines: List[str] = []
    header = "trace analysis"
    if index.n is not None:
        header += f" — n={index.n}"
    if index.key is not None:
        header += f", key={index.key!r}"
    lines.append(header)
    if not index.trees:
        lines.append("no delivery spans in trace (was span emission enabled?)")
        return lines
    for trace in sorted(index.trees):
        tree = index.trees[trace]
        lines.append("")
        lines.append(f"trace {trace}")
        infected = tree.infected()
        complete = ""
        if index.n is not None:
            complete = (
                "  [complete]" if tree.complete(index.n) else "  [INCOMPLETE]"
            )
        lines.append(
            f"  infected {len(infected)} node(s), root={tree.root}, "
            f"max depth {tree.max_depth}, {len(tree.spans)} span(s){complete}"
        )
        children = tree.children()
        for node in infected:
            span = tree.first_delivery[node]
            latency = tree.hop_latency(node)
            latency_str = f" (+{latency:g})" if latency is not None else ""
            kids = children.get(node)
            kids_str = f" -> {kids}" if kids else ""
            src = "inject" if span.src is None else f"from {span.src}"
            lines.append(
                f"    node {node}: {src} at t={span.time:g}"
                f"{latency_str}, hop {tree.depth_of(node)}{kids_str}"
            )
        redundant_total = sum(tree.redundant.values())
        if redundant_total:
            busiest = tree.redundant.most_common(3)
            busy = ", ".join(f"{src}->{dst} x{c}" for (src, dst), c in busiest)
            lines.append(f"  redundant deliveries: {redundant_total} ({busy})")
        latencies = [latency for _, latency in tree.hop_latencies()]
        if latencies:
            lines.append(
                f"  hop latency: min {min(latencies):g} / "
                f"median {statistics.median(latencies):g} / max {max(latencies):g}"
            )
            lines.append("  hop-latency histogram:")
            lines.extend(_histogram_lines(latencies))
    anomalies = index.anomalies()
    lines.append("")
    if anomalies:
        lines.append(f"anomalies ({len(anomalies)}):")
        for trace, flag in anomalies:
            lines.append(f"  {trace}: {flag}")
    else:
        lines.append("anomalies: none")
    return lines
