"""A small labeled-metrics registry with Prometheus-text and JSON export.

Counters, gauges, and histograms, each optionally labeled::

    registry = MetricsRegistry()
    frames = registry.counter(
        "repro_frames_sent_total", "Frames sent, by type", labels=("type",)
    )
    frames.inc(type="push")
    latency = registry.histogram("repro_exchange_seconds", "Exchange latency")
    latency.observe(0.012)

    print(registry.render_prometheus())   # exposition text format
    blob = registry.snapshot()            # JSON-safe dict (STATUS replies)

Design points, all driven by how the gossip runtimes use this:

* **Fixed label names per family.**  A family declares its label names
  once; every sample must supply exactly those labels.  Mismatches are
  programming errors and raise :class:`MetricError` immediately.
* **Bounded cardinality.**  Each family holds at most ``max_series``
  labeled series (default 256).  The live node labels by frame type —
  single digits of series — but a bug interpolating, say, peer
  addresses into label values would otherwise grow memory without
  bound on a long-lived node.  Exceeding the cap raises.
* **Snapshots are plain data.**  ``snapshot()`` output is JSON-safe and
  round-trips over the STATUS wire message; it is the exact payload
  ``python -m repro status`` prints.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets: latencies from 1 ms to ~30 s, roughly
#: exponential — wide enough for both LAN gossip and CI-noise tails.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0, 30.0,
)


def linear_buckets(start: float, width: float, count: int) -> Tuple[float, ...]:
    """``count`` evenly spaced histogram bounds starting at ``start``.

    The latency-oriented :data:`DEFAULT_BUCKETS` are useless for count
    distributions (dirty buckets per exchange, entries per bucket);
    this mirrors the Prometheus client helper of the same name.
    """
    if count < 1:
        raise MetricError("linear_buckets: count must be >= 1")
    if width <= 0:
        raise MetricError("linear_buckets: width must be positive")
    return tuple(start + width * i for i in range(count))


class MetricError(Exception):
    """A metric was declared or used inconsistently."""


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _MetricFamily:
    """Shared machinery: label validation and the series table."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        max_series: int = 256,
    ):
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise MetricError(f"invalid label name {label!r} on {name}")
        if len(set(labels)) != len(labels):
            raise MetricError(f"duplicate label names on {name}")
        if max_series < 1:
            raise MetricError("max_series must be >= 1")
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)
        self.max_series = max_series
        self._series: Dict[Tuple[str, ...], Any] = {}

    def _key(self, labels: Dict[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise MetricError(
                f"{self.name} takes labels {list(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _slot(self, labels: Dict[str, Any], default) -> Any:
        key = self._key(labels)
        slot = self._series.get(key)
        if slot is None:
            if len(self._series) >= self.max_series:
                raise MetricError(
                    f"{self.name}: series cardinality limit "
                    f"({self.max_series}) exceeded at labels {dict(zip(self.label_names, key))}"
                )
            slot = default()
            self._series[key] = slot
        return slot

    def labeled_series(self) -> Iterable[Tuple[Dict[str, str], Any]]:
        for key, slot in sorted(self._series.items()):
            yield dict(zip(self.label_names, key)), slot

    def __len__(self) -> int:
        return len(self._series)


class _Cell:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0


class Counter(_MetricFamily):
    """A monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise MetricError(f"{self.name}: counters only go up (inc {amount})")
        self._slot(labels, _Cell).value += amount

    def value(self, **labels: Any) -> float:
        slot = self._series.get(self._key(labels))
        return 0.0 if slot is None else slot.value

    def total(self) -> float:
        return sum(slot.value for slot in self._series.values())

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "help": self.help,
            "series": [
                {"labels": labels, "value": slot.value}
                for labels, slot in self.labeled_series()
            ],
        }

    def render(self) -> List[str]:
        return [
            _sample_line(self.name, labels, slot.value)
            for labels, slot in self.labeled_series()
        ]


class Gauge(_MetricFamily):
    """A value that can go up and down (or be set outright)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        self._slot(labels, _Cell).value = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        self._slot(labels, _Cell).value += amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        slot = self._series.get(self._key(labels))
        return 0.0 if slot is None else slot.value

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "help": self.help,
            "series": [
                {"labels": labels, "value": slot.value}
                for labels, slot in self.labeled_series()
            ],
        }

    def render(self) -> List[str]:
        return [
            _sample_line(self.name, labels, slot.value)
            for labels, slot in self.labeled_series()
        ]


class _HistogramCell:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, bucket_count: int) -> None:
        self.counts = [0] * bucket_count
        self.sum = 0.0
        self.count = 0


class Histogram(_MetricFamily):
    """Observations bucketed by upper bound (cumulative on export)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        max_series: int = 256,
    ):
        super().__init__(name, help, labels, max_series)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise MetricError(f"{name}: buckets must be sorted and distinct")
        self.buckets = bounds

    def observe(self, value: float, **labels: Any) -> None:
        cell: _HistogramCell = self._slot(
            labels, lambda: _HistogramCell(len(self.buckets))
        )
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                cell.counts[index] += 1
                break
        cell.sum += value
        cell.count += 1

    def cell(self, **labels: Any) -> Optional[_HistogramCell]:
        return self._series.get(self._key(labels))

    def snapshot(self) -> Dict[str, Any]:
        series = []
        for labels, cell in self.labeled_series():
            series.append(
                {
                    "labels": labels,
                    "buckets": list(self.buckets),
                    "counts": list(cell.counts),
                    "sum": cell.sum,
                    "count": cell.count,
                }
            )
        return {"type": self.kind, "help": self.help, "series": series}

    def render(self) -> List[str]:
        lines: List[str] = []
        for labels, cell in self.labeled_series():
            cumulative = 0
            for bound, count in zip(self.buckets, cell.counts):
                cumulative += count
                lines.append(
                    _sample_line(
                        f"{self.name}_bucket",
                        {**labels, "le": _format_value(bound)},
                        cumulative,
                    )
                )
            lines.append(
                _sample_line(
                    f"{self.name}_bucket", {**labels, "le": "+Inf"}, cell.count
                )
            )
            lines.append(_sample_line(f"{self.name}_sum", labels, cell.sum))
            lines.append(_sample_line(f"{self.name}_count", labels, cell.count))
        return lines


def _sample_line(name: str, labels: Dict[str, str], value: float) -> str:
    if labels:
        body = ",".join(
            f'{key}="{_escape_label_value(str(val))}"' for key, val in labels.items()
        )
        return f"{name}{{{body}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


class MetricsRegistry:
    """Owns a namespace of metric families.

    Declaration is idempotent: asking for an existing name returns the
    existing family, provided the type and label names agree — so a
    node restart (same process, new ``NodeStats``) can share a registry.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _MetricFamily] = {}

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = (),
        max_series: int = 256,
    ) -> Counter:
        return self._declare(Counter, name, help, labels, max_series=max_series)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = (),
        max_series: int = 256,
    ) -> Gauge:
        return self._declare(Gauge, name, help, labels, max_series=max_series)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        max_series: int = 256,
    ) -> Histogram:
        return self._declare(
            Histogram, name, help, labels, buckets=buckets, max_series=max_series
        )

    def _declare(self, cls, name: str, help: str, labels: Sequence[str], **kwargs):
        existing = self._families.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.label_names != tuple(labels):
                raise MetricError(
                    f"{name} already declared as {existing.kind}"
                    f"{list(existing.label_names)}"
                )
            return existing
        family = cls(name, help, labels, **kwargs)
        self._families[name] = family
        return family

    def get(self, name: str) -> Optional[_MetricFamily]:
        return self._families.get(name)

    def families(self) -> List[_MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump of every family (the STATUS payload)."""
        return {family.name: family.snapshot() for family in self.families()}

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format, families sorted by name."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            lines.extend(family.render())
        return "\n".join(lines) + ("\n" if lines else "")
