"""Phase timers: where does one gossip round actually spend its time?

Both runtimes decompose a round into the same phases — choosing a
partner, running the conversation, merging what arrived, emitting
observability events — so one :class:`Profiler` instruments both.  A
phase is timed with a context manager::

    with profiler.phase("merge"):
        reply = session.respond(offered)

Timings accumulate in two counters on the existing
:class:`~repro.obs.metrics.MetricsRegistry`:

* ``repro_phase_seconds_total{phase=...}`` — wall seconds per phase;
* ``repro_phase_calls_total{phase=...}`` — timed sections per phase;

so they ride along in every metrics snapshot (live ``STATUS`` replies,
``--metrics-json`` dumps, Prometheus rendering) with no extra plumbing.

The simulator's hot loop runs millions of callbacks, so its hooks are
pay-for-what-you-use: :data:`NULL_PROFILER` is installed by default
and call sites test ``profiler.enabled`` (or ``is None``) before
entering per-event phases.  ``Cluster.enable_profiling()`` swaps in a
real profiler.  The live runtime always profiles — its phase
granularity is one network conversation, where a ``perf_counter`` pair
is noise.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry

#: The canonical phase names both runtimes emit.
PHASES = ("partner-selection", "exchange", "merge", "emit", "engine")


class _Phase:
    """One timed section; records into the profiler on exit."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "Profiler", name: str):
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Phase":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._profiler.record(self._name, time.perf_counter() - self._start)


class _NullPhase:
    """A do-nothing context manager, shared by :data:`NULL_PROFILER`."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_PHASE = _NullPhase()


class Profiler:
    """Accumulates per-phase wall time into a metrics registry."""

    enabled = True

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._seconds = self.registry.counter(
            "repro_phase_seconds_total",
            "Wall-clock seconds spent per profiled phase.",
            labels=("phase",),
        )
        self._calls = self.registry.counter(
            "repro_phase_calls_total",
            "Timed sections entered per profiled phase.",
            labels=("phase",),
        )

    def phase(self, name: str) -> _Phase:
        return _Phase(self, name)

    def record(self, name: str, seconds: float) -> None:
        self._seconds.inc(seconds, phase=name)
        self._calls.inc(1, phase=name)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """phase -> {seconds, calls}, for quick inspection in tests."""
        seconds = {
            labels.get("phase", ""): cell.value
            for labels, cell in self._seconds.labeled_series()
        }
        calls = {
            labels.get("phase", ""): cell.value
            for labels, cell in self._calls.labeled_series()
        }
        return {
            phase: {"seconds": seconds.get(phase, 0.0), "calls": calls.get(phase, 0.0)}
            for phase in set(seconds) | set(calls)
        }


class _NullProfiler(Profiler):
    """Timing disabled: ``phase`` hands out a shared no-op manager."""

    enabled = False

    def __init__(self):
        super().__init__(MetricsRegistry())

    def phase(self, name: str) -> _NullPhase:  # type: ignore[override]
        return _NULL_PHASE

    def record(self, name: str, seconds: float) -> None:
        return None


#: Shared disabled profiler — the default everywhere perf matters.
NULL_PROFILER = _NullProfiler()
