"""Causal propagation spans: per-delivery lineage records for one update.

The paper's observables (residue, traffic, ``t_ave``/``t_last``) are
aggregates — they say *that* an update converged, not *how* it spread.
A **delivery span** is the missing per-hop record: every time a replica
applies (or redundantly re-receives) an update, the receiving runtime
emits one ``delivery-span`` event describing the delivery edge::

    {"key": "printer:bldg-35",          # the updated key, stringified
     "trace": "printer:bldg-35@17…",    # trace id = origin update id
     "src": 3,                          # delivering node (None: injection)
     "hop": 2,                          # distance from the origin (None: unknown)
     "first": true,                     # first time this node learned it
     "sent_at": 1723481930.4,           # sender's clock at send (live wire only)
     "result": "applied"}               # the ApplyResult that merging produced

The **trace id** is derived locally from the update itself: Section 1.1
timestamps are globally unique ``(time, site, sequence)`` triples, so
``trace_id_of`` needs no coordination and both runtimes — the simulator
and the live TCP nodes — agree on the id without anything crossing the
wire.  The *parent* of a span is the delivering exchange: ``src`` is
known locally at every receive; ``hop`` and ``sent_at`` ride along as
an optional negotiated wire field (:class:`SpanContext`,
``repro.net.wire``) so old peers interoperate unchanged.

:mod:`repro.obs.lineage` consumes the span stream and reconstructs the
infection tree of each trace; ``python -m repro trace analyze`` renders
it.  Emission itself is a near-no-op while the bus has no sinks.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Any, Dict, Optional

from repro.core.store import ApplyResult, StoreUpdate
from repro.obs.events import Event, EventBus, EventKind

#: The span payload fields, in canonical order.  Both runtimes emit
#: exactly these keys — asserted by the shared round-trip test.
SPAN_FIELDS = ("key", "trace", "src", "hop", "first", "sent_at", "result")


def trace_id_of(update: StoreUpdate) -> str:
    """The trace id of ``update``: its origin identity, derived locally.

    Timestamps are globally unique (Section 1.1), so ``key`` plus the
    ``(time, site, sequence)`` triple names one written version of one
    key everywhere, with no wire coordination.  A superseding write is
    a new trace; a death certificate for the same key likewise.
    """
    stamp = update.entry.timestamp
    return f"{update.key}@{stamp.time:g}#{stamp.site}.{stamp.sequence}"


#: Default bound for :class:`TraceHopLru` — comfortably above the number
#: of traces simultaneously inside any hot list or tau window, tiny
#: against a long-running node's total update history.
TRACE_HOP_CAP = 4096


class TraceHopLru:
    """A bounded ``trace id -> hop bookkeeping`` map with LRU eviction.

    Both runtimes remember their distance from each trace's origin so
    outbound spans can carry ``hop``; without a bound that memory grows
    with every update the replica has ever learned.  Hop data is only
    useful while a trace is still circulating (hot rumors, the tau
    window), so least-recently-used eviction loses nothing but ancient
    traces — a re-learned old trace merely reports ``hop=None``, which
    the span schema already allows.

    Deliberately exposes just the dict subset the runtimes use
    (``get`` / ``setdefault``); both touch the entry, keeping live
    traces resident.
    """

    __slots__ = ("_entries", "_maxsize")

    def __init__(self, maxsize: int = TRACE_HOP_CAP):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self._maxsize = maxsize
        self._entries: "OrderedDict[str, Any]" = OrderedDict()

    def get(self, trace: str, default: Any = None) -> Any:
        try:
            value = self._entries[trace]
        except KeyError:
            return default
        self._entries.move_to_end(trace)
        return value

    def setdefault(self, trace: str, default: Any) -> Any:
        if trace in self._entries:
            self._entries.move_to_end(trace)
            return self._entries[trace]
        self._entries[trace] = default
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
        return default

    def __contains__(self, trace: str) -> bool:
        return trace in self._entries

    def __len__(self) -> int:
        return len(self._entries)


@dataclasses.dataclass(frozen=True, slots=True)
class SpanContext:
    """The trace context one update carries across the live wire.

    ``hop`` is the *sender's* distance from the origin (the receiver is
    at ``hop + 1``); ``sent_at`` is the sender's wall clock at send
    time, letting the analyzer attribute per-link network latency.
    Both are optional: a v1 peer simply never sends them.
    """

    trace: str
    hop: Optional[int] = None
    sent_at: Optional[float] = None

    def to_wire(self) -> Dict[str, Any]:
        return {"trace": self.trace, "hop": self.hop, "sent_at": self.sent_at}

    @classmethod
    def from_wire(cls, blob: Any) -> Optional["SpanContext"]:
        """Lenient decode: anything malformed is treated as absent."""
        if not isinstance(blob, dict):
            return None
        trace = blob.get("trace")
        if not isinstance(trace, str) or not trace:
            return None
        hop = blob.get("hop")
        if not isinstance(hop, int) or isinstance(hop, bool) or hop < 0:
            hop = None
        sent_at = blob.get("sent_at")
        if not isinstance(sent_at, (int, float)) or isinstance(sent_at, bool):
            sent_at = None
        else:
            sent_at = float(sent_at)
        return cls(trace=trace, hop=hop, sent_at=sent_at)


def emit_delivery_span(
    bus: EventBus,
    *,
    node: int,
    update: StoreUpdate,
    result: ApplyResult,
    trace: Optional[str] = None,
    src: Optional[int] = None,
    hop: Optional[int] = None,
    sent_at: Optional[float] = None,
    first: bool = True,
    time: Optional[float] = None,
) -> Optional[Event]:
    """Emit one ``delivery-span`` event — the single place the span
    schema is built, shared by the simulator and the live runtime."""
    return bus.emit(
        EventKind.DELIVERY_SPAN,
        node=node,
        time=time,
        key=str(update.key),
        trace=trace if trace is not None else trace_id_of(update),
        src=src,
        hop=hop,
        first=first,
        sent_at=sent_at,
        result=result.value,
    )


@dataclasses.dataclass(frozen=True, slots=True)
class DeliverySpan:
    """One parsed ``delivery-span`` event (see :func:`span_of_event`)."""

    node: int
    time: float
    key: str
    trace: str
    src: Optional[int]
    hop: Optional[int]
    first: bool
    sent_at: Optional[float]
    result: str
    seq: int = 0


def span_of_event(event: Event) -> Optional[DeliverySpan]:
    """Parse a bus event into a :class:`DeliverySpan`.

    Returns ``None`` for events of any other kind, or for span events
    whose payload is malformed (a trace file may be hand-edited).
    """
    if event.kind is not EventKind.DELIVERY_SPAN:
        return None
    payload = event.payload
    trace = payload.get("trace")
    key = payload.get("key")
    if not isinstance(trace, str) or not isinstance(key, str):
        return None
    src = payload.get("src")
    if not isinstance(src, int) or isinstance(src, bool):
        src = None
    hop = payload.get("hop")
    if not isinstance(hop, int) or isinstance(hop, bool) or hop < 0:
        hop = None
    sent_at = payload.get("sent_at")
    if not isinstance(sent_at, (int, float)) or isinstance(sent_at, bool):
        sent_at = None
    else:
        sent_at = float(sent_at)
    return DeliverySpan(
        node=event.node,
        time=event.time,
        key=key,
        trace=trace,
        src=src,
        hop=hop,
        first=bool(payload.get("first")),
        sent_at=sent_at,
        result=str(payload.get("result", "")),
        seq=event.seq,
    )
