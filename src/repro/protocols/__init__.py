"""Update-distribution protocols (Sections 1.2-1.5, 2).

Every protocol implements the small interface in
:mod:`repro.protocols.base` and is driven by a
:class:`~repro.cluster.cluster.Cluster` in synchronous cycles:

* :class:`~repro.protocols.direct_mail.DirectMailProtocol` — Section 1.2;
* :class:`~repro.protocols.anti_entropy.AntiEntropyProtocol` — Section
  1.3, with push / pull / push-pull resolution and the checksum,
  recent-update-list and peel-back exchange strategies;
* :class:`~repro.protocols.rumor.RumorMongeringProtocol` — Section 1.4's
  complex-epidemic design space (blind/feedback, counter/coin,
  push/pull/push-pull, connection limits, hunting, minimization);
* :class:`~repro.protocols.backup.AntiEntropyBackup` — Section 1.5,
  anti-entropy backing up a complex epidemic with conservative,
  direct-mail or hot-rumor redistribution;
* :class:`~repro.protocols.deathcerts.DeathCertificateManager` —
  Section 2's certificate lifecycle (fixed threshold and dormant
  certificates with activation timestamps).
"""

from repro.protocols.base import Protocol, ExchangeMode
from repro.protocols.direct_mail import DirectMailProtocol
from repro.protocols.anti_entropy import (
    AntiEntropyProtocol,
    AntiEntropyConfig,
    ExchangeStats,
    resolve_difference,
)
from repro.protocols.rumor import (
    RumorMongeringProtocol,
    RumorConfig,
)
from repro.protocols.backup import AntiEntropyBackup, RecoveryStrategy
from repro.protocols.deathcerts import DeathCertificateManager, CertificatePolicy
from repro.protocols.hotlist import HotListProtocol
from repro.protocols.ackgc import AckBasedCertificateGC

__all__ = [
    "Protocol",
    "ExchangeMode",
    "DirectMailProtocol",
    "AntiEntropyProtocol",
    "AntiEntropyConfig",
    "ExchangeStats",
    "resolve_difference",
    "RumorMongeringProtocol",
    "RumorConfig",
    "AntiEntropyBackup",
    "RecoveryStrategy",
    "DeathCertificateManager",
    "CertificatePolicy",
    "HotListProtocol",
    "AckBasedCertificateGC",
]
