"""Acknowledgment-based death-certificate GC — the Sarin & Lynch
baseline the paper argues against (Section 2).

"One strategy is to retain each death certificate until it can be
determined that every site has received it" [Sa].  This module
implements a gossiped version of that determination: every site keeps,
per certificate, the set of sites known to hold it; ack-sets merge
whenever two sites gossip; a certificate may be discarded once its
ack-set covers the whole membership.

It works — and it exhibits exactly the failings the paper names:

* per-certificate per-site state is O(n) (the paper: "a detailed data
  structure at each server of size O(n^2) describing all other
  servers");
* a single site that is down "for hours or even days" blocks the
  determination, so certificates pile up until it returns — whereas
  the dormant-certificate scheme's storage stays bounded regardless
  (compare in ``benchmarks/test_ack_gc.py``).

The implementation gossips ack-sets over its own random pairings each
cycle (an abstraction of piggybacking them on anti-entropy traffic).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, Optional, Set

from repro.core.store import ApplyResult, StoreUpdate
from repro.core.timestamps import Timestamp
from repro.protocols.base import Protocol
from repro.topology.spatial import PartnerSelector, UniformSelector

CertId = tuple  # (key, ordinary timestamp) uniquely names a certificate


@dataclasses.dataclass(slots=True)
class AckGcStats:
    gossips: int = 0
    ack_entries_sent: int = 0     # the O(n) metadata cost, in site-ids
    discarded: int = 0


class AckBasedCertificateGC(Protocol):
    """Discard a certificate once every site is known to hold it."""

    name = "ack-gc"

    def __init__(self, selector: Optional[PartnerSelector] = None):
        super().__init__()
        self._selector = selector
        # acks[site][cert] = set of sites known (by `site`) to hold cert
        self._acks: Dict[int, Dict[CertId, Set[int]]] = {}
        # Certificates a site has already determined complete and
        # purged: re-deliveries are rejected on sight.  (Note the
        # irony the paper would appreciate: the determination itself
        # needs a tombstone so the tombstone can be deleted.)
        self._completed: Dict[int, Set[CertId]] = {}
        self.stats = AckGcStats()

    def attach(self, cluster) -> None:
        super().attach(cluster)
        if self._selector is None:
            self._selector = UniformSelector(cluster.site_ids)
        self._acks = {site_id: {} for site_id in cluster.site_ids}
        self._completed = {site_id: set() for site_id in cluster.site_ids}
        # Account for certificates already present.
        for site_id in cluster.site_ids:
            for key, entry in cluster.sites[site_id].store.entries():
                if entry.is_deletion:
                    self._note_holder(site_id, (key, entry.timestamp), site_id)

    def on_site_added(self, site_id: int) -> None:
        self._acks[site_id] = {}
        self._completed[site_id] = set()
        if self._selector is not None:
            self._selector.rebuild(self.cluster.site_ids)

    def on_site_removed(self, site_id: int) -> None:
        self._acks.pop(site_id, None)
        self._completed.pop(site_id, None)
        if self._selector is not None:
            self._selector.rebuild(self.cluster.site_ids)

    # ------------------------------------------------------------------

    def _note_holder(self, observer: int, cert_id: CertId, holder: int) -> None:
        table = self._acks[observer]
        holders = table.get(cert_id)
        if holders is None:
            holders = set()
            table[cert_id] = holders
        holders.add(holder)

    def on_local_update(self, site_id: int, update: StoreUpdate) -> None:
        if update.entry.is_deletion:
            self._note_holder(site_id, (update.key, update.timestamp), site_id)

    def on_news(self, site_id: int, update: StoreUpdate, result: ApplyResult) -> None:
        if not (update.entry.is_deletion and result.was_news):
            return
        cert_id = (update.key, update.timestamp)
        if cert_id in self._completed[site_id]:
            # Already determined complete here: reject the re-delivery.
            self.cluster.sites[site_id].store.purge(update.key)
            return
        self._note_holder(site_id, cert_id, site_id)

    # ------------------------------------------------------------------

    def run_cycle(self, cycle: int) -> None:
        cluster = self.cluster
        membership = set(cluster.site_ids)
        # Gossip ack-sets pairwise.
        for site_id in cluster.site_ids:
            if not cluster.sites[site_id].up:
                continue
            partner = self._selector.choose(site_id, cluster.sites[site_id].rng)
            if partner is None or not cluster.can_communicate(site_id, partner):
                continue
            self._merge_acks(site_id, partner)
        # Discard fully-acknowledged certificates.
        for site_id in cluster.site_ids:
            site = cluster.sites[site_id]
            if not site.up:
                continue
            table = self._acks[site_id]
            completed = self._completed[site_id]
            for key, entry in list(site.store.entries()):
                if not entry.is_deletion:
                    continue
                cert_id = (key, entry.timestamp)
                holders = table.get(cert_id, set())
                if membership <= holders or cert_id in completed:
                    site.store.purge(key)
                    table.pop(cert_id, None)
                    if cert_id not in completed:
                        completed.add(cert_id)
                        self.stats.discarded += 1

    def _merge_acks(self, a: int, b: int) -> None:
        self.stats.gossips += 1
        table_a = self._acks[a]
        table_b = self._acks[b]
        # The completion determination itself must spread, or the
        # knowledge dies with the ack tables of sites that already
        # purged (leaving stragglers waiting forever).
        completed_union = self._completed[a] | self._completed[b]
        self._completed[a] = set(completed_union)
        self._completed[b] = set(completed_union)
        for cert_id in set(table_a) | set(table_b):
            if cert_id in completed_union:
                table_a.pop(cert_id, None)
                table_b.pop(cert_id, None)
                continue
            holders_a = table_a.get(cert_id, set())
            holders_b = table_b.get(cert_id, set())
            merged = holders_a | holders_b
            self.stats.ack_entries_sent += len(holders_a) + len(holders_b)
            if merged:
                table_a[cert_id] = set(merged)
                table_b[cert_id] = set(merged)

    # ------------------------------------------------------------------

    def certificates_held(self) -> int:
        """Total active certificates across all sites (storage metric)."""
        return sum(
            1
            for site_id in self.cluster.site_ids
            for __, entry in self.cluster.sites[site_id].store.entries()
            if entry.is_deletion
        )

    def metadata_size(self) -> int:
        """Total ack-set entries held cluster-wide — the O(n^2) cost."""
        return sum(
            len(holders)
            for table in self._acks.values()
            for holders in table.values()
        )

    def is_blocked_on(self, cert_key: Hashable, timestamp: Timestamp) -> Set[int]:
        """Sites whose acknowledgment is still missing somewhere."""
        membership = set(self.cluster.site_ids)
        missing: Set[int] = set()
        for table in self._acks.values():
            holders = table.get((cert_key, timestamp))
            if holders is not None:
                missing |= membership - holders
        return missing
