"""Anti-entropy (Section 1.3).

Periodically, every site chooses a partner — uniformly or with a
spatial distribution (Section 3) — and the pair resolve the differences
between their database copies in one of three ways:

* **push**: entries newer at the caller overwrite the partner;
* **pull**: entries newer at the partner overwrite the caller;
* **push-pull**: both.

Anti-entropy is a *simple epidemic*: with any distribution giving every
pair a nonzero contact probability it infects the whole population with
probability 1, in expected time O(log n).  The push/pull distinction
matters in the endgame: with few susceptibles left, pull converges
quadratically (``p_{i+1} = p_i^2``) while push only shaves a factor
``e`` per cycle — the reason the paper recommends pull or push-pull for
backing up another distribution mechanism.

Two driving modes are provided:

* ``synchronous=True`` (default, used for the paper's tables): all
  decisions in a cycle are based on database state at the start of the
  cycle, matching the epidemic recurrences and giving every site one
  exchange per cycle;
* ``synchronous=False``: exchanges operate on live stores through a
  configurable :class:`ExchangeStrategy` (full compare, checksums with
  recent-update lists, or peel back), which is how a deployment would
  actually run.

The synchronous mode is the *reference* engine: for uniform partner
selection :func:`repro.sim.batch.anti_entropy_trial` runs the same
single-update epidemic over flat arrays, bit-for-bit identical — the
golden tests in ``tests/test_batch_engine.py`` hold the two equal.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Hashable, List, Optional

from repro.core.items import Entry
from repro.core.store import ApplyResult, StoreUpdate
from repro.protocols.base import ExchangeMode, Protocol, entry_beats
from repro.protocols.exchange import (
    ExchangeStrategy,
    FullCompare,
    resolve_difference as resolve_difference,  # re-exported via repro.protocols
)
from repro.sim.transport import ConnectionLedger, ConnectionPolicy, UNLIMITED
from repro.topology.spatial import PartnerSelector, UniformSelector

TransferHook = Callable[[int, int, StoreUpdate, ApplyResult], None]


@dataclasses.dataclass(frozen=True, slots=True)
class AntiEntropyConfig:
    """Parameters of the anti-entropy mechanism.

    ``period``/``offset`` let anti-entropy run every few cycles (as a
    backup mechanism) rather than every cycle; the Clearinghouse ran it
    nightly while rumor cycles were much more frequent.
    """

    mode: ExchangeMode = ExchangeMode.PUSH_PULL
    policy: ConnectionPolicy = UNLIMITED
    synchronous: bool = True
    period: int = 1
    offset: int = 0

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError("period must be >= 1")
        if not 0 <= self.offset < self.period:
            raise ValueError("offset must lie in [0, period)")


@dataclasses.dataclass(slots=True)
class ExchangeStats:
    """Cumulative counters across all exchanges run so far.

    ``full_compares`` and ``checksum_successes`` partition the live
    exchanges that did any comparison work: a conversation counts as a
    checksum success only if *no* phase fell back to comparing the
    complete databases (hierarchical drill-downs that resolved through
    the tree included).  ``bucket_rounds`` totals the dirty buckets
    resolved by hierarchical exchanges, and ``entries_avoided`` the
    entries those conversations did *not* have to examine relative to a
    full comparison of both tables.
    """

    exchanges: int = 0
    updates_shipped: int = 0
    entries_examined: int = 0
    full_compares: int = 0
    checksum_successes: int = 0
    bucket_rounds: int = 0
    entries_avoided: int = 0
    rejected: int = 0


class AntiEntropyProtocol(Protocol):
    name = "anti-entropy"

    def __init__(
        self,
        selector: Optional[PartnerSelector] = None,
        config: AntiEntropyConfig = AntiEntropyConfig(),
        strategy: Optional[ExchangeStrategy] = None,
    ):
        super().__init__()
        self.config = config
        self._selector = selector
        self.strategy = strategy if strategy is not None else FullCompare()
        self.ledger = ConnectionLedger(config.policy)
        self.stats = ExchangeStats()
        self._transfer_hooks: List[TransferHook] = []

    def attach(self, cluster) -> None:
        super().attach(cluster)
        if self._selector is None:
            self._selector = UniformSelector(cluster.site_ids)

    def _refresh_selector(self) -> None:
        # Any rebuildable selector — auto-created or handed in
        # explicitly — follows the membership; topology-bound selectors
        # decline (rebuild returns False) and keep their tables.
        if self._selector is not None:
            self._selector.rebuild(self.cluster.site_ids)

    def on_site_added(self, site_id: int) -> None:
        self._refresh_selector()

    def on_site_removed(self, site_id: int) -> None:
        self._refresh_selector()

    @property
    def selector(self) -> PartnerSelector:
        if self._selector is None:
            raise RuntimeError("protocol not attached yet")
        return self._selector

    def on_transfer(self, hook: TransferHook) -> None:
        """Register a callback fired for every update anti-entropy ships.

        Arguments: (source_site, target_site, update, apply_result).
        Used by the Section 1.5 backup mechanism to trigger
        redistribution when a missing update is discovered.
        """
        self._transfer_hooks.append(hook)

    # ------------------------------------------------------------------

    def run_cycle(self, cycle: int) -> None:
        config = self.config
        if (cycle - config.offset) % config.period != 0:
            return
        cluster = self.cluster
        self.ledger.reset()
        snapshots: Optional[Dict[int, Dict[Hashable, Entry]]] = None
        if config.synchronous:
            snapshots = {
                site_id: cluster.sites[site_id].store.snapshot()
                for site_id in cluster.site_ids
            }
        profiler = cluster.profiler if cluster.profiler.enabled else None
        for site_id in cluster.site_ids:
            site = cluster.sites[site_id]
            if not site.up:
                continue
            if profiler is not None:
                with profiler.phase("partner-selection"):
                    partner_id = self.ledger.connect_with_hunting(
                        self._choose_up_partner, site_id
                    )
            else:
                partner_id = self.ledger.connect_with_hunting(
                    self._choose_up_partner, site_id
                )
            if partner_id is None:
                self.stats.rejected += 1
                cluster.count_rejection()
                continue
            cluster.count_comparison(site_id, partner_id)
            self.stats.exchanges += 1
            if profiler is not None:
                with profiler.phase("exchange"):
                    if config.synchronous:
                        self._exchange_synchronous(site_id, partner_id, snapshots)
                    else:
                        self._exchange_live(site_id, partner_id)
            elif config.synchronous:
                self._exchange_synchronous(site_id, partner_id, snapshots)
            else:
                self._exchange_live(site_id, partner_id)

    def _choose_up_partner(self, site_id: int):
        """One partner draw; down partners count as failed attempts."""
        partner = self.selector.choose(site_id, self.cluster.sites[site_id].rng)
        if partner is None or not self.cluster.can_communicate(site_id, partner):
            return None
        return partner

    # ------------------------------------------------------------------

    def _exchange_synchronous(
        self,
        site_id: int,
        partner_id: int,
        snapshots: Dict[int, Dict[Hashable, Entry]],
    ) -> None:
        """Resolve differences decided on start-of-cycle snapshots.

        Transmissions are decided by what each party *believed* at the
        start of the cycle (that is what would cross the wire in a real
        synchronous round), while stores merge live, so a site that
        receives the same update twice in one cycle counts two
        transmissions but applies it once.
        """
        cluster = self.cluster
        mode = self.config.mode
        snap_s = snapshots[site_id]
        snap_p = snapshots[partner_id]
        keys = snap_s.keys() | snap_p.keys()
        sent_sp = 0
        sent_ps = 0
        for key in keys:
            entry_s = snap_s.get(key)
            entry_p = snap_p.get(key)
            if mode.pushes and entry_beats(entry_s, entry_p):
                update = StoreUpdate(key=key, entry=entry_s)
                result = cluster.apply_at(partner_id, update, via=self, source=site_id)
                sent_sp += 1
                if result.was_news:
                    cluster.count_useful_update_send(site_id, partner_id, 1)
                self._fire_transfer(site_id, partner_id, update, result)
            elif mode.pulls and entry_beats(entry_p, entry_s):
                update = StoreUpdate(key=key, entry=entry_p)
                result = cluster.apply_at(site_id, update, via=self, source=partner_id)
                sent_ps += 1
                if result.was_news:
                    cluster.count_useful_update_send(partner_id, site_id, 1)
                self._fire_transfer(partner_id, site_id, update, result)
        self.stats.entries_examined += len(keys)
        self.stats.updates_shipped += sent_sp + sent_ps
        cluster.count_update_sends(site_id, partner_id, sent_sp)
        cluster.count_update_sends(partner_id, site_id, sent_ps)

    def _exchange_live(self, site_id: int, partner_id: int) -> None:
        cluster = self.cluster
        store_s = cluster.sites[site_id].store
        store_p = cluster.sites[partner_id].store
        report = self.strategy.exchange(store_s, store_p, self.config.mode)
        self.stats.entries_examined += report.entries_examined
        self.stats.updates_shipped += report.updates_shipped
        if report.full_compare:
            self.stats.full_compares += 1
        elif report.checksum_rounds:
            self.stats.checksum_successes += 1
            self.stats.entries_avoided += max(
                0, len(store_s) + len(store_p) - report.entries_examined
            )
        self.stats.bucket_rounds += report.buckets_resolved
        for update in report.sent_ab:
            cluster.notify_news(
                partner_id, update, ApplyResult.APPLIED, via=self, source=site_id
            )
            self._fire_transfer(site_id, partner_id, update, ApplyResult.APPLIED)
        for update in report.sent_ba:
            cluster.notify_news(
                site_id, update, ApplyResult.APPLIED, via=self, source=partner_id
            )
            self._fire_transfer(partner_id, site_id, update, ApplyResult.APPLIED)
        cluster.count_update_sends(site_id, partner_id, len(report.sent_ab))
        cluster.count_update_sends(partner_id, site_id, len(report.sent_ba))
        # Live exchanges resolve differences against current stores, so
        # every shipped update is one the receiver lacked: all of this
        # traffic is "useful" in Table 4's sense (unlike the synchronous
        # path, where stale snapshots can ship redundant copies).
        cluster.count_useful_update_send(site_id, partner_id, len(report.sent_ab))
        cluster.count_useful_update_send(partner_id, site_id, len(report.sent_ba))

    def _fire_transfer(
        self, source: int, target: int, update: StoreUpdate, result: ApplyResult
    ) -> None:
        for hook in self._transfer_hooks:
            hook(source, target, update, result)
