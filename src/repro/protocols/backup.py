"""Anti-entropy backing up a complex epidemic (Section 1.5).

Rumor mongering can fail: with nonzero probability the rumor dies while
some sites are still susceptible.  Running anti-entropy infrequently on
top guarantees every update eventually reaches every site.  When an
anti-entropy exchange discovers a missing update, three responses are
modeled:

* ``CONSERVATIVE`` — just make the two participants consistent and let
  anti-entropy finish the job over subsequent rounds;
* ``REDISTRIBUTE_MAIL`` — remail the update to all sites (the original
  Clearinghouse behavior; O(n^2) messages in the worst case, which is
  why it had to be disabled on the CIN);
* ``HOT_RUMOR`` — make the update a hot rumor again at both
  participants, letting the epidemic finish cheaply (a rumor already
  known nearly everywhere dies out quickly).

This module composes existing protocols rather than reimplementing
them; it is the programmatic form of the paper's deployment advice.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.store import ApplyResult, StoreUpdate
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.base import ExchangeMode, Protocol
from repro.protocols.direct_mail import DirectMailProtocol
from repro.protocols.rumor import RumorConfig, RumorMongeringProtocol
from repro.topology.spatial import PartnerSelector


class RecoveryStrategy(enum.Enum):
    CONSERVATIVE = "conservative"
    REDISTRIBUTE_MAIL = "redistribute-mail"
    HOT_RUMOR = "hot-rumor"


class AntiEntropyBackup(Protocol):
    """Rumor mongering for distribution + periodic anti-entropy backup."""

    name = "rumor+anti-entropy"

    def __init__(
        self,
        rumor_config: RumorConfig = RumorConfig(),
        anti_entropy_period: int = 4,
        recovery: RecoveryStrategy = RecoveryStrategy.HOT_RUMOR,
        selector: Optional[PartnerSelector] = None,
        anti_entropy_mode: ExchangeMode = ExchangeMode.PUSH_PULL,
        mail: Optional[DirectMailProtocol] = None,
    ):
        super().__init__()
        self.rumor = RumorMongeringProtocol(rumor_config, selector=selector)
        self.anti_entropy = AntiEntropyProtocol(
            selector=selector,
            config=AntiEntropyConfig(
                mode=anti_entropy_mode,
                period=anti_entropy_period,
                offset=anti_entropy_period - 1,
            ),
        )
        self.recovery = recovery
        self._mail = mail
        self.redistributions = 0

    def attach(self, cluster) -> None:
        super().attach(cluster)
        self.rumor.attach(cluster)
        self.anti_entropy.attach(cluster)
        if self.recovery is RecoveryStrategy.REDISTRIBUTE_MAIL and self._mail is None:
            self._mail = DirectMailProtocol()
        if self._mail is not None:
            self._mail.attach(cluster)
        self.anti_entropy.on_transfer(self._on_anti_entropy_transfer)

    def on_local_update(self, site_id: int, update: StoreUpdate) -> None:
        self.rumor.on_local_update(site_id, update)

    def on_news(self, site_id: int, update: StoreUpdate, result: ApplyResult) -> None:
        self.rumor.on_news(site_id, update, result)

    def on_site_added(self, site_id: int) -> None:
        self.rumor.on_site_added(site_id)
        self.anti_entropy.on_site_added(site_id)
        if self._mail is not None:
            self._mail.on_site_added(site_id)

    def on_site_removed(self, site_id: int) -> None:
        self.rumor.on_site_removed(site_id)
        self.anti_entropy.on_site_removed(site_id)
        if self._mail is not None:
            self._mail.on_site_removed(site_id)

    def run_cycle(self, cycle: int) -> None:
        self.rumor.run_cycle(cycle)
        self.anti_entropy.run_cycle(cycle)

    def _on_anti_entropy_transfer(
        self, source: int, target: int, update: StoreUpdate, result: ApplyResult
    ) -> None:
        """Anti-entropy discovered a site missing an update."""
        if not result.was_news:
            return
        self.redistributions += 1
        if self.recovery is RecoveryStrategy.CONSERVATIVE:
            return
        if self.recovery is RecoveryStrategy.HOT_RUMOR:
            # Make it hot again at both parties: the discovering site
            # evidently lives in a poorly-covered neighborhood.
            self.rumor.make_hot(target, update)
            self.rumor.make_hot(source, update)
            return
        if self.recovery is RecoveryStrategy.REDISTRIBUTE_MAIL:
            self._mail.on_local_update(source, update)

    @property
    def active(self) -> bool:
        """Pending work: hot rumors, in-flight mail, or global disagreement.

        Anti-entropy alone never quiesces (it runs forever), so we treat
        the composite as active until the replicas have converged.
        """
        if self.rumor.active:
            return True
        if self._mail is not None and self._mail.active:
            return True
        return not self.cluster.converged()
