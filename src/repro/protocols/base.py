"""The protocol interface and shared helpers."""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro.core.items import DeathCertificate, Entry
from repro.core.store import ApplyResult, StoreUpdate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster


class ExchangeMode(enum.Enum):
    """Who ships data in a conversation (Section 1.3's three
    ResolveDifference designs; reused for rumor mongering)."""

    PUSH = "push"
    PULL = "pull"
    PUSH_PULL = "push-pull"

    @property
    def pushes(self) -> bool:
        return self in (ExchangeMode.PUSH, ExchangeMode.PUSH_PULL)

    @property
    def pulls(self) -> bool:
        return self in (ExchangeMode.PULL, ExchangeMode.PUSH_PULL)


class Protocol:
    """Base class: a distribution mechanism attached to a cluster.

    Lifecycle: :meth:`attach` is called once; :meth:`run_cycle` every
    cycle; :meth:`on_local_update` when a client writes at some site;
    :meth:`on_news` when *another* protocol delivered news to a site
    (so mechanisms can be composed, e.g. mail + anti-entropy backup).
    """

    name = "protocol"

    def __init__(self) -> None:
        self.cluster: Optional["Cluster"] = None

    def attach(self, cluster: "Cluster") -> None:
        if self.cluster is not None:
            raise RuntimeError(f"{self.name} is already attached to a cluster")
        self.cluster = cluster

    def on_local_update(self, site_id: int, update: StoreUpdate) -> None:
        """A client injected ``update`` at ``site_id``."""

    def on_news(self, site_id: int, update: StoreUpdate, result: ApplyResult) -> None:
        """Another protocol delivered ``update`` to ``site_id``."""

    def on_site_added(self, site_id: int) -> None:
        """A new site joined the replica set (dynamic membership)."""

    def on_site_removed(self, site_id: int) -> None:
        """A site left the replica set permanently."""

    def run_cycle(self, cycle: int) -> None:
        """Execute this protocol's per-cycle step."""

    @property
    def active(self) -> bool:
        """True while the protocol still has pending distribution work.

        Used by :meth:`Cluster.run_until_quiescent`.  Steady-state
        mechanisms that never finish (plain anti-entropy) return False
        so they do not block quiescence detection.
        """
        return False


def entry_beats(challenger: Entry | None, incumbent: Entry | None) -> bool:
    """Would shipping ``challenger`` teach a site holding ``incumbent``
    anything?

    Ordinary last-writer-wins on the timestamp, plus the Section 2.2
    subtlety: two copies of the same death certificate compare on the
    *activation* timestamp so that reactivations keep propagating.
    """
    if challenger is None:
        return False
    if incumbent is None:
        return True
    if challenger.timestamp != incumbent.timestamp:
        return challenger.timestamp > incumbent.timestamp
    if isinstance(challenger, DeathCertificate) and isinstance(incumbent, DeathCertificate):
        return challenger.activation_timestamp > incumbent.activation_timestamp
    return False
