"""Death-certificate lifecycle management (Section 2).

Deleted items cannot simply be removed: the propagation mechanisms
would resurrect them from other replicas.  Deletions are therefore
*death certificates* that spread like ordinary data and cancel old
copies.  The question is when to discard the certificates themselves:

* **Fixed threshold** — keep every certificate ``tau1`` (e.g. 30 days)
  and then discard it; obsolete copies older than the threshold can be
  resurrected.
* **Dormant certificates** — most sites discard at ``tau1``, but the
  ``r`` retention sites named in the certificate keep a *dormant* copy
  until ``tau1 + tau2``.  A dormant certificate that meets an obsolete
  data item is *reactivated* — its activation timestamp (not its
  ordinary timestamp, so legitimate reinstatements survive) is set to
  the current time and it propagates again, like an antibody.  For
  equal space this extends the protected history by a factor O(n/r).

The :class:`ReplicaStore` implements the mechanics (sweeping,
reactivation-on-apply); this protocol schedules the sweeps, re-injects
reactivated certificates into the distribution mechanisms, and keeps
the bookkeeping the experiments report.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.core.store import ApplyResult, StoreUpdate
from repro.protocols.base import Protocol


@dataclasses.dataclass(frozen=True, slots=True)
class CertificatePolicy:
    """Retention thresholds, in cycles.

    ``tau2 = 0`` (with ``retention_count = 0`` at delete time) gives the
    plain fixed-threshold scheme.  ``space_budget_equivalent`` computes
    the paper's equal-space comparison: ``tau2 = (tau - tau1) * n / r``.
    """

    tau1: float
    tau2: float = 0.0
    sweep_period: int = 1

    def __post_init__(self) -> None:
        if self.tau1 <= 0:
            raise ValueError("tau1 must be positive")
        if self.tau2 < 0:
            raise ValueError("tau2 must be non-negative")
        if self.sweep_period < 1:
            raise ValueError("sweep_period must be >= 1")

    @staticmethod
    def space_budget_equivalent(tau: float, tau1: float, n: int, r: int) -> float:
        """The paper's equal-space ``tau2 = (tau - tau1) n / r``."""
        if tau <= tau1:
            raise ValueError("tau must exceed tau1 for the comparison")
        if r < 1:
            raise ValueError("need at least one retention site")
        return (tau - tau1) * n / r


@dataclasses.dataclass(slots=True)
class CertificateStats:
    expired: int = 0
    made_dormant: int = 0
    discarded_dormant: int = 0
    reactivations: int = 0


class DeathCertificateManager(Protocol):
    """Periodically sweeps certificate tables and re-propagates
    reactivated certificates."""

    name = "death-certificates"

    def __init__(self, policy: CertificatePolicy):
        super().__init__()
        self.policy = policy
        self.stats = CertificateStats()

    def attach(self, cluster) -> None:
        super().attach(cluster)
        # Let every store reject already-expired incoming certificates
        # (see ReplicaStore.certificate_ttl); without this an expired
        # certificate bounces forever between swept and unswept sites.
        for site_id in cluster.site_ids:
            cluster.sites[site_id].store.certificate_ttl = self.policy.tau1

    def on_site_added(self, site_id: int) -> None:
        self.cluster.sites[site_id].store.certificate_ttl = self.policy.tau1

    def on_news(self, site_id: int, update: StoreUpdate, result: ApplyResult) -> None:
        if result is ApplyResult.RESURRECTION_BLOCKED:
            self.stats.reactivations += 1
            # The awakened certificate must spread again.  The store has
            # already installed the reactivated copy locally; announcing
            # it as a local update lets whatever distribution mechanisms
            # are attached (mail, rumors) pick it up.
            reactivated = self.cluster.sites[site_id].store.entry(update.key)
            if reactivated is not None and reactivated.is_deletion:
                announcement = StoreUpdate(key=update.key, entry=reactivated)
                for protocol in self.cluster.protocols:
                    if protocol is not self:
                        protocol.on_local_update(site_id, announcement)

    def run_cycle(self, cycle: int) -> None:
        if cycle % self.policy.sweep_period != 0:
            return
        for site_id in self.cluster.site_ids:
            site = self.cluster.sites[site_id]
            if not site.up:
                continue
            sweep = site.store.sweep_certificates(self.policy.tau1, self.policy.tau2)
            self.stats.expired += sweep.expired
            self.stats.made_dormant += sweep.made_dormant
            self.stats.discarded_dormant += sweep.discarded_dormant

    def certificate_census(self) -> Dict[str, int]:
        """How many active / dormant certificates exist cluster-wide."""
        active = 0
        dormant = 0
        for site_id in self.cluster.site_ids:
            store = self.cluster.sites[site_id].store
            active += sum(1 for __, entry in store.entries() if entry.is_deletion)
            dormant += store.dormant_count()
        return {"active": active, "dormant": dormant}
