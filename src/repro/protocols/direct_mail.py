"""Direct mail (Section 1.2).

On every client update the entry site immediately posts the new value
to every other site it knows about:

    FOR EACH s' in S DO PostMail[to: s', msg: ("Update", s.ValueOf)]

Direct mail is timely and reasonably efficient — O(n) messages per
update, each traversing the links between source and destination — but
not reliable: the mail service can drop messages (queue overflow,
unreachable destinations) and the source may have an incomplete view of
the site set ``S``.  Both failure modes are modeled here; the
*incomplete knowledge* failure is expressed by giving each site a
``known_fraction`` of the full membership.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.store import ApplyResult, StoreUpdate
from repro.protocols.base import Protocol
from repro.sim.mailer import Letter, MailSystem


class DirectMailProtocol(Protocol):
    """Mail every update to all (known) other sites as it happens."""

    name = "direct-mail"

    def __init__(
        self,
        mail: Optional[MailSystem] = None,
        loss_probability: float = 0.0,
        mailbox_capacity: Optional[int] = None,
        known_fraction: float = 1.0,
        remail_on_news: bool = False,
    ):
        super().__init__()
        if not 0.0 < known_fraction <= 1.0:
            raise ValueError("known_fraction must be in (0, 1]")
        self._mail = mail
        self._loss_probability = loss_probability
        self._mailbox_capacity = mailbox_capacity
        self._known_fraction = known_fraction
        # The Clearinghouse's original (and abandoned) "remailing step":
        # redistribute by mail whenever news arrives from elsewhere.
        # Kept as an option so the O(n^2) blow-up can be demonstrated.
        self.remail_on_news = remail_on_news
        self._known: Dict[int, List[int]] = {}

    def attach(self, cluster) -> None:
        super().attach(cluster)
        if self._mail is None:
            self._mail = MailSystem(
                cluster.simulator,
                cluster.rng,
                loss_probability=self._loss_probability,
                mailbox_capacity=self._mailbox_capacity,
                latency=1.0,
            )
        self._mail.on_delivery(self._deliver)

    @property
    def mail(self) -> MailSystem:
        if self._mail is None:
            raise RuntimeError("protocol not attached yet")
        return self._mail

    def _known_sites(self, site_id: int) -> List[int]:
        """The subset of S that ``site_id`` knows about (itself excluded).

        With ``known_fraction < 1`` each site has a fixed random sample
        of the membership, modeling stale site lists.
        """
        known = self._known.get(site_id)
        if known is None:
            cluster = self.cluster
            others = [s for s in cluster.site_ids if s != site_id]
            if self._known_fraction < 1.0:
                rng = cluster.rng.stream("directmail-known", site_id)
                count = max(1, round(len(others) * self._known_fraction))
                known = sorted(rng.sample(others, count))
            else:
                known = others
            self._known[site_id] = known
        return known

    def on_site_added(self, site_id: int) -> None:
        self._known.clear()   # every site's membership view changed

    def on_site_removed(self, site_id: int) -> None:
        self._known.clear()

    def on_local_update(self, site_id: int, update: StoreUpdate) -> None:
        self._post_to_all(site_id, update)

    def on_news(self, site_id: int, update: StoreUpdate, result: ApplyResult) -> None:
        if self.remail_on_news:
            self._post_to_all(site_id, update)

    def _post_to_all(self, site_id: int, update: StoreUpdate) -> None:
        for destination in self._known_sites(site_id):
            self.cluster.count_update_sends(site_id, destination)
            self._mail.post(site_id, destination, update)

    def _deliver(self, letter: Letter) -> None:
        site = self.cluster.sites[letter.destination]
        if not site.up or not self.cluster.can_communicate(
            letter.source, letter.destination
        ):
            # An unreachable destination (down, or cut off by a
            # partition): the mail system already paid for the delivery
            # attempt; the update is simply lost here, which is exactly
            # the failure anti-entropy must repair.
            return
        self.cluster.apply_at(
            letter.destination, letter.payload, via=self, source=letter.source
        )

    @property
    def active(self) -> bool:
        """Mail still in flight counts as pending work."""
        stats = self.mail.stats
        return stats.posted > stats.delivered + stats.dropped
