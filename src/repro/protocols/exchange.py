"""Anti-entropy exchange strategies (Section 1.3).

``ResolveDifference`` as written in the paper compares two complete
database copies, one of which crosses the network — far too expensive
to run often.  Section 1.3 develops three successively cheaper
strategies, all implemented here against live :class:`ReplicaStore`
objects:

* :class:`FullCompare` — the naive exchange: ship every entry the
  other side lacks, examining the whole key union;
* :class:`ChecksumWithRecent` — exchange *recent update lists* (entries
  younger than ``tau``), then compare checksums, and only fall back to
  a full comparison when the checksums still disagree;
* :class:`PeelBack` — exchange updates in reverse timestamp order,
  incrementally recomputing checksums, until the checksums agree;
  requires the store's inverted timestamp index.
* :class:`HierarchicalChecksum` — compare checksum-tree roots, walk
  down only the differing subtrees, and run the full comparison
  bucket-by-bucket over just the dirty hash buckets; cost scales with
  the *difference* between the stores, not their size.

Every strategy leaves the two stores in agreement (for push-pull) and
reports how much data had to cross the wire, which is what Tables 4 and
5 distinguish as *compare traffic* vs *update traffic*.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Tuple

from repro.core.store import ApplyResult, ReplicaStore, StoreUpdate
from repro.protocols.base import ExchangeMode, entry_beats


@dataclasses.dataclass(slots=True)
class ExchangeReport:
    """What one anti-entropy conversation cost and changed.

    ``checksum_rounds`` counts whole-database checksum comparisons;
    ``tree_comparisons`` counts checksum-tree node comparisons during a
    hierarchical drill-down; ``buckets_resolved`` counts the dirty
    buckets whose contents were exchanged.  ``full_compare`` is true
    when any phase of the conversation fell back to comparing the
    complete databases.
    """

    sent_ab: List[StoreUpdate] = dataclasses.field(default_factory=list)
    sent_ba: List[StoreUpdate] = dataclasses.field(default_factory=list)
    entries_examined: int = 0
    checksum_rounds: int = 0
    tree_comparisons: int = 0
    buckets_resolved: int = 0
    full_compare: bool = False

    @property
    def updates_shipped(self) -> int:
        return len(self.sent_ab) + len(self.sent_ba)

    @property
    def changed(self) -> bool:
        return bool(self.sent_ab or self.sent_ba)

    def merge(self, other: "ExchangeReport") -> "ExchangeReport":
        """Fold a sub-conversation's report into this one.

        Every strategy that chains phases (checksum-then-full,
        tree-then-fallback) must aggregate through here so the
        counters keep one consistent meaning: costs add, shipped lists
        concatenate, and ``full_compare`` is sticky — if any phase paid
        for a full comparison the conversation did.
        """
        self.sent_ab.extend(other.sent_ab)
        self.sent_ba.extend(other.sent_ba)
        self.entries_examined += other.entries_examined
        self.checksum_rounds += other.checksum_rounds
        self.tree_comparisons += other.tree_comparisons
        self.buckets_resolved += other.buckets_resolved
        self.full_compare = self.full_compare or other.full_compare
        return self


@dataclasses.dataclass(slots=True)
class SessionReply:
    """The responder's half of one full-compare conversation.

    ``applied_results`` is parallel to ``applied``: the
    :class:`ApplyResult` each applied update produced, so callers can
    attribute deliveries (e.g. delivery spans) without re-deriving the
    merge outcome.
    """

    applied: List[StoreUpdate] = dataclasses.field(default_factory=list)
    send_back: List[StoreUpdate] = dataclasses.field(default_factory=list)
    entries_examined: int = 0
    applied_results: List[ApplyResult] = dataclasses.field(default_factory=list)


class ExchangeSession:
    """One endpoint of an anti-entropy conversation, transport-agnostic.

    The paper's ResolveDifference is a conversation between two sites;
    this class is the difference-resolution logic of *one* side, with the
    transport left to the caller.  The in-process simulator
    (:func:`resolve_difference`) and the live TCP runtime
    (``repro.net.node``) drive the same session objects, so the
    last-writer-wins / death-certificate merge rules exist in exactly one
    place:

        initiator                                   responder
        ---------                                   ---------
        offer() ———————— full entry table ————————> respond(offered)
        absorb(updates) <——— reply.send_back ———————————┘

    ``mode`` governs which halves carry data: the responder applies the
    offer only when the mode pushes, and returns entries the initiator
    lacks only when the mode pulls.
    """

    def __init__(
        self, store: ReplicaStore, mode: ExchangeMode = ExchangeMode.PUSH_PULL
    ):
        self.store = store
        self.mode = mode

    def offer(self) -> List[StoreUpdate]:
        """The initiator's opening message: its full active table.

        Even a pull-only exchange sends the table — the responder needs
        it as a digest to know which of its entries are newer (this is
        exactly the "one full copy crosses the network" cost Section 1.3's
        cheaper strategies exist to avoid).

        Entries go out in store order, which is deterministic under the
        simulator's seeded execution; the merge below is per-key, so no
        sort is needed.
        """
        return [
            StoreUpdate(key=key, entry=entry) for key, entry in self.store.entries()
        ]

    def respond(
        self,
        offered: Iterable[StoreUpdate],
        scope: Iterable[Tuple[object, object]] | None = None,
    ) -> SessionReply:
        """Resolve the initiator's offer against the local store.

        Single pass over the offer plus one over the local-only keys,
        probing the store directly instead of materializing both tables
        and sorting their key union.  Mutations are deferred until every
        decision is made, so each key is judged against the
        pre-exchange state of the store exactly as before.

        ``scope`` restricts the local-only pass to the given
        ``(key, entry)`` pairs instead of the whole table.  A
        hierarchical exchange resolves one hash bucket at a time, so the
        responder must only send back entries from *that* bucket — the
        rest of the store is out of the conversation's scope.  The scope
        iterable is consumed before any mutation is applied.
        """
        store = self.store
        pushes = self.mode.pushes
        pulls = self.mode.pulls
        reply = SessionReply()
        offered_keys = set()
        to_apply: List[StoreUpdate] = []
        examined = 0
        # Bound-method hoists: this loop runs once per offered entry in
        # every conversation, the bench's exchange_hot_path measurement.
        probe = store.entry
        note_offered = offered_keys.add
        for update in offered:
            key = update.key
            note_offered(key)
            local = probe(key)
            examined += 1
            if pushes and entry_beats(update.entry, local):
                to_apply.append(update)
            elif pulls and entry_beats(local, update.entry):
                reply.send_back.append(StoreUpdate(key=key, entry=local))
        local_entries = store.entries() if scope is None else scope
        for key, entry in local_entries:
            if key in offered_keys:
                continue
            examined += 1
            if pulls:
                reply.send_back.append(StoreUpdate(key=key, entry=entry))
        reply.entries_examined = examined
        for update in to_apply:
            result = store.apply_entry(update.key, update.entry)
            reply.applied.append(update)
            reply.applied_results.append(result)
        return reply

    def absorb_with_results(
        self, updates: Iterable[StoreUpdate]
    ) -> List[Tuple[StoreUpdate, ApplyResult]]:
        """Apply the responder's reply at the initiator.

        Returns every (update, result) pair — including non-news
        deliveries, which span accounting counts as redundant traffic.
        """
        return [(update, self.store.apply_update(update)) for update in updates]

    def absorb(self, updates: Iterable[StoreUpdate]) -> List[StoreUpdate]:
        """Apply the responder's reply at the initiator; returns the news."""
        return [
            update
            for update, result in self.absorb_with_results(updates)
            if result.was_news
        ]


def resolve_difference(
    a: ReplicaStore, b: ReplicaStore, mode: ExchangeMode = ExchangeMode.PUSH_PULL
) -> ExchangeReport:
    """The paper's basic ResolveDifference over full database copies.

    push: entries where ``a`` is newer overwrite ``b``;
    pull: entries where ``b`` is newer overwrite ``a``;
    push-pull: both.

    Implemented as an in-process drive of two :class:`ExchangeSession`
    endpoints — the very objects the live TCP runtime runs over sockets.
    """
    initiator = ExchangeSession(a, mode)
    responder = ExchangeSession(b, mode)
    reply = responder.respond(initiator.offer())
    report = ExchangeReport(full_compare=True)
    report.entries_examined = reply.entries_examined
    report.sent_ab = reply.applied
    report.sent_ba = initiator.absorb(reply.send_back)
    return report


class ExchangeStrategy:
    """Interface: perform one anti-entropy conversation between stores."""

    def exchange(
        self, a: ReplicaStore, b: ReplicaStore, mode: ExchangeMode
    ) -> ExchangeReport:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class FullCompare(ExchangeStrategy):
    """Always compare the complete databases."""

    def exchange(self, a: ReplicaStore, b: ReplicaStore, mode: ExchangeMode) -> ExchangeReport:
        return resolve_difference(a, b, mode)

    def describe(self) -> str:
        return "full-compare"


class ChecksumWithRecent(ExchangeStrategy):
    """Recent-update lists first, then checksums, then full compare.

    ``tau`` must exceed the expected update-distribution time or the
    checksum comparison will usually fail and traffic rises to slightly
    above plain anti-entropy (the paper is explicit about this failure
    mode; the tests demonstrate it).
    """

    def __init__(self, tau: float):
        if tau <= 0:
            raise ValueError("tau must be positive")
        self.tau = tau

    def exchange(self, a: ReplicaStore, b: ReplicaStore, mode: ExchangeMode) -> ExchangeReport:
        report = ExchangeReport()
        # Phase 1: exchange recent update lists (bounded by the number
        # of updates in the last tau, not the database size).
        recent_a = a.recent_updates(self.tau) if mode.pushes else []
        recent_b = b.recent_updates(self.tau) if mode.pulls else []
        report.entries_examined += len(recent_a) + len(recent_b)
        for update in recent_a:
            if b.apply_update(update).was_news:
                report.sent_ab.append(update)
        for update in recent_b:
            if a.apply_update(update).was_news:
                report.sent_ba.append(update)
        # Phase 2: compare checksums.
        report.checksum_rounds = 1
        if a.checksum == b.checksum:
            return report
        # Phase 3: checksums disagree -> full database comparison.  The
        # fallback's report is folded in via merge() so every counter —
        # not just the ones this strategy happened to touch — stays
        # consistent with what the conversation actually cost.
        return report.merge(resolve_difference(a, b, mode))

    def describe(self) -> str:
        return f"checksum+recent(tau={self.tau:g})"


class PeelBack(ExchangeStrategy):
    """Exchange updates in reverse timestamp order until checksums agree.

    Nearly ideal for network traffic: if the stores differ only in their
    most recent updates, only those cross the wire.  The cost is the
    inverted timestamp index each store must maintain (the paper's
    stated reservation about the scheme).

    Only meaningful for push-pull: agreement of full database checksums
    requires data to flow both ways.
    """

    def exchange(self, a: ReplicaStore, b: ReplicaStore, mode: ExchangeMode) -> ExchangeReport:
        if mode is not ExchangeMode.PUSH_PULL:
            raise ValueError("peel back requires push-pull exchanges")
        report = ExchangeReport()
        report.checksum_rounds = 1
        if a.checksum == b.checksum:
            return report
        # Merge the two newest-first streams; after shipping each batch
        # of equal-timestamp updates, re-compare checksums.  Batching
        # matters when both sides hold the same update (shared history):
        # shipping A's copy and re-comparing before B's copy has gone
        # the other way would find the checksums *still* unequal and
        # charge a useless round.  One round per distinct timestamp is
        # the granularity the docstring promises.
        stream_a = a.updates_newest_first()
        stream_b = b.updates_newest_first()
        pending_a = next(stream_a, None)
        pending_b = next(stream_b, None)
        while pending_a is not None or pending_b is not None:
            batch_ts = max(
                ts
                for ts in (
                    pending_a.timestamp if pending_a is not None else None,
                    pending_b.timestamp if pending_b is not None else None,
                )
                if ts is not None
            )
            while pending_a is not None and pending_a.timestamp == batch_ts:
                update, pending_a = pending_a, next(stream_a, None)
                report.entries_examined += 1
                if b.apply_update(update).was_news:
                    report.sent_ab.append(update)
            while pending_b is not None and pending_b.timestamp == batch_ts:
                update, pending_b = pending_b, next(stream_b, None)
                report.entries_examined += 1
                if a.apply_update(update).was_news:
                    report.sent_ba.append(update)
            report.checksum_rounds += 1
            if a.checksum == b.checksum:
                return report
        # Streams exhausted: both sides have seen everything, so the
        # stores must now agree.
        if a.checksum != b.checksum:  # pragma: no cover - invariant
            raise AssertionError("peel back exhausted both stores without agreement")
        return report

    def describe(self) -> str:
        return "peel-back"


class HierarchicalChecksum(ExchangeStrategy):
    """Drill down a checksum tree and exchange only differing buckets.

    Both stores maintain a Merkle-style tree over their hash buckets
    (``ReplicaStore.checksum_tree``) whose root equals the classic
    whole-database checksum.  The exchange compares roots, recurses into
    subtrees whose checksums differ, and then runs the ordinary
    session-based comparison restricted to each dirty bucket.  When the
    stores differ in a fraction ``d`` of buckets, the conversation
    examines ``O(d · B · bucket_size)`` entries plus ``O(d · B · log B)``
    tree-node comparisons — independent of the total database size for
    small differences, which is what makes anti-entropy affordable on
    million-key stores.

    Only meaningful for push-pull: pruning a subtree on checksum
    equality requires both sides' contributions to be present in the
    compared values, and a one-way exchange cannot certify that.

    If the peers disagree on bucket count their trees do not line up
    node-for-node; the exchange falls back to a full comparison rather
    than guessing at a mapping.
    """

    def exchange(self, a: ReplicaStore, b: ReplicaStore, mode: ExchangeMode) -> ExchangeReport:
        if mode is not ExchangeMode.PUSH_PULL:
            raise ValueError("hierarchical checksum requires push-pull exchanges")
        report = ExchangeReport()
        report.checksum_rounds = 1
        if a.checksum == b.checksum:
            return report
        if a.bucket_count != b.bucket_count:
            return report.merge(resolve_difference(a, b, mode))
        dirty, comparisons = a.checksum_tree.diff_buckets(b.checksum_tree)
        report.tree_comparisons = comparisons
        initiator = ExchangeSession(a, mode)
        responder = ExchangeSession(b, mode)
        for bucket in dirty:
            offered = [
                StoreUpdate(key=key, entry=entry)
                for key, entry in a.bucket_entries(bucket)
            ]
            reply = responder.respond(offered, scope=b.bucket_entries(bucket))
            report.entries_examined += reply.entries_examined
            report.sent_ab.extend(reply.applied)
            report.sent_ba.extend(initiator.absorb(reply.send_back))
            report.buckets_resolved += 1
        return report

    def describe(self) -> str:
        return "hierarchical-checksum"


def strategy_for(name: str, tau: float = 100.0) -> ExchangeStrategy:
    """Factory: ``"full"``, ``"checksum"``, ``"peelback"`` or ``"hierarchical"``."""
    if name == "full":
        return FullCompare()
    if name == "checksum":
        return ChecksumWithRecent(tau)
    if name == "peelback":
        return PeelBack()
    if name == "hierarchical":
        return HierarchicalChecksum()
    raise ValueError(f"unknown exchange strategy {name!r}")
