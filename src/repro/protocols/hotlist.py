"""Peel back combined with rumor mongering (end of Section 1.5).

Each site keeps its database keys in a *local activity order* (a
doubly-linked list, front = hottest) instead of the timestamp index
peel back needs.  An exchange proceeds in batches: the two sites
compare checksums; while they disagree, each sends the next batch of
updates from the front of its list.  Updates that proved useful to the
partner move to the front of the sender's list (they are effectively
hot rumors); useless ones slip deeper.  New local updates and received
news enter at the front.

The paper's claims, which the tests verify:

* better than peel back alone — no timestamp index, and it behaves
  well when a partition heals (the missed updates are re-learned and
  immediately become hot at the frontier sites);
* better than rumor mongering alone — there is no failure probability:
  any update can become hot again, and checksum agreement is the
  termination condition, so an exchange never ends with the pair
  disagreeing.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.core.activity import ActivityOrder
from repro.core.store import ApplyResult, StoreUpdate
from repro.protocols.base import Protocol
from repro.sim.transport import ConnectionLedger, ConnectionPolicy, UNLIMITED
from repro.topology.spatial import PartnerSelector, UniformSelector


@dataclasses.dataclass(slots=True)
class HotListStats:
    exchanges: int = 0
    checksum_rounds: int = 0
    batches_sent: int = 0
    updates_shipped: int = 0
    useful_updates: int = 0
    rejected: int = 0


class HotListProtocol(Protocol):
    """Anti-entropy by activity-ordered batches ("peel back + rumors")."""

    name = "hot-list"

    def __init__(
        self,
        batch_size: int = 4,
        selector: Optional[PartnerSelector] = None,
        policy: ConnectionPolicy = UNLIMITED,
        max_batches_per_exchange: Optional[int] = None,
    ):
        super().__init__()
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        # Bounding batches per exchange turns the scheme into an
        # incremental one: the pair may stay unequal after one cycle
        # but convergence still follows over subsequent cycles.
        self.max_batches_per_exchange = max_batches_per_exchange
        self._selector = selector
        self.policy = policy
        self.ledger = ConnectionLedger(policy)
        self.stats = HotListStats()
        self._orders: Dict[int, ActivityOrder] = {}

    def attach(self, cluster) -> None:
        super().attach(cluster)
        if self._selector is None:
            self._selector = UniformSelector(cluster.site_ids)
        self._orders = {site_id: ActivityOrder() for site_id in cluster.site_ids}
        # Seed the activity orders with whatever the stores already hold.
        for site_id in cluster.site_ids:
            self._seed_order(site_id)

    def _seed_order(self, site_id: int) -> None:
        order = self._orders[site_id]
        for update in self.cluster.sites[site_id].store.updates_newest_first():
            order.touch(update.key)

    def _refresh_selector(self) -> None:
        # Rebuildable selectors (uniform, auto or explicit) follow the
        # membership; topology-bound selectors keep their tables.
        if self._selector is not None:
            self._selector.rebuild(self.cluster.site_ids)

    def on_site_added(self, site_id: int) -> None:
        self._orders[site_id] = ActivityOrder()
        self._seed_order(site_id)
        self._refresh_selector()

    def on_site_removed(self, site_id: int) -> None:
        self._orders.pop(site_id, None)
        self._refresh_selector()

    @property
    def selector(self) -> PartnerSelector:
        if self._selector is None:
            raise RuntimeError("protocol not attached yet")
        return self._selector

    def order_of(self, site_id: int) -> ActivityOrder:
        return self._orders[site_id]

    # ------------------------------------------------------------------

    def on_local_update(self, site_id: int, update: StoreUpdate) -> None:
        self._orders[site_id].touch(update.key)

    def on_news(self, site_id: int, update: StoreUpdate, result: ApplyResult) -> None:
        self._orders[site_id].touch(update.key)

    @property
    def active(self) -> bool:
        """The scheme is a steady-state repair mechanism; like plain
        anti-entropy it never reports pending work of its own."""
        return False

    # ------------------------------------------------------------------

    def run_cycle(self, cycle: int) -> None:
        cluster = self.cluster
        self.ledger.reset()
        for site_id in cluster.site_ids:
            if not cluster.sites[site_id].up:
                continue
            partner_id = self.ledger.connect_with_hunting(
                self._choose_up_partner, site_id
            )
            if partner_id is None:
                self.stats.rejected += 1
                cluster.count_rejection()
                continue
            self._exchange(site_id, partner_id)

    def _choose_up_partner(self, site_id: int):
        partner = self.selector.choose(site_id, self.cluster.sites[site_id].rng)
        if partner is None or not self.cluster.can_communicate(site_id, partner):
            return None
        return partner

    def _exchange(self, site_id: int, partner_id: int) -> None:
        cluster = self.cluster
        store_a = cluster.sites[site_id].store
        store_b = cluster.sites[partner_id].store
        cluster.count_comparison(site_id, partner_id)
        self.stats.exchanges += 1
        self.stats.checksum_rounds += 1
        if store_a.checksum == store_b.checksum:
            return
        # Walk a *snapshot* of each activity order: touches and
        # demotions made during the exchange reorder future exchanges,
        # not this one, so the walk provably covers every key either
        # store held when the conversation began.
        plan_a = list(self._orders[site_id].keys_front_to_back())
        plan_b = list(self._orders[partner_id].keys_front_to_back())
        useless_a: list = []
        useless_b: list = []
        position = 0
        batches = 0
        try:
            while store_a.checksum != store_b.checksum:
                if (
                    self.max_batches_per_exchange is not None
                    and batches >= self.max_batches_per_exchange
                ):
                    return  # incremental mode: finish in later cycles
                sent_a = self._send_batch(site_id, partner_id, plan_a, position, useless_a)
                sent_b = self._send_batch(partner_id, site_id, plan_b, position, useless_b)
                position += self.batch_size
                batches += 1
                self.stats.checksum_rounds += 1
                if sent_a == 0 and sent_b == 0 and position >= max(len(plan_a), len(plan_b)):
                    # Both plans exhausted: every entry has crossed the
                    # wire, so the stores must agree now.
                    if store_a.checksum != store_b.checksum:  # pragma: no cover
                        raise AssertionError(
                            "hot-list exchange exhausted both lists without agreement"
                        )
                    return
        finally:
            # Useless keys slip behind the keys this exchange never
            # reached, so repeated short (incremental) exchanges rotate
            # through the whole list instead of re-offering the same
            # cold prefix forever.
            shipped = position
            for key in useless_a:
                self._orders[site_id].demote(key, positions=shipped + 1)
            for key in useless_b:
                self._orders[partner_id].demote(key, positions=shipped + 1)

    def _send_batch(
        self, source: int, target: int, plan, position: int, useless: list
    ) -> int:
        """Ship one batch of ``plan`` (a key-order snapshot) from
        ``source``; returns the number of updates sent.  Keys that
        taught the partner nothing are appended to ``useless`` for the
        end-of-exchange demotion."""
        cluster = self.cluster
        order = self._orders[source]
        store = cluster.sites[source].store
        keys = plan[position:position + self.batch_size]
        if not keys:
            return 0
        self.stats.batches_sent += 1
        sent = 0
        for key in keys:
            entry = store.entry(key)
            if entry is None:
                order.discard(key)
                continue
            update = StoreUpdate(key=key, entry=entry)
            cluster.count_update_sends(source, target, 1)
            self.stats.updates_shipped += 1
            sent += 1
            result = cluster.apply_at(target, update, via=self, source=source)
            if result.was_news:
                # Useful: hot at both ends, like a rumor.
                self.stats.useful_updates += 1
                order.touch(key)
                self._orders[target].touch(key)
            else:
                # Already known (or the partner holds something newer,
                # which will flow back in its own batches): cold.
                useless.append(key)
        return sent
