"""Rumor mongering — complex epidemics (Section 1.4).

With respect to one update a site is *susceptible* (has not seen it),
*infective* (knows it and is actively sharing it as a **hot rumor**) or
*removed* (knows it but has stopped spreading it).  An infective site
periodically picks a partner and shares its hot-rumor list; sites lose
interest in a rumor after unnecessary contacts.  The design space the
paper explores, all implemented here:

* **Blind vs Feedback** — lose interest with probability 1/k per cycle
  regardless of the recipient (*blind*), or only on contacts where the
  recipient already knew the rumor (*feedback*);
* **Counter vs Coin** — lose interest after ``k`` unnecessary contacts
  (*counter*) or with probability ``1/k`` per unnecessary contact
  (*coin*); blind+counter means "stay infective exactly k cycles";
* **Push vs Pull vs Push-pull** — infective sites push rumors, or every
  site pulls from its partner (Table 3's footnote gives the pull
  counter semantics: per cycle, if *any* recipient needed the update
  the counter resets, if all did not one is added), or both at once;
* **Connection limit & hunting** — a site accepts at most ``c``
  conversations per cycle; rejected initiators may hunt for another
  partner (Section 1.4 observes a limit of 1 *helps* push and hurts
  pull);
* **Minimization** — push-pull exchanges carry the counters, and when
  both parties already knew the update only the one with the smaller
  counter increments (ties increment both).

All decisions within one cycle are based on start-of-cycle state, so a
site infected during a cycle starts spreading in the next — matching
the synchronous model underlying the paper's analysis.

This class is the *reference* engine.  For uniform partner selection
the batched core (:func:`repro.sim.batch.rumor_trial`) runs the same
design space over flat arrays, bit-for-bit identical — any change to
the cycle semantics here must be mirrored there, and the golden tests
in ``tests/test_batch_engine.py`` will catch a divergence.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.items import Entry
from repro.core.store import ApplyResult, StoreUpdate
from repro.protocols.base import ExchangeMode, Protocol
from repro.sim.transport import ConnectionLedger, ConnectionPolicy, UNLIMITED
from repro.topology.spatial import PartnerSelector, UniformSelector


@dataclasses.dataclass(frozen=True, slots=True)
class RumorConfig:
    """One point in the paper's complex-epidemic design space."""

    mode: ExchangeMode = ExchangeMode.PUSH
    feedback: bool = True
    counter: bool = True
    k: int = 1
    # Pull's footnote semantics: a useful contact resets the counter.
    # ``None`` = automatic (True for pull, False otherwise).
    reset_on_success: Optional[bool] = None
    minimization: bool = False
    policy: ConnectionPolicy = UNLIMITED

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.minimization:
            if self.mode is not ExchangeMode.PUSH_PULL:
                raise ValueError("minimization requires push-pull")
            if not (self.counter and self.feedback):
                raise ValueError("minimization requires feedback counters")

    @property
    def resets_on_success(self) -> bool:
        if self.reset_on_success is not None:
            return self.reset_on_success
        return self.mode is ExchangeMode.PULL

    def describe(self) -> str:
        parts = [
            self.mode.value,
            "feedback" if self.feedback else "blind",
            f"counter(k={self.k})" if self.counter else f"coin(k={self.k})",
        ]
        if self.minimization:
            parts.append("minimization")
        if not self.policy.unlimited:
            parts.append(
                f"conn<={self.policy.connection_limit},hunt={self.policy.hunt_limit}"
            )
        return ", ".join(parts)


@dataclasses.dataclass(slots=True)
class _Rumor:
    """Per-site state for one hot rumor."""

    entry: Entry
    counter: int = 0
    born_cycle: int = 0


@dataclasses.dataclass(slots=True)
class _CycleEvents:
    """Feedback gathered for one (site, rumor) during one cycle."""

    useful: int = 0
    useless: int = 0
    # Minimization: counters of partners that also knew the rumor.
    partner_counters: List[int] = dataclasses.field(default_factory=list)


@dataclasses.dataclass(slots=True)
class RumorStats:
    conversations: int = 0
    updates_sent: int = 0
    useful_sends: int = 0
    deactivations: int = 0
    rejected: int = 0


class RumorMongeringProtocol(Protocol):
    name = "rumor-mongering"

    def __init__(
        self,
        config: RumorConfig = RumorConfig(),
        selector: Optional[PartnerSelector] = None,
    ):
        super().__init__()
        self.config = config
        self._selector = selector
        self.ledger = ConnectionLedger(config.policy)
        self.stats = RumorStats()
        self._hot: Dict[int, Dict[Hashable, _Rumor]] = {}

    def attach(self, cluster) -> None:
        super().attach(cluster)
        if self._selector is None:
            self._selector = UniformSelector(cluster.site_ids)
        self._hot = {site_id: {} for site_id in cluster.site_ids}

    def _refresh_selector(self) -> None:
        # Rebuildable selectors (uniform, auto or explicit) follow the
        # membership; topology-bound selectors keep their tables.
        if self._selector is not None:
            self._selector.rebuild(self.cluster.site_ids)

    def on_site_added(self, site_id: int) -> None:
        self._hot[site_id] = {}
        self._refresh_selector()

    def on_site_removed(self, site_id: int) -> None:
        self._hot.pop(site_id, None)
        self._refresh_selector()

    @property
    def selector(self) -> PartnerSelector:
        if self._selector is None:
            raise RuntimeError("protocol not attached yet")
        return self._selector

    # ------------------------------------------------------------------
    # Hot-rumor bookkeeping
    # ------------------------------------------------------------------

    def make_hot(self, site_id: int, update: StoreUpdate) -> None:
        """Install (or refresh) a hot rumor at a site."""
        rumors = self._hot[site_id]
        existing = rumors.get(update.key)
        if existing is not None and not _beats(update.entry, existing.entry):
            return
        rumors[update.key] = _Rumor(
            entry=update.entry, counter=0, born_cycle=self.cluster.cycle
        )

    def is_infective(self, site_id: int, key: Hashable | None = None) -> bool:
        rumors = self._hot.get(site_id, {})
        if key is None:
            return bool(rumors)
        return key in rumors

    def infective_count(self, key: Hashable | None = None) -> int:
        return sum(1 for s in self._hot if self.is_infective(s, key))

    def hot_rumors(self, site_id: int) -> Dict[Hashable, _Rumor]:
        return dict(self._hot.get(site_id, {}))

    @property
    def active(self) -> bool:
        return any(self._hot[s] for s in self._hot)

    def on_local_update(self, site_id: int, update: StoreUpdate) -> None:
        self.make_hot(site_id, update)

    def on_news(self, site_id: int, update: StoreUpdate, result: ApplyResult) -> None:
        """News delivered by another mechanism (mail, anti-entropy
        redistribution) becomes a hot rumor here as well."""
        self.make_hot(site_id, update)

    # ------------------------------------------------------------------
    # The per-cycle step
    # ------------------------------------------------------------------

    def run_cycle(self, cycle: int) -> None:
        cluster = self.cluster
        config = self.config
        self.ledger.reset()
        # Start-of-cycle snapshot: who is infective with what.
        snapshot: Dict[int, List[Tuple[Hashable, Entry, int]]] = {}
        for site_id in cluster.site_ids:
            if not cluster.sites[site_id].up:
                continue
            rumors = self._hot[site_id]
            if rumors:
                snapshot[site_id] = [
                    (key, rumor.entry, rumor.counter) for key, rumor in rumors.items()
                ]
        events: Dict[Tuple[int, Hashable], _CycleEvents] = {}

        if config.mode is ExchangeMode.PUSH:
            initiators = list(snapshot.keys())
        else:
            # pull and push-pull: every up site solicits each cycle.
            initiators = [s for s in cluster.site_ids if cluster.sites[s].up]

        for site_id in initiators:
            partner_id = self.ledger.connect_with_hunting(
                self._choose_up_partner, site_id
            )
            if partner_id is None:
                self.stats.rejected += 1
                cluster.count_rejection()
                continue
            self._converse(site_id, partner_id, snapshot, events)

        self._settle_cycle(snapshot, events)

    def _choose_up_partner(self, site_id: int):
        partner = self.selector.choose(site_id, self.cluster.sites[site_id].rng)
        if partner is None or not self.cluster.can_communicate(site_id, partner):
            return None
        return partner

    # ------------------------------------------------------------------

    def _converse(
        self,
        site_id: int,
        partner_id: int,
        snapshot: Dict[int, List[Tuple[Hashable, Entry, int]]],
        events: Dict[Tuple[int, Hashable], _CycleEvents],
    ) -> None:
        cluster = self.cluster
        mode = self.config.mode
        cluster.count_comparison(site_id, partner_id)
        self.stats.conversations += 1
        mine = snapshot.get(site_id, [])
        theirs = snapshot.get(partner_id, [])
        their_keys = {key: (entry, counter) for key, entry, counter in theirs}

        if mode.pushes:
            for key, entry, counter in mine:
                other = their_keys.get(key)
                if (
                    self.config.minimization
                    and other is not None
                    and other[0].timestamp == entry.timestamp
                ):
                    # Both parties hold the same hot rumor: the
                    # minimization rule replaces plain feedback.  Each
                    # side records the other's counter; no data moves.
                    _event(events, site_id, key).partner_counters.append(other[1])
                    _event(events, partner_id, key).partner_counters.append(counter)
                    continue
                self._ship(site_id, partner_id, key, entry, events)
        if mode.pulls:
            for key, entry, counter in theirs:
                if self.config.minimization:
                    other = next(
                        ((e, c) for k, e, c in mine if k == key), None
                    )
                    if other is not None and other[0].timestamp == entry.timestamp:
                        continue  # already handled in the push direction
                self._ship(partner_id, site_id, key, entry, events)

    def _ship(
        self,
        source: int,
        target: int,
        key: Hashable,
        entry: Entry,
        events: Dict[Tuple[int, Hashable], _CycleEvents],
    ) -> None:
        """Transmit one rumor and record feedback for the source."""
        cluster = self.cluster
        update = StoreUpdate(key=key, entry=entry)
        cluster.count_update_sends(source, target, 1)
        self.stats.updates_sent += 1
        result = cluster.apply_at(target, update, via=self, source=source)
        if result.was_news:
            self.stats.useful_sends += 1
            cluster.count_useful_update_send(source, target, 1)
            self.make_hot(target, update)
            _event(events, source, key).useful += 1
        else:
            _event(events, source, key).useless += 1

    # ------------------------------------------------------------------
    # End-of-cycle interest-loss decisions
    # ------------------------------------------------------------------

    def _settle_cycle(
        self,
        snapshot: Dict[int, List[Tuple[Hashable, Entry, int]]],
        events: Dict[Tuple[int, Hashable], _CycleEvents],
    ) -> None:
        for site_id, rumor_list in snapshot.items():
            rng = self.cluster.sites[site_id].rng
            for key, entry, __ in rumor_list:
                rumor = self._hot[site_id].get(key)
                if rumor is None or rumor.entry.timestamp != entry.timestamp:
                    continue  # deactivated or superseded during the cycle
                event = events.get((site_id, key))
                if self._loses_interest(rumor, event, rng):
                    del self._hot[site_id][key]
                    self.stats.deactivations += 1

    def _loses_interest(
        self, rumor: _Rumor, event: Optional[_CycleEvents], rng
    ) -> bool:
        config = self.config
        if not config.feedback:
            # Blind: independent of any recipient feedback.
            if config.counter:
                rumor.counter += 1
                return rumor.counter >= config.k
            return rng.random() < 1.0 / config.k

        # Feedback variants need contact outcomes.
        if event is None:
            return False  # no conversation touched this rumor this cycle
        if config.minimization and event.partner_counters:
            # Increment only when our counter is <= every partner's that
            # also knew the rumor (ties increment both sides).
            if all(rumor.counter <= c for c in event.partner_counters):
                rumor.counter += 1
            return rumor.counter >= config.k
        if config.counter:
            if event.useful and config.resets_on_success:
                rumor.counter = 0
                return False
            if event.useful:
                return False
            if event.useless:
                # Per-cycle aggregation (the Table 3 footnote): all
                # contacts unnecessary -> one increment.
                rumor.counter += 1
                return rumor.counter >= config.k
            return False
        # Coin: flip once per unnecessary contact.
        for __ in range(event.useless):
            if rng.random() < 1.0 / config.k:
                return True
        return False


def _event(
    events: Dict[Tuple[int, Hashable], _CycleEvents], site_id: int, key: Hashable
) -> _CycleEvents:
    event = events.get((site_id, key))
    if event is None:
        event = _CycleEvents()
        events[(site_id, key)] = event
    return event


def _beats(challenger: Entry, incumbent: Entry) -> bool:
    from repro.protocols.base import entry_beats

    return entry_beats(challenger, incumbent)
