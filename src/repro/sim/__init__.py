"""Discrete-event simulation substrate.

The paper's results are expressed in synchronous *cycles* (each site
executes its protocol once per cycle).  We provide a general
discrete-event engine (:mod:`repro.sim.engine`) plus the pieces the
protocols need on top of it: deterministic per-site random streams,
per-cycle connection accounting with rejection and hunting, an
unreliable queued mail service, and metric collectors for residue,
traffic and convergence delay.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.metrics import EpidemicMetrics, LinkTraffic, TrafficCounter
from repro.sim.transport import ConnectionLedger, ConnectionPolicy
from repro.sim.mailer import MailSystem, Mailbox, MailStats
from repro.sim.faults import FaultSchedule, RandomChurn

__all__ = [
    "Event",
    "Simulator",
    "RngRegistry",
    "derive_seed",
    "EpidemicMetrics",
    "LinkTraffic",
    "TrafficCounter",
    "ConnectionLedger",
    "ConnectionPolicy",
    "MailSystem",
    "Mailbox",
    "MailStats",
    "FaultSchedule",
    "RandomChurn",
]
