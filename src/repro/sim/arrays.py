"""Vector backends for the batched simulator core (:mod:`repro.sim.batch`).

The batched trial engine expresses its per-cycle bookkeeping through the
small set of primitives below: completing a population of uniform
partner draws, gathering infection flags at partner indices, masking,
counting and compressing.  Two interchangeable implementations exist:

* :class:`NumpyBackend` — vectorizes every primitive over the whole
  site population with numpy arrays (used automatically when numpy is
  importable);
* :class:`PythonBackend` — the same operations over plain lists, so the
  engine runs unchanged on an interpreter without numpy.

Both backends carry integers and booleans only — no floating point —
so trial results cannot depend on which one ran; the golden
batched-vs-reference tests exercise both.

Set ``REPRO_PURE_PYTHON=1`` to force the pure-python backend (and the
pure-python wire codec, see :mod:`repro.net.binwire`) even when the
accelerator libraries are installed; CI uses this to prove the
fallbacks.
"""

from __future__ import annotations

import os
from typing import List, Sequence

#: Environment variable disabling every optional accelerator library.
FORCE_PURE_ENV = "REPRO_PURE_PYTHON"


def pure_python_forced() -> bool:
    return os.environ.get(FORCE_PURE_ENV, "").strip() not in ("", "0")


class PythonBackend:
    """The list-based reference implementation of the primitives."""

    name = "python"

    @staticmethod
    def adjusted_partners(picks: Sequence[int]) -> List[int]:
        """Complete one uniform draw per site: site ``i`` drew ``pick``
        in ``[0, n-1)``; a pick at or past its own index skips over
        itself (the :class:`~repro.topology.spatial.UniformSelector`
        arithmetic, applied to the whole population at once)."""
        return [pick + 1 if pick >= own else pick for own, pick in enumerate(picks)]

    @staticmethod
    def adjusted_partners_at(picks: Sequence[int], owners: Sequence[int]) -> List[int]:
        """Like :meth:`adjusted_partners` for a sparse initiator set:
        ``owners[i]`` is the site that drew ``picks[i]``."""
        return [
            pick + 1 if pick >= own else pick for pick, own in zip(picks, owners)
        ]

    @staticmethod
    def snapshot(flags: bytearray) -> Sequence[int]:
        """Freeze per-site 0/1 flags as a cycle-start snapshot."""
        return bytes(flags)

    @staticmethod
    def push_news(targets: Sequence[int], infected: Sequence[int]) -> List[bool]:
        """Which of a cycle's push conversations deliver news.

        Conversation ``i`` ships to ``targets[i]``; it is news iff the
        target was susceptible at the start of the cycle and no earlier
        conversation this cycle already reached it (conversations run
        in ascending initiator order, so first occurrence wins)."""
        seen = set()
        news = []
        for t in targets:
            if infected[t] or t in seen:
                news.append(False)
            else:
                seen.add(t)
                news.append(True)
        return news

    @staticmethod
    def take(flags: Sequence[int], idx: Sequence[int]) -> List[int]:
        """``flags`` gathered at positions ``idx``."""
        return [flags[i] for i in idx]

    @staticmethod
    def and_not(a: Sequence[int], b: Sequence[int]) -> List[bool]:
        """Elementwise ``a and not b``."""
        return [bool(x) and not y for x, y in zip(a, b)]

    @staticmethod
    def count(mask: Sequence[bool]) -> int:
        return sum(mask)

    @staticmethod
    def compress(values: Sequence[int], mask: Sequence[bool]) -> List[int]:
        """``values`` where ``mask`` holds, order preserved."""
        return [value for value, keep in zip(values, mask) if keep]


class NumpyBackend:
    """Numpy-vectorized primitives; import guarded by :func:`get_backend`."""

    name = "numpy"

    @staticmethod
    def adjusted_partners(picks: Sequence[int]):
        import numpy

        arr = numpy.fromiter(picks, dtype=numpy.intp, count=len(picks))
        own = numpy.arange(len(arr), dtype=numpy.intp)
        return arr + (arr >= own)

    @staticmethod
    def adjusted_partners_at(picks: Sequence[int], owners: Sequence[int]):
        import numpy

        arr = numpy.fromiter(picks, dtype=numpy.intp, count=len(picks))
        own = numpy.fromiter(owners, dtype=numpy.intp, count=len(arr))
        return arr + (arr >= own)

    @staticmethod
    def snapshot(flags: bytearray):
        import numpy

        return numpy.frombuffer(bytes(flags), dtype=numpy.uint8) != 0

    @staticmethod
    def push_news(targets, infected) -> List[bool]:
        import numpy

        t = numpy.asarray(targets)
        fresh = numpy.logical_not(numpy.asarray(infected)[t])
        first = numpy.zeros(len(t), dtype=bool)
        first[numpy.unique(t, return_index=True)[1]] = True
        return numpy.logical_and(fresh, first).tolist()

    @staticmethod
    def take(flags, idx):
        return flags[idx]

    @staticmethod
    def and_not(a, b):
        import numpy

        return numpy.logical_and(a, numpy.logical_not(b))

    @staticmethod
    def count(mask) -> int:
        import numpy

        return int(numpy.count_nonzero(mask))

    @staticmethod
    def compress(values, mask) -> List[int]:
        import numpy

        return numpy.asarray(values)[numpy.asarray(mask)].tolist()


def numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def get_backend():
    """The best available backend, honoring ``REPRO_PURE_PYTHON``."""
    if not pure_python_forced() and numpy_available():
        return NumpyBackend
    return PythonBackend
