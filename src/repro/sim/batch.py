"""Batched single-update epidemic trials — the simulator's fast path.

The experiment tables and the bench suite run thousands of independent
trials of one shape: inject a single tracked update into a uniformly
mixed population and drive one epidemic protocol to completion or
quiescence, recording residue / traffic / delay.  The general
:class:`~repro.cluster.cluster.Cluster` machinery pays for flexibility
on every conversation of every cycle — per-site stores, entry objects,
event-bus guards, protocol dispatch — none of which can affect the
metrics of that trial shape.

This module runs the same epidemics over dense integer site indices
and flat per-site state arrays instead.  Population-wide bookkeeping
(completing partner draws, susceptible/infective set updates) goes
through the vector backend (:mod:`repro.sim.arrays`): numpy when
available, plain lists otherwise, with identical results either way.

**Bit-for-bit identity is the contract.**  Every random draw is taken
from the same per-site ``random.Random`` streams the cluster would
create (:func:`repro.sim.rng.site_seed`), in the same order the scalar
protocols consume them: partner selection in ascending initiator order
within a cycle, then interest-loss coin flips in ascending snapshot
order.  The golden tests (``tests/test_batch_engine.py``) hold the
resulting :class:`~repro.sim.metrics.EpidemicMetrics` equal to the
reference engine's, field for field, across the paper's table
configurations; ``engine="reference"`` in
:mod:`repro.experiments.tables` keeps the scalar path selectable.

Scope: one tracked update, every site up, no topology routing, no WAN
model.  The table and bench trial functions dispatch here through
``engine="auto"``; anything richer stays on the cluster path.
"""

from __future__ import annotations

import os
import struct
from collections import OrderedDict
from typing import Dict, List, Optional

try:  # the C core type seeds once; random.Random(seed) seeds twice
    from _random import Random as _CoreRandom
except ImportError:  # pragma: no cover - non-CPython interpreters
    from random import Random as _CoreRandom

from repro.sim.arrays import get_backend
from repro.sim.metrics import EpidemicMetrics
from repro.sim.rng import SiteSeeder
from repro.sim.transport import hunt_for_partner

#: Set to ``0`` to disable the per-process word-replay cache.
TRIAL_CACHE_ENV = "REPRO_TRIAL_CACHE"

# Replaying a trial with a master seed seen before (golden tests, bench
# repetitions, bisection) skips Mersenne-Twister seeding entirely: the
# raw 32-bit words each site consumed are a pure function of
# (master_seed, site_id, draw index), so they are memoized per process.
# Seeding is the dominant per-trial cost (~6us per participating site),
# so replays run several times faster than first runs.
_WORD_CACHE: "OrderedDict[int, Dict[int, List[int]]]" = OrderedDict()
# Large enough to hold a whole table sweep (25 seeds for Tables 1-2);
# one seed's words for a 1000-site trial weigh roughly half a megabyte.
_WORD_CACHE_SEEDS = 32

_TWO53_INV = 1.0 / 9007199254740992.0  # 2**-53, the CPython random() scale
_UNPACK_BLOCK = struct.Struct("<16I").unpack  # one 16-word refill block


def clear_word_cache() -> None:
    _WORD_CACHE.clear()


def _seed_bucket(master_seed: int) -> Optional[Dict[int, List[int]]]:
    """The word-list store for one master seed (None if caching is off)."""
    if os.environ.get(TRIAL_CACHE_ENV, "").strip() == "0":
        return None
    bucket = _WORD_CACHE.get(master_seed)
    if bucket is None:
        bucket = _WORD_CACHE[master_seed] = {}
        while len(_WORD_CACHE) > _WORD_CACHE_SEEDS:
            _WORD_CACHE.popitem(last=False)
    else:
        _WORD_CACHE.move_to_end(master_seed)
    return bucket


class SiteDraws:
    """One site's random stream, drawn as raw 32-bit words.

    CPython's ``random.Random`` builds every draw from 32-bit outputs of
    the Mersenne Twister: ``getrandbits(32)`` is one word,
    ``_randbelow(n)`` is the top ``n.bit_length()`` bits of a word with
    rejection, ``random()`` combines the top 27 and 26 bits of two
    words.  Reproducing those constructions here keeps draws bit-equal
    to the site streams the reference engine hands out
    (``RngRegistry.site_stream``) while letting consumed words be
    recorded into — and replayed from — the per-seed word cache without
    touching the underlying generator again.
    """

    __slots__ = ("seeder", "site", "words", "pos", "rng")

    def __init__(self, seeder: SiteSeeder, site: int, words: Optional[List[int]]):
        self.seeder = seeder
        self.site = site
        self.words = [] if words is None else words
        self.pos = 0
        self.rng = None

    def _refill(self) -> None:
        """Extend the word list by one generator block (cache miss).

        ``getrandbits(32 * k)`` packs ``k`` successive 32-bit outputs
        least-significant first, so a whole block costs one C call both
        to skip the already-cached prefix and to produce new words.
        """
        rng = self.rng
        if rng is None:
            rng = self.rng = _CoreRandom(self.seeder.seed(self.site))
            consumed = len(self.words)
            if consumed:  # replayed from cache; advance past the prefix
                rng.getrandbits(32 * consumed)
        self.words.extend(_UNPACK_BLOCK(rng.getrandbits(512).to_bytes(64, "little")))

    def randbelow(self, n: int, shift: int) -> int:
        """``Random._randbelow(n)``; ``shift`` is ``32 - n.bit_length()``."""
        words = self.words
        pos = self.pos
        while True:
            if pos >= len(words):
                self.pos = pos
                self._refill()
            value = words[pos] >> shift
            pos += 1
            if value < n:
                self.pos = pos
                return value

    def random(self) -> float:
        """``Random.random()``: 53 bits from two words."""
        pos = self.pos
        words = self.words
        if pos + 2 > len(words):
            self.pos = pos
            self._refill()
        a = words[pos]
        b = words[pos + 1]
        self.pos = pos + 2
        return ((a >> 5) * 67108864.0 + (b >> 6)) * _TWO53_INV


class _TrialDraws:
    """Lazy per-site :class:`SiteDraws` for one trial."""

    __slots__ = ("seeder", "bucket", "sites")

    def __init__(self, master_seed: int, n: int):
        self.seeder = SiteSeeder(master_seed)
        self.bucket = _seed_bucket(master_seed)
        self.sites: List[Optional[SiteDraws]] = [None] * n

    def site(self, i: int) -> SiteDraws:
        sd = self.sites[i]
        if sd is None:
            bucket = self.bucket
            words = None if bucket is None else bucket.setdefault(i, [])
            sd = self.sites[i] = SiteDraws(self.seeder, i, words)
        return sd


def _complete(max_cycles: int) -> RuntimeError:
    # Matches Cluster.run_until's bound failure exactly.
    return RuntimeError(f"predicate not reached within {max_cycles} cycles")


def rumor_trial(
    n: int,
    config,
    seed: int,
    max_cycles: int = 1000,
    injection_site: int = 0,
) -> EpidemicMetrics:
    """One rumor-mongering epidemic to quiescence, batched.

    ``config`` is a :class:`~repro.protocols.rumor.RumorConfig`; every
    point of the design space is supported — push/pull/push-pull,
    blind/feedback, counter/coin, minimization, connection limits with
    hunting.  Results are bit-identical to
    :func:`repro.experiments.tables.run_rumor_trial` with
    ``engine="reference"``.
    """
    if n < 2:
        # The reference engine's UniformSelector refuses these too.
        raise ValueError("need at least two sites")
    mode = config.mode
    pushes = mode.pushes
    pulls = mode.pulls
    feedback = config.feedback
    counter = config.counter
    k = config.k
    resets = config.resets_on_success
    minimization = config.minimization
    coin_p = 1.0 / k
    policy = config.policy
    unlimited = policy.unlimited
    limit = policy.connection_limit
    attempts = policy.hunt_limit + 1

    metrics = EpidemicMetrics(n=n, injection_time=0.0)
    metrics.record_receipt(injection_site, 0.0)
    receipts = metrics.receipt_times

    infected = bytearray(n)  # live: site's store holds the update
    infected[injection_site] = 1
    hot: Dict[int, int] = {injection_site: 0}  # live: site -> counter

    draws = _TrialDraws(seed, n)
    sites = draws.sites
    get_site = draws.site
    backend = get_backend()
    n1 = n - 1
    shift = 32 - n1.bit_length()
    update_sends = 0
    comparisons = 0
    rejections = 0
    cycle = 0

    # Pure push with no connection limit and no minimization (Tables 1
    # and 2) admits a fully batched cycle: every conversation ships, so
    # news/feedback reduce to a first-occurrence pass over the cycle's
    # partner vector — no per-conversation event bookkeeping at all.
    fast_push = pushes and not pulls and unlimited and not minimization

    while hot:
        if cycle >= max_cycles:
            raise _complete(max_cycles)
        cycle += 1
        cycle_f = float(cycle)

        # Start-of-cycle snapshot: the infective sites and (for
        # minimization) their counters, in ascending site order — the
        # order the scalar protocol builds its snapshot dict in.
        snap_sites = sorted(hot)

        if fast_push:
            picks = [
                (sites[s] or get_site(s)).randbelow(n1, shift) for s in snap_sites
            ]
            partners = backend.adjusted_partners_at(picks, snap_sites)
            news = backend.push_news(partners, backend.snapshot(infected))
            update_sends += len(snap_sites)
            comparisons += len(snap_sites)
            for p in backend.compress(partners, news):
                infected[p] = 1
                receipts[p] = cycle_f
                hot[p] = 0
            if feedback:
                if counter:
                    for i, s in enumerate(snap_sites):
                        if news[i]:
                            if resets:
                                hot[s] = 0
                        else:
                            c = hot[s] + 1
                            if c >= k:
                                del hot[s]
                            else:
                                hot[s] = c
                else:
                    for i, s in enumerate(snap_sites):
                        if not news[i] and sites[s].random() < coin_p:
                            del hot[s]
            elif counter:
                for s in snap_sites:
                    c = hot[s] + 1
                    if c >= k:
                        del hot[s]
                    else:
                        hot[s] = c
            else:
                for s in snap_sites:
                    if sites[s].random() < coin_p:
                        del hot[s]
            continue
        hot_flags = bytearray(n)
        for s in snap_sites:
            hot_flags[s] = 1
        snap_counter = {s: hot[s] for s in snap_sites} if minimization else None

        # Per-cycle feedback, keyed by ship *source*: [useful, useless].
        ev: Dict[int, List[int]] = {}
        pcs: Dict[int, List[int]] = {}
        accepted: Optional[Dict[int, int]] = None if unlimited else {}

        if pushes and not pulls:
            initiators = snap_sites
            partners = None
        else:
            # pull and push-pull: every site solicits each cycle.  With
            # no connection limit the whole population's partner draws
            # complete in one vectorized pass.
            initiators = range(n)
            if unlimited:
                partners = backend.adjusted_partners(
                    [
                        (sites[s] or get_site(s)).randbelow(n1, shift)
                        for s in initiators
                    ]
                )
            else:
                partners = None

        for s in initiators:
            # -- partner selection (and hunting, under a limit) --------
            if partners is not None:
                p = partners[s]
            elif unlimited:
                sd = sites[s]
                if sd is None:
                    sd = get_site(s)
                pick = sd.randbelow(n1, shift)
                p = pick + 1 if pick >= s else pick
            else:
                sd = sites[s]
                if sd is None:
                    sd = get_site(s)

                def draw(sd=sd, s=s):
                    pick = sd.randbelow(n1, shift)
                    return pick + 1 if pick >= s else pick

                p = hunt_for_partner(draw, accepted, limit, attempts)
                if p is None:
                    rejections += 1
                    continue

            # -- the conversation, on start-of-cycle state -------------
            comparisons += 1
            s_hot = hot_flags[s]
            p_hot = hot_flags[p]
            if pushes and s_hot:
                if minimization and p_hot:
                    # Both already hold the hot rumor: exchange counters,
                    # ship nothing (the minimization rule).
                    pcs.setdefault(s, []).append(snap_counter[p])
                    pcs.setdefault(p, []).append(snap_counter[s])
                else:
                    update_sends += 1
                    if infected[p]:
                        e = ev.get(s)
                        if e is None:
                            ev[s] = [0, 1]
                        else:
                            e[1] += 1
                    else:
                        infected[p] = 1
                        receipts[p] = cycle_f
                        hot[p] = 0
                        e = ev.get(s)
                        if e is None:
                            ev[s] = [1, 0]
                        else:
                            e[0] += 1
            if pulls and p_hot and not (minimization and s_hot):
                update_sends += 1
                if infected[s]:
                    e = ev.get(p)
                    if e is None:
                        ev[p] = [0, 1]
                    else:
                        e[1] += 1
                else:
                    infected[s] = 1
                    receipts[s] = cycle_f
                    hot[s] = 0
                    e = ev.get(p)
                    if e is None:
                        ev[p] = [1, 0]
                    else:
                        e[0] += 1

        # -- end-of-cycle interest loss, in snapshot order -------------
        for s in snap_sites:
            if not feedback:
                if counter:
                    c = hot[s] + 1
                    if c >= k:
                        del hot[s]
                    else:
                        hot[s] = c
                else:
                    sd = sites[s]
                    if sd is None:
                        sd = get_site(s)
                    if sd.random() < coin_p:
                        del hot[s]
                continue
            e = ev.get(s)
            p_counters = pcs.get(s) if minimization else None
            if e is None and not p_counters:
                continue  # no conversation touched this rumor
            if p_counters:
                c = hot[s]
                if all(c <= pc for pc in p_counters):
                    c += 1
                    if c >= k:
                        del hot[s]
                    else:
                        hot[s] = c
                continue
            if counter:
                if e[0]:
                    if resets:
                        hot[s] = 0
                elif e[1]:
                    c = hot[s] + 1
                    if c >= k:
                        del hot[s]
                    else:
                        hot[s] = c
            else:
                sd = sites[s]
                if sd is None:
                    sd = get_site(s)
                for __ in range(e[1]):
                    if sd.random() < coin_p:
                        del hot[s]
                        break

    metrics.update_sends = update_sends
    metrics.comparisons = comparisons
    metrics.rejected_connections = rejections
    metrics.cycles_run = cycle
    return metrics


def anti_entropy_trial(
    n: int,
    mode,
    seed: int,
    max_cycles: int = 200,
    period: int = 1,
    offset: int = 0,
    injection_site: int = 0,
) -> EpidemicMetrics:
    """One synchronous anti-entropy epidemic run to completion, batched.

    Every up site initiates one exchange per period cycle; transmission
    decisions are made on start-of-cycle state (the paper's synchronous
    model), so each cycle's susceptible/infective update vectorizes
    fully: one partner draw per site, then set arithmetic over the
    whole population through the vector backend.  Bit-identical to the
    cluster run :func:`repro.experiments.tables.run_anti_entropy_trial`
    performs with ``engine="reference"``.
    """
    if n < 2:
        raise ValueError("need at least two sites")
    pushes = mode.pushes
    pulls = mode.pulls

    metrics = EpidemicMetrics(n=n, injection_time=0.0)
    metrics.record_receipt(injection_site, 0.0)
    receipts = metrics.receipt_times
    infected = bytearray(n)
    infected[injection_site] = 1

    draws = _TrialDraws(seed, n)
    all_sites = [draws.site(i) for i in range(n)]
    backend = get_backend()
    n1 = n - 1
    shift = 32 - n1.bit_length()
    own_ids = list(range(n))
    update_sends = 0
    comparisons = 0
    cycle = 0

    while len(receipts) < n:
        if cycle >= max_cycles:
            raise _complete(max_cycles)
        cycle += 1
        if (cycle - offset) % period != 0:
            continue
        cycle_f = float(cycle)

        partners = backend.adjusted_partners(
            [sd.randbelow(n1, shift) for sd in all_sites]
        )
        h = backend.snapshot(infected)
        hp = backend.take(h, partners)
        comparisons += n
        if pushes:
            mask = backend.and_not(h, hp)
            update_sends += backend.count(mask)
            for site in backend.compress(partners, mask):
                if not infected[site]:
                    infected[site] = 1
                    receipts[site] = cycle_f
        if pulls:
            mask = backend.and_not(hp, h)
            update_sends += backend.count(mask)
            for site in backend.compress(own_ids, mask):
                if not infected[site]:
                    infected[site] = 1
                    receipts[site] = cycle_f

    metrics.update_sends = update_sends
    metrics.comparisons = comparisons
    metrics.cycles_run = cycle
    return metrics
