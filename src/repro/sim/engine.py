"""A minimal deterministic discrete-event simulator.

Events are ``(time, sequence, callback)`` triples on a binary heap; the
sequence number breaks ties so that events scheduled for the same instant
fire in scheduling order, which keeps runs bit-for-bit reproducible for a
fixed seed.  The cluster layer schedules one event per protocol cycle;
the mail system schedules per-message delivery events.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Callable, Optional


@dataclasses.dataclass(frozen=True, slots=True)
class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`."""

    time: float
    sequence: int

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)


class Simulator:
    """Deterministic event loop with cancellation support."""

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._sequence = itertools.count()
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._cancelled: set[int] = set()
        self._processed = 0
        #: Optional :class:`repro.obs.profiling.Profiler`; when set,
        #: callback execution is timed under the ``engine`` phase.
        #: None (not a null profiler) so the hot loop pays one
        #: attribute load, not a context-manager round trip.
        self.profiler = None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (cancelled events excluded)."""
        return len(self._heap) - len(self._cancelled)

    @property
    def processed(self) -> int:
        """Total events executed so far."""
        return self._processed

    def stats(self) -> dict:
        """Introspection snapshot (attached to ``cycle-completed``
        observability events, see :mod:`repro.obs.events`)."""
        return {
            "now": self._now,
            "pending": self.pending,
            "processed": self._processed,
            "cancelled": len(self._cancelled),
        }

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        sequence = next(self._sequence)
        heapq.heappush(self._heap, (time, sequence, callback))
        return Event(time=time, sequence=sequence)

    def schedule_batch(self, delay: float, callbacks: list) -> Event:
        """Schedule a whole batch of callbacks as ONE heap entry.

        ``callbacks`` is held by reference and iterated only when the
        event fires, so the caller may keep appending to it until then;
        appends made *while* the batch is firing are picked up in the
        same firing.  The mail system uses this to coalesce every
        letter sharing a delivery instant into a single event instead
        of one heap push per letter.
        """

        def fire() -> None:
            for callback in callbacks:
                callback()

        return self.schedule(delay, fire)

    def advance_to(self, time: float) -> None:
        """Move the clock forward without running anything.

        Only valid when nothing is pending before ``time``; the cluster
        uses it to skip the event loop entirely on cycles with an empty
        heap.
        """
        if time < self._now:
            raise ValueError(f"cannot move time backwards (to {time})")
        self._now = time

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        self._cancelled.add(event.sequence)

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        while self._heap:
            time, sequence, callback = heapq.heappop(self._heap)
            if sequence in self._cancelled:
                self._cancelled.discard(sequence)
                continue
            self._now = time
            self._processed += 1
            if self.profiler is not None:
                with self.profiler.phase("engine"):
                    callback()
            else:
                callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` passes, or
        ``max_events`` have executed.  Returns the number executed.
        """
        executed = 0
        profiler = self.profiler
        while self._heap:
            if max_events is not None and executed >= max_events:
                break
            time, sequence, callback = self._heap[0]
            if sequence in self._cancelled:
                heapq.heappop(self._heap)
                self._cancelled.discard(sequence)
                continue
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            self._now = time
            self._processed += 1
            if profiler is not None:
                with profiler.phase("engine"):
                    callback()
            else:
                callback()
            executed += 1
        if until is not None and self._now < until:
            self._now = until
        return executed

    def run_until_quiescent(self, max_events: int = 10_000_000) -> int:
        """Drain the event queue entirely (with a runaway guard)."""
        executed = self.run(max_events=max_events)
        if self.pending > 0 and executed >= max_events:
            raise RuntimeError(
                f"simulation did not quiesce within {max_events} events"
            )
        return executed
