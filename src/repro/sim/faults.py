"""Declarative failure schedules for simulations.

The paper's operating reality: "there is a fairly high probability
that at any time some site will be down (or unreachable) for hours or
even days."  A :class:`FaultSchedule` scripts that reality — site
crashes and recoveries, network partitions and heals — against the
cluster's cycle clock, and :class:`RandomChurn` generates sustained
random crash/recovery load.

Both are protocols, attached like any other (add them *first* so
faults take effect before the cycle's distribution work):

    cluster.add_protocol(
        FaultSchedule()
        .crash(at_cycle=5, sites=[3, 4])
        .recover(at_cycle=20, sites=[3, 4])
        .partition(at_cycle=30, groups=[[0, 1, 2], [3, 4, 5]])
        .heal(at_cycle=40)
    )
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Sequence

from repro.protocols.base import Protocol


@dataclasses.dataclass(slots=True)
class FaultStats:
    crashes: int = 0
    recoveries: int = 0
    partitions: int = 0
    heals: int = 0


class FaultSchedule(Protocol):
    """Scripted crashes, recoveries, partitions and heals."""

    name = "fault-schedule"

    def __init__(self) -> None:
        super().__init__()
        self._actions: Dict[int, List[Callable[[], None]]] = {}
        self.stats = FaultStats()

    def _at(self, cycle: int, action: Callable[[], None]) -> "FaultSchedule":
        if cycle < 1:
            raise ValueError("fault cycles start at 1")
        self._actions.setdefault(cycle, []).append(action)
        return self

    # ------------------------------------------------------------------
    # Schedule builders (chainable)
    # ------------------------------------------------------------------

    def crash(self, at_cycle: int, sites: Sequence[int]) -> "FaultSchedule":
        """Take sites down.  Stores survive (stable storage); the sites
        simply stop conversing until recovered."""
        sites = list(sites)

        def action() -> None:
            for site_id in sites:
                self.cluster.sites[site_id].up = False
                self.stats.crashes += 1

        return self._at(at_cycle, action)

    def recover(self, at_cycle: int, sites: Sequence[int]) -> "FaultSchedule":
        sites = list(sites)

        def action() -> None:
            for site_id in sites:
                self.cluster.sites[site_id].up = True
                self.stats.recoveries += 1

        return self._at(at_cycle, action)

    def partition(
        self, at_cycle: int, groups: Sequence[Sequence[int]]
    ) -> "FaultSchedule":
        groups = [list(group) for group in groups]

        def action() -> None:
            self.cluster.set_partition(groups)
            self.stats.partitions += 1

        return self._at(at_cycle, action)

    def heal(self, at_cycle: int) -> "FaultSchedule":
        def action() -> None:
            self.cluster.clear_partition()
            self.stats.heals += 1

        return self._at(at_cycle, action)

    # ------------------------------------------------------------------

    def run_cycle(self, cycle: int) -> None:
        for action in self._actions.pop(cycle, []):
            action()

    @property
    def active(self) -> bool:
        """Pending fault events keep the schedule active, so quiescence
        detection does not declare victory before the last heal."""
        return bool(self._actions)


class RandomChurn(Protocol):
    """Sustained random crash/recovery load.

    Each cycle, every up site crashes with probability ``crash_rate``
    and every down site recovers with probability ``recovery_rate``.
    ``min_up_fraction`` caps how much of the cluster may be down at
    once, so the simulation cannot drift into a fully-dead network.
    """

    name = "random-churn"

    def __init__(
        self,
        crash_rate: float = 0.02,
        recovery_rate: float = 0.25,
        min_up_fraction: float = 0.5,
    ):
        super().__init__()
        for name, value in (
            ("crash_rate", crash_rate),
            ("recovery_rate", recovery_rate),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if not 0.0 < min_up_fraction <= 1.0:
            raise ValueError("min_up_fraction must be in (0, 1]")
        self.crash_rate = crash_rate
        self.recovery_rate = recovery_rate
        self.min_up_fraction = min_up_fraction
        self.stats = FaultStats()
        self._rng = None

    def attach(self, cluster) -> None:
        super().attach(cluster)
        self._rng = cluster.rng.stream("churn")

    def run_cycle(self, cycle: int) -> None:
        cluster = self.cluster
        up = cluster.up_site_ids()
        floor = max(1, int(cluster.n * self.min_up_fraction))
        for site_id in cluster.site_ids:
            site = cluster.sites[site_id]
            if site.up:
                if len(up) > floor and self._rng.random() < self.crash_rate:
                    site.up = False
                    up.remove(site_id)
                    self.stats.crashes += 1
            else:
                if self._rng.random() < self.recovery_rate:
                    site.up = True
                    up.append(site_id)
                    self.stats.recoveries += 1

    def restore_all(self) -> None:
        """Bring every site back up (end-of-experiment cleanup)."""
        for site in self.cluster.sites.values():
            site.up = True
