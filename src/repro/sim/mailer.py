"""An unreliable queued mail service (Section 1.2).

``PostMail`` in the paper "is expected to be nearly, but not completely,
reliable": it queues messages on stable storage so senders are not
delayed and server crashes lose nothing, yet messages may still be
discarded when queues overflow or destinations stay unreachable.  Those
are exactly the failure modes modeled here:

* each destination has a bounded mailbox; posting to a full mailbox
  drops the message (**overflow**);
* each message is independently lost in transit with probability
  ``loss_probability`` (**unreachable destination / transport loss**);
* delivery takes ``latency`` simulated time units (default: one cycle).
  ``latency`` may instead be a *delay model* — any object with a
  ``delay(source, destination, now, size=1)`` method, such as
  :class:`repro.workload.geo.WanNetwork` — so cross-datacenter mail
  pays per-link WAN latency and queues behind bandwidth caps.

The mail system drives deliveries through the discrete-event engine so
direct mail interleaves naturally with cycle-based epidemics.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Protocol, Union

from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


class DelayModel(Protocol):
    """Anything that can price a delivery: per-pair latency, queuing."""

    def delay(
        self, source: int, destination: int, now: float, size: float = 1.0
    ) -> float:
        """Delivery delay for a message posted at ``now``."""
        ...  # pragma: no cover - protocol definition


@dataclasses.dataclass(slots=True)
class MailStats:
    posted: int = 0
    delivered: int = 0
    dropped_overflow: int = 0
    dropped_loss: int = 0

    @property
    def dropped(self) -> int:
        return self.dropped_overflow + self.dropped_loss

    @property
    def delivery_ratio(self) -> float:
        if self.posted == 0:
            return 1.0
        return self.delivered / self.posted


@dataclasses.dataclass(frozen=True, slots=True)
class Letter:
    source: int
    destination: int
    payload: Any
    posted_at: float


class Mailbox:
    """A bounded FIFO inbox for one site."""

    __slots__ = ("capacity", "_queue")

    def __init__(self, capacity: Optional[int] = None):
        self.capacity = capacity
        self._queue: Deque[Letter] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._queue) >= self.capacity

    def push(self, letter: Letter) -> bool:
        if self.full:
            return False
        self._queue.append(letter)
        return True

    def drain(self) -> list[Letter]:
        """Remove and return all queued letters (oldest first)."""
        letters = list(self._queue)
        self._queue.clear()
        return letters


class MailSystem:
    """Routes letters between sites with loss, overflow and latency."""

    def __init__(
        self,
        simulator: Simulator,
        rng: RngRegistry,
        loss_probability: float = 0.0,
        mailbox_capacity: Optional[int] = None,
        latency: Union[float, DelayModel] = 1.0,
    ):
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError("loss_probability must be in [0, 1]")
        if isinstance(latency, (int, float)) and latency < 0:
            raise ValueError("latency must be non-negative")
        self.simulator = simulator
        self._rng = rng.stream("mail")
        self.loss_probability = loss_probability
        self.mailbox_capacity = mailbox_capacity
        self.latency = latency
        self.stats = MailStats()
        self._mailboxes: Dict[int, Mailbox] = {}
        self._on_delivery: Optional[Callable[[Letter], None]] = None
        # delivery time -> the not-yet-fired batch of deliveries due
        # then.  Letters sharing a delivery instant (a direct-mail fanout
        # is n-1 letters with one latency) ride one engine event.
        self._open_batches: Dict[float, list] = {}

    def mailbox(self, site: int) -> Mailbox:
        box = self._mailboxes.get(site)
        if box is None:
            box = Mailbox(capacity=self.mailbox_capacity)
            self._mailboxes[site] = box
        return box

    def on_delivery(self, callback: Callable[[Letter], None]) -> None:
        """Invoke ``callback(letter)`` whenever a letter lands in a mailbox.

        Sites may instead poll their mailbox with :meth:`receive`.
        """
        self._on_delivery = callback

    def post(self, source: int, destination: int, payload: Any) -> None:
        """Queue a letter for delivery (the sender is never delayed)."""
        self.stats.posted += 1
        letter = Letter(
            source=source,
            destination=destination,
            payload=payload,
            posted_at=self.simulator.now,
        )
        if self._rng.random() < self.loss_probability:
            self.stats.dropped_loss += 1
            return
        now = self.simulator.now
        due = now + self._delay(source, destination)
        batch = self._open_batches.get(due)
        if batch is None:
            batch = [lambda: self._open_batches.pop(due, None)]
            self._open_batches[due] = batch
            self.simulator.schedule_batch(due - now, batch)
        batch.append(lambda: self._deliver(letter))

    def _delay(self, source: int, destination: int) -> float:
        """The delivery delay for this posting: a scalar, or whatever
        the attached delay model prices the (source, destination) trip
        at right now (WAN latency plus any transmission queue)."""
        latency = self.latency
        if isinstance(latency, (int, float)):
            return float(latency)
        return latency.delay(source, destination, self.simulator.now)

    def receive(self, site: int) -> list[Letter]:
        """Drain a site's mailbox (poll-style reception)."""
        return self.mailbox(site).drain()

    def _deliver(self, letter: Letter) -> None:
        box = self.mailbox(letter.destination)
        if not box.push(letter):
            self.stats.dropped_overflow += 1
            return
        self.stats.delivered += 1
        if self._on_delivery is not None:
            self._on_delivery(letter)
