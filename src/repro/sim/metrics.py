"""Metric collection: residue, traffic, delay (Section 1.4).

The paper judges epidemics by three criteria:

* **Residue** — the fraction of sites still susceptible when the epidemic
  finishes (``s`` when ``i = 0``).
* **Traffic** — measured both in database updates sent between sites
  (``m`` = total update traffic / number of sites) and, for the spatial
  experiments of Section 3, in per-link conversation counts obtained by
  routing each conversation over the network's shortest path.
* **Delay** — ``t_ave``, the average time from injection to arrival over
  the sites that received the update, and ``t_last``, the delay until the
  last site that will ever receive the update got it.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.obs.convergence import ConvergenceTracker

Edge = Tuple[int, int]


def canonical_edge(u: int, v: int) -> Edge:
    """Undirected edges are stored with endpoints sorted."""
    return (u, v) if u <= v else (v, u)


class TrafficCounter:
    """Per-link traffic counts for one class of traffic.

    ``add_path`` charges one unit (or ``amount``) to every link on a
    route; summaries are taken over a fixed universe of links so that
    idle links count toward the average.
    """

    __slots__ = ("_counts", "total")

    def __init__(self) -> None:
        self._counts: Dict[Edge, float] = {}
        self.total = 0.0

    def add_edge(self, u: int, v: int, amount: float = 1.0) -> None:
        edge = canonical_edge(u, v)
        self._counts[edge] = self._counts.get(edge, 0.0) + amount
        self.total += amount

    def add_path(self, path: Sequence[int], amount: float = 1.0) -> None:
        """Charge ``amount`` to each link along a node path."""
        for u, v in zip(path, path[1:]):
            self.add_edge(u, v, amount)

    def add_edges(self, edges: Iterable[Edge], amount: float = 1.0) -> None:
        """Charge ``amount`` to already-canonical edges.

        The hot-path companion to :meth:`add_path`: pairs with
        ``Topology.path_edges``, whose cached tuples are canonical
        already, skipping the per-message zip and endpoint sort.
        """
        counts = self._counts
        for edge in edges:
            counts[edge] = counts.get(edge, 0.0) + amount
            self.total += amount

    def on_link(self, u: int, v: int) -> float:
        return self._counts.get(canonical_edge(u, v), 0.0)

    def per_link_average(self, link_count: int) -> float:
        """Average traffic per link over a universe of ``link_count`` links."""
        if link_count <= 0:
            return 0.0
        return self.total / link_count

    def max_link(self) -> Tuple[Optional[Edge], float]:
        if not self._counts:
            return None, 0.0
        edge = max(self._counts, key=self._counts.get)
        return edge, self._counts[edge]

    def merge(self, other: "TrafficCounter") -> None:
        for edge, amount in other._counts.items():
            self._counts[edge] = self._counts.get(edge, 0.0) + amount
        self.total += other.total

    def scaled(self, factor: float) -> "TrafficCounter":
        result = TrafficCounter()
        for edge, amount in self._counts.items():
            result._counts[edge] = amount * factor
        result.total = self.total * factor
        return result

    def items(self) -> Iterable[Tuple[Edge, float]]:
        return self._counts.items()


@dataclasses.dataclass(slots=True)
class LinkTraffic:
    """Compare- and update-traffic counters for one simulation run.

    *Compare* traffic counts conversations (anti-entropy comparisons or
    rumor exchanges); *update* traffic counts every entry shipped; and
    *useful update* traffic counts only shipments the receiver needed —
    the paper's Table 4 notion of "exchanges in which the update had to
    be sent" (the distinction matters for rumor mongering, which also
    ships redundantly).
    """

    compare: TrafficCounter = dataclasses.field(default_factory=TrafficCounter)
    update: TrafficCounter = dataclasses.field(default_factory=TrafficCounter)
    useful_update: TrafficCounter = dataclasses.field(default_factory=TrafficCounter)

    def merge(self, other: "LinkTraffic") -> None:
        self.compare.merge(other.compare)
        self.update.merge(other.update)
        self.useful_update.merge(other.useful_update)


class EpidemicMetrics(ConvergenceTracker):
    """Spread statistics for a single update through ``n`` sites.

    Since the unified observability layer landed, this *is* the shared
    :class:`repro.obs.convergence.ConvergenceTracker` — the simulator
    and the live runtime (``repro.net.runner``) compute residue,
    traffic, ``t_ave`` and ``t_last`` with literally the same code.
    The subclass survives for its import path and name, which every
    experiment and the docs use.
    """


@dataclasses.dataclass(slots=True)
class Summary:
    """Mean / standard deviation / extremes of a sample."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        values = [v for v in values if not math.isnan(v)]
        if not values:
            return cls(math.nan, math.nan, math.nan, math.nan, 0)
        mean = sum(values) / len(values)
        if len(values) > 1:
            variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        else:
            variance = 0.0
        return cls(
            mean=mean,
            std=math.sqrt(variance),
            minimum=min(values),
            maximum=max(values),
            count=len(values),
        )


def mean(values: Sequence[float]) -> float:
    values = [v for v in values if not math.isnan(v)]
    if not values:
        return math.nan
    return sum(values) / len(values)
