"""Deterministic random-number streams.

The paper's algorithms are *randomized*: every site independently makes
random choices (partner selection, coin flips).  For reproducible
simulations each site gets its own :class:`random.Random` stream derived
from a master seed by hashing, so that

* the same master seed always reproduces the same run, and
* adding or removing one site does not perturb the streams of the
  others (unlike handing out consecutive states from one generator).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Hashable


def derive_seed(master_seed: int, *components: Hashable) -> int:
    """Derive a child seed from a master seed and a label path.

    Hash-based so the mapping is stable across Python versions and
    insensitive to the order in which children are requested.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(repr(master_seed).encode("utf-8"))
    for component in components:
        h.update(b"/")
        h.update(repr(component).encode("utf-8"))
    return int.from_bytes(h.digest(), "big")


def site_seed(master_seed: int, site_id: int) -> int:
    """The seed of site ``site_id``'s stream under ``master_seed``.

    Exactly the derivation :meth:`RngRegistry.site_stream` uses — the
    batched trial engine (:mod:`repro.sim.batch`) recreates site
    streams from this so its draws are bit-identical to a
    :class:`~repro.cluster.cluster.Cluster` run on the same seed.
    """
    return derive_seed(master_seed, "site", site_id)


def site_random(master_seed: int, site_id: int) -> random.Random:
    """A fresh :class:`random.Random` in the same state ``site_stream``
    would hand out for ``site_id`` before its first draw."""
    return random.Random(site_seed(master_seed, site_id))


class SiteSeeder:
    """Bulk :func:`site_seed` for one master seed.

    Hashing ``master_seed/'site'`` once and copying the digest state per
    site roughly halves the derivation cost when thousands of site seeds
    are needed (the batched trial engine derives one per participating
    site per trial).  Produces exactly ``site_seed(master_seed, i)``.
    """

    __slots__ = ("_prefix",)

    def __init__(self, master_seed: int):
        prefix = hashlib.blake2b(digest_size=8)
        prefix.update(repr(master_seed).encode("utf-8"))
        prefix.update(b"/")
        prefix.update(repr("site").encode("utf-8"))
        self._prefix = prefix

    def seed(self, site_id: int) -> int:
        h = self._prefix.copy()
        h.update(b"/")
        h.update(repr(site_id).encode("utf-8"))
        return int.from_bytes(h.digest(), "big")


class RngRegistry:
    """Hands out independent named random streams from one master seed."""

    def __init__(self, master_seed: int):
        self.master_seed = master_seed
        self._streams: Dict[tuple, random.Random] = {}

    def stream(self, *path: Hashable) -> random.Random:
        """The stream for a label path, created on first use.

        Typical paths: ``("site", 17)`` for site 17's protocol choices,
        ``("mail",)`` for mail-loss coin flips.
        """
        key = tuple(path)
        stream = self._streams.get(key)
        if stream is None:
            stream = random.Random(derive_seed(self.master_seed, *path))
            self._streams[key] = stream
        return stream

    def site_stream(self, site_id: int) -> random.Random:
        return self.stream("site", site_id)

    def fork(self, *path: Hashable) -> "RngRegistry":
        """A child registry with an independent seed namespace."""
        return RngRegistry(derive_seed(self.master_seed, "fork", *path))
