"""Structured tracing of epidemics: per-cycle S/I/R census and news logs.

The analysis of Section 1.4 is phrased in the susceptible / infective /
removed fractions ``s, i, r``.  :class:`EpidemicTracer` samples those
fractions every cycle for one tracked key, so a stochastic run can be
laid directly against the deterministic ODE trajectory from
:mod:`repro.analysis.epidemic_theory`.  :class:`NewsLog` records every
first delivery (who, what, when, how) for debugging and for building
custom metrics.

Both tracers source their delivery records from the cluster's
``delivery-span`` event stream (:mod:`repro.obs.spans`) rather than
keeping private observer bookkeeping — the span stream *is* the
first-delivery record, so "who knows the key" exists in exactly one
place.  Consequently both must be attached (``cluster.add_protocol``)
before the updates they observe are injected.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, List, Optional, Set

from repro.core.store import ApplyResult
from repro.obs.events import Event, EventBus, EventKind
from repro.protocols.base import Protocol
from repro.protocols.rumor import RumorMongeringProtocol


@dataclasses.dataclass(frozen=True, slots=True)
class Census:
    """One cycle's S/I/R counts for the traced key."""

    cycle: int
    susceptible: int
    infective: int
    removed: int

    @property
    def n(self) -> int:
        return self.susceptible + self.infective + self.removed

    @property
    def s(self) -> float:
        return self.susceptible / self.n

    @property
    def i(self) -> float:
        return self.infective / self.n

    @property
    def r(self) -> float:
        return self.removed / self.n


class EpidemicTracer(Protocol):
    """Samples the S/I/R census each cycle for one key.

    Requires the rumor protocol whose hot list defines "infective";
    sites knowing the value but not hot are "removed".  "Knows" is
    sourced from the first-delivery span stream, so attach the tracer
    (``add_protocol``) *before* the key is injected, and after the
    protocols it observes so each sample reflects the end of the cycle.

    With ``bus`` (an :class:`repro.obs.events.EventBus`, defaulting to
    the cluster's own), every sample is also emitted as a ``census``
    event, so a JSONL trace of a simulation carries the full S/I/R
    trajectory alongside the per-site news events.
    """

    name = "epidemic-tracer"

    def __init__(
        self,
        rumor: RumorMongeringProtocol,
        key: Hashable,
        bus: Optional[EventBus] = None,
    ):
        super().__init__()
        self.rumor = rumor
        self.key = key
        self.bus = bus
        self.history: List[Census] = []
        self._key_str = str(key)
        self._known: Set[int] = set()

    def attach(self, cluster) -> None:
        super().attach(cluster)
        cluster.bus.add_sink(self._on_event)

    def _on_event(self, event: Event) -> None:
        if event.kind is not EventKind.DELIVERY_SPAN:
            return
        payload = event.payload
        if payload.get("first") and payload.get("key") == self._key_str:
            self._known.add(event.node)

    def on_site_added(self, site_id: int) -> None:
        # A (re)joining site starts with an empty store; any stale
        # knowledge recorded under its id belongs to a previous life.
        self._known.discard(site_id)

    def on_site_removed(self, site_id: int) -> None:
        self._known.discard(site_id)

    def run_cycle(self, cycle: int) -> None:
        census = self.sample(cycle)
        self.history.append(census)
        bus = self.bus if self.bus is not None else self.cluster.bus
        bus.emit(
            EventKind.CENSUS,
            key=str(self.key),
            cycle=census.cycle,
            susceptible=census.susceptible,
            infective=census.infective,
            removed=census.removed,
        )

    def sample(self, cycle: Optional[int] = None) -> Census:
        cluster = self.cluster
        known = self._known
        susceptible = infective = removed = 0
        for site_id in cluster.site_ids:
            if site_id not in known:
                susceptible += 1
            elif self.rumor.is_infective(site_id, self.key):
                infective += 1
            else:
                removed += 1
        return Census(
            cycle=cluster.cycle if cycle is None else cycle,
            susceptible=susceptible,
            infective=infective,
            removed=removed,
        )

    def peak_infective(self) -> Census:
        if not self.history:
            raise ValueError("no samples recorded yet")
        return max(self.history, key=lambda c: c.infective)

    def final(self) -> Census:
        if not self.history:
            raise ValueError("no samples recorded yet")
        return self.history[-1]

    def curve(self) -> List[tuple]:
        """(cycle, s, i, r) tuples — plot-ready."""
        return [(c.cycle, c.s, c.i, c.r) for c in self.history]


@dataclasses.dataclass(frozen=True, slots=True)
class NewsEvent:
    cycle: int
    site: int
    key: str
    result: ApplyResult


class NewsLog(Protocol):
    """Records every news delivery cluster-wide (any protocol).

    A thin view over the ``delivery-span`` stream: one entry per
    first-delivery span with a delivering source (injections, having no
    source site, are not deliveries).  Keys arrive stringified, exactly
    as they appear in the trace schema.
    """

    name = "news-log"

    def __init__(self, capacity: Optional[int] = None):
        super().__init__()
        self.capacity = capacity
        self.events: List[NewsEvent] = []
        self.dropped = 0

    def attach(self, cluster) -> None:
        super().attach(cluster)
        cluster.bus.add_sink(self._on_event)

    def _on_event(self, event: Event) -> None:
        if event.kind is not EventKind.DELIVERY_SPAN:
            return
        payload = event.payload
        if not payload.get("first") or payload.get("src") is None:
            return
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(
            NewsEvent(
                cycle=int(event.time),
                site=event.node,
                key=payload["key"],
                result=ApplyResult(payload["result"]),
            )
        )

    def events_for(self, key: Hashable) -> List[NewsEvent]:
        wanted = str(key)
        return [event for event in self.events if event.key == wanted]

    def first_receipts(self, key: Hashable) -> dict:
        """site -> first cycle it learned ``key``."""
        wanted = str(key)
        receipts: dict = {}
        for event in self.events:
            if event.key == wanted and event.site not in receipts:
                receipts[event.site] = event.cycle
        return receipts
