"""Per-cycle connection accounting: limits, rejection, hunting (Section 1.4).

Realistic servers can hold only a few simultaneous conversations.  The
paper models this as a *connection limit*: within one cycle a site can be
the target of at most ``connection_limit`` conversations; excess attempts
are rejected.  A rejected initiator may *hunt* — re-draw partners up to
``hunt_limit`` more times.  With connection limit 1 and an infinite hunt
limit the set of conversations in a cycle forms a permutation, which the
paper notes makes push and pull equivalent.

The :class:`ConnectionLedger` tracks acceptances within the current cycle
and must be reset at each cycle boundary by the cluster driver.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Mapping, Optional, Tuple

Edge = Tuple[int, int]


@dataclasses.dataclass(frozen=True, slots=True)
class ConnectionPolicy:
    """How many conversations a site will accept per cycle, and how hard
    initiators try to find a free partner.

    ``connection_limit=None`` means unlimited (the paper's default
    idealization).  ``hunt_limit`` is the number of *additional* partner
    draws after the first rejection; 0 reproduces the most pessimistic
    assumption of Table 5.
    """

    connection_limit: Optional[int] = None
    hunt_limit: int = 0

    def __post_init__(self) -> None:
        if self.connection_limit is not None and self.connection_limit < 1:
            raise ValueError("connection_limit must be >= 1 or None")
        if self.hunt_limit < 0:
            raise ValueError("hunt_limit must be >= 0")

    @property
    def unlimited(self) -> bool:
        return self.connection_limit is None


UNLIMITED = ConnectionPolicy(connection_limit=None, hunt_limit=0)


class ConnectionLedger:
    """Tracks conversations accepted by each site within one cycle."""

    __slots__ = ("policy", "_accepted", "rejections", "attempts")

    def __init__(self, policy: ConnectionPolicy = UNLIMITED):
        self.policy = policy
        self._accepted: Dict[int, int] = {}
        self.rejections = 0
        self.attempts = 0

    def reset(self) -> None:
        """Start a new cycle: all capacity is available again."""
        self._accepted.clear()

    def try_connect(self, target: int) -> bool:
        """Attempt a conversation with ``target``; True when accepted."""
        self.attempts += 1
        if self.policy.unlimited:
            self._accepted[target] = self._accepted.get(target, 0) + 1
            return True
        used = self._accepted.get(target, 0)
        if used >= self.policy.connection_limit:
            self.rejections += 1
            return False
        self._accepted[target] = used + 1
        return True

    def accepted_by(self, target: int) -> int:
        return self._accepted.get(target, 0)

    def connect_with_hunting(self, chooser, initiator: int) -> Optional[int]:
        """Draw partners until one accepts, respecting the hunt limit.

        ``chooser`` is a callable returning a partner site id for
        ``initiator`` (typically a spatial distribution's ``choose``).
        Returns the accepted partner or ``None`` if every attempt was
        rejected.
        """
        for __ in range(self.policy.hunt_limit + 1):
            partner = chooser(initiator)
            if partner is None:
                return None
            if self.try_connect(partner):
                return partner
        return None


def hunt_for_partner(
    draw,
    accepted: Dict[int, int],
    limit: int,
    attempts: int,
) -> Optional[int]:
    """Connection-limited partner search over a flat accept-count map.

    The batched trial engine's counterpart of
    :meth:`ConnectionLedger.connect_with_hunting`: ``draw()`` produces
    candidate partners, ``accepted`` maps site -> conversations already
    accepted this cycle, and each of the ``attempts`` tries either
    claims a slot (returning the partner) or burns a draw hunting on.
    Draw-for-draw identical to the ledger path, which is what keeps
    limited-policy trials bit-equal between the two engines.
    """
    for __ in range(attempts):
        candidate = draw()
        used = accepted.get(candidate, 0)
        if used < limit:
            accepted[candidate] = used + 1
            return candidate
    return None


class LinkCapacityLedger:
    """Per-cycle message budgets on capacity-capped links.

    The link-level sibling of :class:`ConnectionLedger`: where that
    class bounds how many conversations a *site* accepts per cycle,
    this one bounds how many messages a *link* carries per cycle — the
    WAN model's bandwidth caps (:mod:`repro.workload.geo`).  Links
    absent from ``capacities`` are uncapped and never counted.  Must be
    reset at each cycle boundary, like the connection ledger.
    """

    __slots__ = ("capacities", "_used", "refusals")

    def __init__(self, capacities: Mapping[Edge, float]):
        for edge, capacity in capacities.items():
            if capacity <= 0:
                raise ValueError(f"capacity on link {edge} must be positive")
        self.capacities = dict(capacities)
        self._used: Dict[Edge, float] = {}
        self.refusals = 0

    def reset(self) -> None:
        """Start a new cycle: every link's budget is whole again."""
        self._used.clear()

    def used(self, edge: Edge) -> float:
        return self._used.get(edge, 0.0)

    def would_admit(self, edges: Iterable[Edge], cost: float = 1.0) -> bool:
        """Whether ``cost`` more messages fit on every capped edge of a
        route this cycle.  Counts a refusal when they do not."""
        for edge in edges:
            capacity = self.capacities.get(edge)
            if capacity is None:
                continue
            if self._used.get(edge, 0.0) + cost > capacity:
                self.refusals += 1
                return False
        return True

    def charge(self, edges: Iterable[Edge], cost: float = 1.0) -> None:
        """Record ``cost`` messages on every capped edge of a route."""
        for edge in edges:
            if edge in self.capacities:
                self._used[edge] = self._used.get(edge, 0.0) + cost
