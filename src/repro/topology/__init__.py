"""Network topologies, distances and spatial partner-selection (Section 3).

The spatial-distribution results require a network with per-link costs:
conversations between distant sites traverse many links, so partner
selection should favor nearby sites.  This package provides:

* :mod:`repro.topology.graph` — an undirected multigraph of network
  nodes, a subset of which host database sites, with shortest-path
  routing and labeled links;
* :mod:`repro.topology.builders` — lines, rings, D-dimensional meshes,
  trees, stars, random graphs, and the two pathological topologies of
  Figures 1 and 2;
* :mod:`repro.topology.cin` — a synthetic stand-in for the Xerox
  Corporate Internet (see DESIGN.md §5);
* :mod:`repro.topology.distance` — all-pairs site distances and the
  cumulative-count function ``Q_s(d)``;
* :mod:`repro.topology.spatial` — the partner-selection distributions:
  uniform, ``d^-a``, ``Q_s(d)^-a``, ``1/(d·Q_s(d))`` and the paper's
  smoothed form (3.1.1).
"""

from repro.topology.graph import Topology
from repro.topology.distance import SiteDistances
from repro.topology.spatial import (
    PartnerSelector,
    UniformSelector,
    DistancePowerSelector,
    QPowerSelector,
    QDistanceSelector,
    SortedListSelector,
    selector_for,
)
from repro.topology import builders
from repro.topology.cin import build_cin_like_topology, CinNetwork, CinParameters
from repro.topology.hierarchy import HierarchicalSelector, elect_backbone

__all__ = [
    "Topology",
    "SiteDistances",
    "PartnerSelector",
    "UniformSelector",
    "DistancePowerSelector",
    "QPowerSelector",
    "QDistanceSelector",
    "SortedListSelector",
    "selector_for",
    "builders",
    "build_cin_like_topology",
    "CinNetwork",
    "CinParameters",
    "HierarchicalSelector",
    "elect_backbone",
]
