"""Standard and pathological topology constructors.

Includes the regular topologies the paper analyzes (line, ring,
D-dimensional meshes), generic test graphs (trees, stars, connected
random graphs), and the two pathological examples of Section 3.2
(Figures 1 and 2) on which spatially-distributed rumor mongering can
fail.
"""

from __future__ import annotations

import itertools
import random
from typing import List, Sequence, Tuple

from repro.topology.graph import Topology


def line(n: int) -> Topology:
    """``n`` sites on a line, each one link from its neighbors."""
    if n < 1:
        raise ValueError("need at least one site")
    topo = Topology()
    for i in range(n):
        topo.add_node(i, site=True)
    for i in range(n - 1):
        topo.add_edge(i, i + 1)
    return topo


def ring(n: int) -> Topology:
    """``n`` sites on a cycle."""
    if n < 3:
        raise ValueError("a ring needs at least three sites")
    topo = line(n)
    topo.add_edge(n - 1, 0)
    return topo


def mesh(side_lengths: Sequence[int]) -> Topology:
    """A D-dimensional rectilinear mesh of sites.

    ``side_lengths`` gives the extent in each dimension; e.g.
    ``mesh([16, 16])`` is a 16x16 2-D grid.  ``Q_s(d)`` on such a mesh
    is ``Theta(d^D)``, the fact the Q-based distributions exploit.
    """
    if not side_lengths or any(s < 1 for s in side_lengths):
        raise ValueError("side lengths must be positive")
    topo = Topology()
    coords = list(itertools.product(*(range(s) for s in side_lengths)))
    index = {c: i for i, c in enumerate(coords)}
    for i in range(len(coords)):
        topo.add_node(i, site=True)
    for coord in coords:
        for axis in range(len(side_lengths)):
            neighbor = list(coord)
            neighbor[axis] += 1
            neighbor = tuple(neighbor)
            if neighbor in index:
                topo.add_edge(index[coord], index[neighbor])
    return topo


def grid(rows: int, cols: int) -> Topology:
    """Convenience 2-D mesh."""
    return mesh([rows, cols])


def star(n_leaves: int) -> Topology:
    """One hub site with ``n_leaves`` leaf sites."""
    if n_leaves < 1:
        raise ValueError("need at least one leaf")
    topo = Topology()
    topo.add_node(0, site=True)
    for i in range(1, n_leaves + 1):
        topo.add_node(i, site=True)
        topo.add_edge(0, i)
    return topo


def complete_binary_tree(depth: int) -> Topology:
    """A complete binary tree of sites; ``2^(depth+1) - 1`` nodes."""
    if depth < 0:
        raise ValueError("depth must be >= 0")
    topo = Topology()
    n = 2 ** (depth + 1) - 1
    for i in range(n):
        topo.add_node(i, site=True)
    for i in range(1, n):
        topo.add_edge(i, (i - 1) // 2)
    return topo


def random_connected(n: int, extra_edges: int, seed: int) -> Topology:
    """A connected random graph: random spanning tree plus extra links."""
    if n < 1:
        raise ValueError("need at least one site")
    rng = random.Random(seed)
    topo = Topology()
    for i in range(n):
        topo.add_node(i, site=True)
    nodes = list(range(n))
    rng.shuffle(nodes)
    for i in range(1, n):
        # Attach each node to a random earlier node: a uniform random
        # recursive tree, guaranteed connected.
        topo.add_edge(nodes[i], nodes[rng.randrange(i)])
    added = 0
    attempts = 0
    while added < extra_edges and attempts < 50 * max(extra_edges, 1):
        attempts += 1
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and (min(u, v), max(u, v)) not in set(topo.edges):
            topo.add_edge(u, v)
            added += 1
    return topo


def figure1_topology(m: int, spur_length: int = 3) -> Tuple[Topology, int, int, List[int]]:
    """The paper's Figure 1: two nearby sites far from the main group.

    Sites ``s`` and ``t`` are adjacent; ``m`` sites ``u_1..u_m`` hang
    off a shared hub reachable from both ``s`` and ``t`` through
    ``spur_length`` non-site relay nodes, so every ``u_i`` is
    equidistant from ``s`` and from ``t``.  With a ``Q^-2``-style
    distribution and ``m > k``, push rumor mongering started at ``s``
    or ``t`` has a significant chance of dying inside ``{s, t}``.

    Returns ``(topology, s, t, [u_1..u_m])``.
    """
    if m < 1:
        raise ValueError("need at least one distant site")
    if spur_length < 1:
        raise ValueError("spur must have at least one relay node")
    topo = Topology()
    s = topo.add_node(0, site=True)
    t = topo.add_node(1, site=True)
    topo.add_edge(s, t)
    hub = topo.new_node(site=False)
    # Two relay chains of equal length so d(s, u_i) == d(t, u_i).
    previous = s
    for __ in range(spur_length):
        relay = topo.new_node(site=False)
        topo.add_edge(previous, relay)
        previous = relay
    topo.add_edge(previous, hub)
    previous = t
    for __ in range(spur_length):
        relay = topo.new_node(site=False)
        topo.add_edge(previous, relay)
        previous = relay
    topo.add_edge(previous, hub)
    group = []
    for __ in range(m):
        u = topo.new_node(site=True)
        topo.add_edge(hub, u)
        group.append(u)
    return topo, s, t, group


def figure2_topology(depth: int, spur_length: int) -> Tuple[Topology, int, int]:
    """The paper's Figure 2: a lone site far from a complete binary tree.

    Site ``s`` is connected to the root of a complete binary tree of
    sites through a chain of ``spur_length`` non-site relays, with
    ``spur_length + 1 > depth`` so the distance from ``s`` to the root
    exceeds the height of the tree.  With a ``Q^-2``-style
    distribution, push rumor mongering started inside the tree may
    never contact ``s`` while the rumor is hot.

    Returns ``(topology, s, root)``.
    """
    if spur_length + 1 <= depth:
        raise ValueError(
            "spur must make s farther from the root than the tree height"
        )
    tree = complete_binary_tree(depth)
    topo = Topology()
    for node in tree.nodes:
        topo.add_node(node, site=True)
    for u, v in tree.edges:
        topo.add_edge(u, v)
    root = 0
    s = topo.new_node(site=True)
    previous = s
    for __ in range(spur_length):
        relay = topo.new_node(site=False)
        topo.add_edge(previous, relay)
        previous = relay
    topo.add_edge(previous, root)
    return topo, s, root


def two_clusters(n1: int, n2: int, bridge_length: int = 4) -> Tuple[Topology, Tuple[int, int]]:
    """Two densely meshed clusters joined by one long chain of relays.

    A minimal model of the CIN's transatlantic situation: the chain's
    middle link is labeled ``"bridge"``.  Returns the topology and the
    labeled bridge edge.
    """
    if n1 < 1 or n2 < 1:
        raise ValueError("clusters must be non-empty")
    if bridge_length < 1:
        raise ValueError("bridge must have at least one link")
    topo = Topology()
    first = [topo.new_node(site=True) for __ in range(n1)]
    second = [topo.new_node(site=True) for __ in range(n2)]
    for group in (first, second):
        hub = group[0]
        for member in group[1:]:
            topo.add_edge(hub, member)
        # A few chords so the cluster is not a pure star.
        for i in range(1, len(group) - 1, 3):
            topo.add_edge(group[i], group[i + 1])
    # Build the relay chain and label its middle link "bridge".
    chain = [first[0]]
    for __ in range(bridge_length - 1):
        chain.append(topo.new_node(site=False))
    chain.append(second[0])
    middle = bridge_length // 2
    for i, (u, v) in enumerate(zip(chain, chain[1:])):
        topo.add_edge(u, v, label="bridge" if i == middle else None)
    return topo, topo.labeled_edge("bridge")
