"""A synthetic stand-in for the Xerox Corporate Internet (CIN).

The paper's spatial experiments (Tables 4 and 5) ran on the actual CIN
topology, which is proprietary and long gone.  The paper describes it
as: several hundred Ethernets connected by gateways (internetwork
routers) and phone lines; several hundred Clearinghouse servers; a
packet from Japan to Europe may traverse up to 14 gateways; small
sections are linear; and a *pair of transatlantic links* are the only
routes connecting a few tens of European sites to several hundred North
American sites — the far end of the link the paper reports traffic for
is at Bushey, England.

:func:`build_cin_like_topology` deterministically generates a network
with those qualitative features:

* a US backbone of gateway routers in a chain with a few cross links
  (so coast-to-coast paths traverse many gateways);
* metro areas hanging off each backbone gateway, each consisting of a
  few Ethernets with a handful of server sites each (locally dense);
* two linear phone-line chains of sites (the paper's linear sections);
* a European region of a few tens of sites connected to the US only by
  two transatlantic links, one of which is labeled ``"bushey"``.

Absolute traffic numbers on this synthetic network differ from the
paper's, but the features the spatial results depend on — scarce
critical links, local dimension between 1 and 2, a few hundred sites —
are reproduced, so orderings and approximate ratios carry over.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Tuple

from repro.sim.metrics import Edge
from repro.topology.graph import Topology


@dataclasses.dataclass(frozen=True, slots=True)
class CinParameters:
    """Knobs for the synthetic CIN generator.

    Defaults produce roughly 300 sites, matching the paper's "domain
    stored at 300 sites" scenario.
    """

    backbone_hubs: int = 8
    metro_ethernets: Tuple[int, int] = (3, 5)   # per hub, inclusive range
    sites_per_ethernet: Tuple[int, int] = (5, 9)
    linear_chains: int = 2
    linear_chain_length: int = 10
    europe_ethernets: int = 5
    europe_sites_per_ethernet: Tuple[int, int] = (5, 7)
    backbone_chords: int = 2
    seed: int = 1987


@dataclasses.dataclass(slots=True)
class CinNetwork:
    """The generated network plus the metadata experiments need."""

    topology: Topology
    regions: Dict[str, List[int]]
    bushey: Edge
    transatlantic: Tuple[Edge, Edge]

    @property
    def sites(self) -> List[int]:
        return self.topology.sites

    @property
    def site_count(self) -> int:
        return self.topology.site_count

    @property
    def europe_sites(self) -> List[int]:
        return self.regions["europe"]

    @property
    def us_sites(self) -> List[int]:
        return [s for region, sites in self.regions.items() if region != "europe" for s in sites]


def _add_ethernet(topo: Topology, gateway: int, n_sites: int) -> List[int]:
    """An Ethernet: a subrouter on the gateway with sites attached."""
    subrouter = topo.new_node(site=False)
    topo.add_edge(gateway, subrouter)
    sites = []
    for __ in range(n_sites):
        site = topo.new_node(site=True)
        topo.add_edge(subrouter, site)
        sites.append(site)
    return sites


def build_cin_like_topology(params: CinParameters | None = None) -> CinNetwork:
    """Generate the synthetic CIN (deterministic for a given seed)."""
    params = params or CinParameters()
    rng = random.Random(params.seed)
    topo = Topology()
    regions: Dict[str, List[int]] = {}

    # --- US backbone: a chain of gateway routers ----------------------
    hubs = [topo.new_node(site=False) for __ in range(params.backbone_hubs)]
    for u, v in zip(hubs, hubs[1:]):
        topo.add_edge(u, v)
    # A few chords so the backbone is not a pure line.
    for __ in range(params.backbone_chords):
        i = rng.randrange(len(hubs) - 3)
        j = i + 2 + rng.randrange(min(3, len(hubs) - i - 2))
        topo.add_edge(hubs[i], hubs[j])

    # --- Metro areas: Ethernets hanging off each hub -------------------
    for index, hub in enumerate(hubs):
        metro_sites: List[int] = []
        n_ethernets = rng.randint(*params.metro_ethernets)
        for __ in range(n_ethernets):
            n_sites = rng.randint(*params.sites_per_ethernet)
            metro_sites.extend(_add_ethernet(topo, hub, n_sites))
        regions[f"metro-{index}"] = metro_sites

    # --- Linear phone-line chains (the paper's linear sections) -------
    for chain_index in range(params.linear_chains):
        attach = hubs[rng.randrange(len(hubs))]
        chain_sites: List[int] = []
        previous = attach
        for __ in range(params.linear_chain_length):
            site = topo.new_node(site=True)
            topo.add_edge(previous, site)
            chain_sites.append(site)
            previous = site
        regions[f"chain-{chain_index}"] = chain_sites

    # --- Europe: a few tens of sites behind two transatlantic links ---
    europe_gateway = topo.new_node(site=False)     # Bushey, England
    europe_gateway_2 = topo.new_node(site=False)
    topo.add_edge(europe_gateway, europe_gateway_2)
    # The two transatlantic links attach to different US hubs, so each
    # is genuinely a distinct route across the Atlantic.
    bushey = topo.add_edge(hubs[-1], europe_gateway, label="bushey")
    transatlantic_2 = topo.add_edge(hubs[-2], europe_gateway_2, label="transatlantic-2")
    europe_sites: List[int] = []
    for index in range(params.europe_ethernets):
        gateway = europe_gateway if index % 2 == 0 else europe_gateway_2
        n_sites = rng.randint(*params.europe_sites_per_ethernet)
        europe_sites.extend(_add_ethernet(topo, gateway, n_sites))
    regions["europe"] = europe_sites

    topo.validate()
    return CinNetwork(
        topology=topo,
        regions=regions,
        bushey=bushey,
        transatlantic=(bushey, transatlantic_2),
    )
