"""Site-to-site distances and the cumulative count ``Q_s(d)`` (Section 3).

``Q_s(d)`` is the number of database sites at distance ``d`` or less
from site ``s`` (excluding ``s`` itself).  On a D-dimensional mesh
``Q_s(d)`` is ``Theta(d^D)``, which is what lets ``Q``-based partner
distributions adapt to the network's *local dimension* — the key idea
behind the paper's ``1/Q_s(d)^2`` distribution.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Sequence, Tuple

from repro.topology.graph import Topology


class SiteDistances:
    """Precomputed distances between the *sites* of a topology.

    Distances are measured over the whole graph (through non-site
    nodes), but only site-to-site values are retained.
    """

    def __init__(self, topology: Topology, sites: Sequence[int] | None = None):
        """``sites`` restricts the matrix to a subset of the topology's
        sites (a domain's replica set); default is all sites."""
        topology.validate()
        self.topology = topology
        if sites is None:
            self.sites = topology.sites
        else:
            unknown = set(sites) - set(topology.sites)
            if unknown:
                raise ValueError(f"not topology sites: {sorted(unknown)}")
            self.sites = list(sites)
        self._site_index: Dict[int, int] = {s: i for i, s in enumerate(self.sites)}
        # _rows[i][j] = hop distance between sites[i] and sites[j]
        self._rows: List[List[int]] = []
        for s in self.sites:
            dist = topology.distances_from(s)
            row = []
            for t in self.sites:
                if t not in dist:
                    raise ValueError(f"sites {s} and {t} are not connected")
                row.append(dist[t])
            self._rows.append(row)
        # Per-site sorted views, lazily built.
        self._sorted_cache: Dict[int, Tuple[List[int], List[int], List[int]]] = {}

    @property
    def site_count(self) -> int:
        return len(self.sites)

    def distance(self, s: int, t: int) -> int:
        return self._rows[self._site_index[s]][self._site_index[t]]

    def row(self, s: int) -> Sequence[int]:
        """Distances from site ``s`` to every site (in ``self.sites`` order)."""
        return self._rows[self._site_index[s]]

    def _sorted_view(self, s: int) -> Tuple[List[int], List[int], List[int]]:
        """``(others, dists, unique_ds)`` for site ``s``.

        ``others`` are the other sites sorted by distance (ties broken
        by site id for determinism), ``dists`` the matching distances,
        and ``unique_ds`` the sorted distinct distances.
        """
        cached = self._sorted_cache.get(s)
        if cached is not None:
            return cached
        row = self.row(s)
        pairs = sorted(
            (d, site)
            for site, d in zip(self.sites, row)
            if site != s
        )
        others = [site for __, site in pairs]
        dists = [d for d, __ in pairs]
        unique_ds = sorted(set(dists))
        result = (others, dists, unique_ds)
        self._sorted_cache[s] = result
        return result

    def others_by_distance(self, s: int) -> Tuple[List[int], List[int]]:
        """Other sites sorted by distance from ``s``, with their distances."""
        others, dists, __ = self._sorted_view(s)
        return others, dists

    def q(self, s: int, d: int) -> int:
        """``Q_s(d)``: number of sites within distance ``d`` of ``s``.

        ``s`` itself is excluded; ``Q_s(0) = 0`` and ``Q_s(max) = n-1``.
        """
        if d < 0:
            return 0
        __, dists, ___ = self._sorted_view(s)
        return bisect.bisect_right(dists, d)

    def distance_histogram(self, s: int) -> List[Tuple[int, int]]:
        """Sorted ``(distance, count)`` pairs for sites around ``s``."""
        __, dists, unique_ds = self._sorted_view(s)
        histogram = []
        previous = 0
        for d in unique_ds:
            q = bisect.bisect_right(dists, d)
            histogram.append((d, q - previous))
            previous = q
        return histogram

    def eccentricity(self, s: int) -> int:
        """Largest site-to-site distance from ``s``."""
        __, dists, ___ = self._sorted_view(s)
        return dists[-1] if dists else 0

    def diameter(self) -> int:
        """Largest site-to-site distance in the network."""
        return max((self.eccentricity(s) for s in self.sites), default=0)

    def mean_distance(self) -> float:
        """Mean distance over ordered site pairs."""
        n = self.site_count
        if n < 2:
            return 0.0
        total = sum(sum(row) for row in self._rows)
        return total / (n * (n - 1))
