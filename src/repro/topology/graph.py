"""Undirected network graphs with sites, routing and labeled links.

Nodes are integers.  Some nodes host database *sites* (Clearinghouse
servers); others are pure network elements (gateways, internetwork
routers) — the paper's Figure 1 explicitly relies on not having a site
at every network node.  All links have unit length; distances are hop
counts, and conversations are charged to every link on a deterministic
shortest path.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.metrics import Edge, canonical_edge


class Topology:
    """An undirected graph of network nodes, some of which are sites."""

    def __init__(self) -> None:
        self._adjacency: Dict[int, List[int]] = {}
        self._edges: set[Edge] = set()
        self._sites: List[int] = []
        self._site_set: set[int] = set()
        self._labels: Dict[str, Edge] = {}
        # Caches invalidated on mutation.
        self._dist_cache: Dict[int, Dict[int, int]] = {}
        self._next_hop_cache: Dict[int, Dict[int, int]] = {}
        self._path_edges_cache: Dict[Tuple[int, int], Tuple[Edge, ...]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self, node: int, site: bool = False) -> int:
        """Add a network node; ``site=True`` marks it as a database site."""
        if node not in self._adjacency:
            self._adjacency[node] = []
        if site and node not in self._site_set:
            self._site_set.add(node)
            self._sites.append(node)
        self._invalidate()
        return node

    def new_node(self, site: bool = False) -> int:
        """Add a node with the next free integer id."""
        node = max(self._adjacency, default=-1) + 1
        return self.add_node(node, site=site)

    def add_edge(self, u: int, v: int, label: Optional[str] = None) -> Edge:
        """Add an undirected unit-length link, optionally naming it."""
        if u == v:
            raise ValueError("self-loops are not allowed")
        self.add_node(u)
        self.add_node(v)
        edge = canonical_edge(u, v)
        if edge not in self._edges:
            self._edges.add(edge)
            self._adjacency[u].append(v)
            self._adjacency[v].append(u)
            # Keep neighbor lists sorted for deterministic routing.
            self._adjacency[u].sort()
            self._adjacency[v].sort()
        if label is not None:
            self._labels[label] = edge
        self._invalidate()
        return edge

    def _invalidate(self) -> None:
        self._dist_cache.clear()
        self._next_hop_cache.clear()
        self._path_edges_cache.clear()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> List[int]:
        return list(self._adjacency.keys())

    @property
    def sites(self) -> List[int]:
        """Database sites, in insertion order."""
        return list(self._sites)

    @property
    def node_count(self) -> int:
        return len(self._adjacency)

    @property
    def site_count(self) -> int:
        return len(self._sites)

    @property
    def edges(self) -> List[Edge]:
        return sorted(self._edges)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def is_site(self, node: int) -> bool:
        return node in self._site_set

    def neighbors(self, node: int) -> Sequence[int]:
        return tuple(self._adjacency[node])

    def labeled_edge(self, label: str) -> Edge:
        """Look up a named link, e.g. the transatlantic ``"bushey"`` link."""
        try:
            return self._labels[label]
        except KeyError:
            raise KeyError(f"no link labeled {label!r}") from None

    @property
    def labels(self) -> Dict[str, Edge]:
        return dict(self._labels)

    # ------------------------------------------------------------------
    # Distances and routing
    # ------------------------------------------------------------------

    def distances_from(self, source: int) -> Dict[int, int]:
        """Hop distances from ``source`` to every reachable node (BFS)."""
        cached = self._dist_cache.get(source)
        if cached is not None:
            return cached
        dist = {source: 0}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            d = dist[node]
            for neighbor in self._adjacency[node]:
                if neighbor not in dist:
                    dist[neighbor] = d + 1
                    queue.append(neighbor)
        self._dist_cache[source] = dist
        return dist

    def distance(self, u: int, v: int) -> int:
        dist = self.distances_from(u).get(v)
        if dist is None:
            raise ValueError(f"nodes {u} and {v} are not connected")
        return dist

    def _next_hops(self, destination: int) -> Dict[int, int]:
        """next_hop[node] = neighbor on the deterministic shortest path
        toward ``destination``.

        Computed by a reverse BFS from the destination; ties are broken
        toward the smallest neighbor id so routing is reproducible.
        """
        cached = self._next_hop_cache.get(destination)
        if cached is not None:
            return cached
        dist = self.distances_from(destination)
        next_hop: Dict[int, int] = {}
        for node in self._adjacency:
            if node == destination or node not in dist:
                continue
            best = min(
                (n for n in self._adjacency[node] if dist.get(n) == dist[node] - 1),
                default=None,
            )
            if best is not None:
                next_hop[node] = best
        self._next_hop_cache[destination] = next_hop
        return next_hop

    def path(self, source: int, destination: int) -> List[int]:
        """The deterministic shortest node path from source to destination."""
        if source == destination:
            return [source]
        next_hop = self._next_hops(destination)
        path = [source]
        node = source
        while node != destination:
            node = next_hop.get(node)
            if node is None:
                raise ValueError(f"nodes {source} and {destination} are not connected")
            path.append(node)
        return path

    def path_edges(self, source: int, destination: int) -> Tuple[Edge, ...]:
        """The canonical edges along :meth:`path`, cached per ordered pair.

        Traffic accounting charges the same source/destination pairs
        over and over (every conversation of a run); caching the edge
        tuple makes that O(path length) exactly once per pair instead
        of a next-hop walk plus canonicalization per message.
        """
        pair = (source, destination)
        cached = self._path_edges_cache.get(pair)
        if cached is None:
            path = self.path(source, destination)
            cached = tuple(
                canonical_edge(u, v) for u, v in zip(path, path[1:])
            )
            self._path_edges_cache[pair] = cached
        return cached

    def is_connected(self) -> bool:
        if not self._adjacency:
            return True
        first = next(iter(self._adjacency))
        return len(self.distances_from(first)) == len(self._adjacency)

    def validate(self) -> None:
        """Raise ValueError if the topology is unusable for simulation.

        A topology with no links at all is allowed: it models the
        paper's *uniform network* abstraction (Tables 1-3), where
        traffic is counted in messages without routing.  A topology
        that has links must be connected.
        """
        if self.site_count < 1:
            raise ValueError("topology has no database sites")
        if self.edge_count > 0 and not self.is_connected():
            raise ValueError("topology is not connected")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(nodes={self.node_count}, edges={self.edge_count}, "
            f"sites={self.site_count})"
        )


def complete_topology(n: int) -> Topology:
    """A clique of ``n`` sites (every pair one hop apart)."""
    topo = Topology()
    for i in range(n):
        topo.add_node(i, site=True)
    for i in range(n):
        for j in range(i + 1, n):
            topo.add_edge(i, j)
    return topo


def sites_only(n: int) -> Topology:
    """``n`` sites and no links.

    For experiments where the network is regarded as uniform (Tables
    1–3) no topology is needed; spatial selectors are not usable on
    this graph but the uniform selector is.
    """
    topo = Topology()
    for i in range(n):
        topo.add_node(i, site=True)
    return topo


def edges_on_path(path: Sequence[int]) -> Iterable[Tuple[int, int]]:
    return zip(path, path[1:])
