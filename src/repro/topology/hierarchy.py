"""A two-level dynamic hierarchy of gossip partners (Section 4).

The paper's closing suggestion: "better performance might be achieved
by constructing a dynamic hierarchy, in which sites at high levels
contact other high level servers at long distances and lower level
servers at short distances.  (The key problem with such a mechanism is
maintaining the hierarchical structure.)"

This module implements that sketch:

* :func:`elect_backbone` — choose the high-level sites by the greedy
  farthest-point (k-center) heuristic, so the backbone spreads evenly
  across the network.  Because the election is a deterministic
  function of the distance matrix, every site can recompute it locally
  and the structure maintains itself as long as membership is known —
  the paper's "key problem" is reduced to the membership knowledge the
  protocols already need;
* :class:`HierarchicalSelector` — backbone sites flip a coin between a
  uniform long-range partner (among backbone peers) and a spatially
  local one; leaf sites always choose locally.  Long-range traffic is
  thus confined to O(sqrt(n) or so) backbone sites while updates still
  cross the network in a couple of backbone hops.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.topology.distance import SiteDistances
from repro.topology.spatial import (
    PartnerSelector,
    SortedListSelector,
    UniformSelector,
)


def elect_backbone(distances: SiteDistances, count: int) -> List[int]:
    """Greedy farthest-point election of ``count`` backbone sites.

    Starts from the site with the smallest id among those of maximal
    eccentricity (a deterministic, recomputable choice) and repeatedly
    adds the site farthest from the backbone so far.  Classic 2-approx
    k-center — the backbone ends up spread across the network.
    """
    if count < 1:
        raise ValueError("backbone needs at least one site")
    sites = distances.sites
    if count >= len(sites):
        return list(sites)
    start = min(
        sites,
        key=lambda s: (-distances.eccentricity(s), s),
    )
    backbone = [start]
    remaining = [s for s in sites if s != start]
    while len(backbone) < count:
        def distance_to_backbone(site: int) -> int:
            return min(distances.distance(site, b) for b in backbone)

        best = max(remaining, key=lambda s: (distance_to_backbone(s), -s))
        backbone.append(best)
        remaining.remove(best)
    return sorted(backbone)


class HierarchicalSelector(PartnerSelector):
    """Two-level partner selection per the Section 4 sketch.

    * Leaf sites always select with the local (spatial) distribution.
    * Backbone sites select another backbone site uniformly with
      probability ``long_range_probability``, otherwise locally.
    """

    def __init__(
        self,
        distances: SiteDistances,
        backbone: Optional[Sequence[int]] = None,
        backbone_count: Optional[int] = None,
        local_a: float = 2.0,
        long_range_probability: float = 0.5,
    ):
        if not 0.0 <= long_range_probability <= 1.0:
            raise ValueError("long_range_probability must be in [0, 1]")
        if (backbone is None) == (backbone_count is None):
            raise ValueError("give exactly one of backbone or backbone_count")
        if backbone is None:
            backbone = elect_backbone(distances, backbone_count)
        else:
            unknown = set(backbone) - set(distances.sites)
            if unknown:
                raise ValueError(f"backbone sites not in network: {sorted(unknown)}")
            backbone = sorted(set(backbone))
        if len(backbone) < 2 and len(distances.sites) > 1:
            raise ValueError("backbone needs at least two sites to gossip")
        self.backbone = list(backbone)
        self._backbone_set = set(backbone)
        self.long_range_probability = long_range_probability
        self._local = SortedListSelector(distances, a=local_a)
        self._long_range = UniformSelector(self.backbone)

    def is_backbone(self, site: int) -> bool:
        return site in self._backbone_set

    def choose(self, site: int, rng) -> int:
        if (
            site in self._backbone_set
            and rng.random() < self.long_range_probability
        ):
            return self._long_range.choose(site, rng)
        return self._local.choose(site, rng)

    def probability(self, site: int, partner: int) -> float:
        local = self._local.probability(site, partner)
        if site not in self._backbone_set:
            return local
        p_long = self.long_range_probability
        long_range = (
            self._long_range.probability(site, partner)
            if partner in self._backbone_set and partner != site
            else 0.0
        )
        return p_long * long_range + (1.0 - p_long) * local

    def describe(self) -> str:
        return (
            f"hierarchy(backbone={len(self.backbone)}, "
            f"p_long={self.long_range_probability:g}, "
            f"local={self._local.describe()})"
        )
