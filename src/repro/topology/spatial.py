"""Spatial partner-selection distributions (Section 3).

A partner selector answers "which site should ``s`` talk to this
cycle?".  The paper studies several families:

* **uniform** — every other site equally likely (the baseline whose
  per-link traffic overloads critical links);
* ``d^-a`` — probability proportional to a power of the distance (the
  linear-network analysis of Section 3);
* ``Q_s(d)^-a`` and ``1/(d * Q_s(d))`` — distributions parameterized by
  the cumulative site count ``Q_s(d)``, which adapt to the network's
  local dimension;
* the **sorted-list form (3.1.1)** — each site sorts the others by
  distance and selects position ``i`` with probability ``f(i) = i^-a``,
  averaging probabilities over equidistant sites:

      p(d) = (Q(d-1)^{1-a} - Q(d)^{1-a}) / (Q(d) - Q(d-1))

  (with one added to ``Q`` throughout, avoiding the singularity at
  ``Q(d) = 0``).  This is the form used for Tables 4 and 5 and the one
  deployed on the CIN.

All selectors draw from precomputed per-site cumulative weight tables,
so a choice is O(log n) after an O(n) per-site setup on first use.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.topology.distance import SiteDistances


class PartnerSelector:
    """Interface: map (site, rng) to a partner site."""

    def choose(self, site: int, rng) -> int:
        raise NotImplementedError

    def probability(self, site: int, partner: int) -> float:
        """Exact selection probability (used by tests and analysis)."""
        raise NotImplementedError

    def rebuild(self, sites: Sequence[int]) -> bool:
        """Adapt to a changed membership; True when the selector did.

        Protocols call this from ``on_site_added``/``on_site_removed``
        so a selector handed in explicitly does not keep serving a
        stale site list.  The default is False: topology-bound
        selectors derive their tables from the network's distances,
        which dynamic membership on a routed topology does not change.
        """
        return False

    def describe(self) -> str:
        raise NotImplementedError


def uniform_partner_index(pick: int, own: int) -> int:
    """Complete one uniform partner draw: a raw ``pick`` in
    ``[0, n-1)`` skips over the drawing site's own index ``own``.

    This two-line arithmetic is the draw contract shared between the
    scalar :class:`UniformSelector` and the batched trial engine
    (:mod:`repro.sim.batch`), which applies it to a whole population of
    picks at once (``adjusted_partners`` in :mod:`repro.sim.arrays`).
    Both consume exactly one ``randrange(n - 1)`` per draw, which is
    what keeps their trials bit-for-bit identical.
    """
    return pick + 1 if pick >= own else pick


class UniformSelector(PartnerSelector):
    """Choose uniformly among all other sites."""

    def __init__(self, sites: Sequence[int]):
        if len(sites) < 2:
            raise ValueError("need at least two sites")
        self._sites = list(sites)
        self._index = {s: i for i, s in enumerate(self._sites)}

    def choose(self, site: int, rng) -> int:
        n = len(self._sites)
        pick = rng.randrange(n - 1)
        return self._sites[uniform_partner_index(pick, self._index[site])]

    def probability(self, site: int, partner: int) -> float:
        if partner == site or partner not in self._index:
            return 0.0
        return 1.0 / (len(self._sites) - 1)

    def rebuild(self, sites: Sequence[int]) -> bool:
        if len(sites) < 2:
            return False
        self._sites = list(sites)
        self._index = {s: i for i, s in enumerate(self._sites)}
        return True

    def describe(self) -> str:
        return "uniform"


class _WeightedSelector(PartnerSelector):
    """Base class: per-site weight tables sampled by inverse CDF."""

    def __init__(self, distances: SiteDistances):
        self._distances = distances
        self._tables: Dict[int, Tuple[List[int], List[float]]] = {}

    def _weights(self, site: int, others: List[int], dists: List[int]) -> List[float]:
        raise NotImplementedError

    def _table(self, site: int) -> Tuple[List[int], List[float]]:
        cached = self._tables.get(site)
        if cached is not None:
            return cached
        others, dists = self._distances.others_by_distance(site)
        weights = self._weights(site, others, dists)
        if len(weights) != len(others):
            raise AssertionError("weight vector length mismatch")
        cumulative: List[float] = []
        total = 0.0
        for w in weights:
            if w < 0 or not math.isfinite(w):
                raise ValueError(f"invalid weight {w} for site {site}")
            total += w
            cumulative.append(total)
        if total <= 0:
            raise ValueError(f"site {site} has no positive-weight partners")
        table = (others, cumulative)
        self._tables[site] = table
        return table

    def choose(self, site: int, rng) -> int:
        others, cumulative = self._table(site)
        target = rng.random() * cumulative[-1]
        index = bisect.bisect_right(cumulative, target)
        if index >= len(others):  # guard against floating-point edge
            index = len(others) - 1
        return others[index]

    def probability(self, site: int, partner: int) -> float:
        others, cumulative = self._table(site)
        total = cumulative[-1]
        for i, other in enumerate(others):
            if other == partner:
                weight = cumulative[i] - (cumulative[i - 1] if i else 0.0)
                return weight / total
        return 0.0


class DistancePowerSelector(_WeightedSelector):
    """Probability proportional to ``d^-a`` (Section 3's linear analysis)."""

    def __init__(self, distances: SiteDistances, a: float):
        super().__init__(distances)
        self.a = a

    def _weights(self, site: int, others: List[int], dists: List[int]) -> List[float]:
        return [float(d) ** (-self.a) for d in dists]

    def describe(self) -> str:
        return f"d^-{self.a:g}"


class QPowerSelector(_WeightedSelector):
    """Probability proportional to ``Q_s(d)^-a``.

    With ``a = 2`` this is the ``1/Q_s(d)^2`` distribution the paper's
    production Clearinghouse release shipped with.
    """

    def __init__(self, distances: SiteDistances, a: float = 2.0):
        super().__init__(distances)
        self.a = a

    def _weights(self, site: int, others: List[int], dists: List[int]) -> List[float]:
        return [self._distances.q(site, d) ** (-self.a) for d in dists]

    def describe(self) -> str:
        return f"Q^-{self.a:g}"


class QDistanceSelector(_WeightedSelector):
    """Probability proportional to ``1/(d * Q_s(d))``.

    The paper conjectured distributions between ``1/(d Q)`` and
    ``1/Q^2`` scale best; simulations found ``1/Q^2`` outperforms this
    one, which we keep as a comparison point.
    """

    def _weights(self, site: int, others: List[int], dists: List[int]) -> List[float]:
        return [1.0 / (d * self._distances.q(site, d)) for d in dists]

    def describe(self) -> str:
        return "1/(d*Q)"


class SortedListSelector(_WeightedSelector):
    """The paper's smoothed sorted-list distribution, equation (3.1.1).

    ``form="integral"`` reproduces the paper exactly: ``f(i) = i^-a`` is
    approximated by an integral and one is added to ``Q`` throughout to
    avoid the singularity at ``Q(d) = 0``.  ``form="exact"`` instead
    averages the exact ``f(i)`` sum over equidistant sites; the two
    agree closely and the exact form needs no singularity fix.
    """

    def __init__(self, distances: SiteDistances, a: float, form: str = "integral"):
        if form not in ("integral", "exact"):
            raise ValueError("form must be 'integral' or 'exact'")
        super().__init__(distances)
        self.a = a
        self.form = form

    def _per_distance_weight(self, q_lo: int, q_hi: int) -> float:
        """Average selection weight for one site at a distance band that
        covers sorted positions ``q_lo + 1 .. q_hi``."""
        count = q_hi - q_lo
        if self.form == "exact":
            return sum(i ** (-self.a) for i in range(q_lo + 1, q_hi + 1)) / count
        # Integral approximation with the paper's +1 correction.
        lo = q_lo + 1
        hi = q_hi + 1
        if self.a == 1.0:
            return (math.log(hi) - math.log(lo)) / count
        exponent = 1.0 - self.a
        return abs(lo ** exponent - hi ** exponent) / count

    def _weights(self, site: int, others: List[int], dists: List[int]) -> List[float]:
        weights: List[float] = []
        index = 0
        n = len(dists)
        q_lo = 0
        while index < n:
            d = dists[index]
            q_hi = q_lo
            while q_hi < n and dists[q_hi] == d:
                q_hi += 1
            weight = self._per_distance_weight(q_lo, q_hi)
            weights.extend([weight] * (q_hi - q_lo))
            index = q_hi
            q_lo = q_hi
        return weights

    def describe(self) -> str:
        return f"sorted-list a={self.a:g} ({self.form})"


def selector_for(
    kind: str,
    distances: Optional[SiteDistances] = None,
    sites: Optional[Sequence[int]] = None,
    a: float = 2.0,
) -> PartnerSelector:
    """Factory used by experiments and examples.

    ``kind`` is one of ``"uniform"``, ``"dpower"``, ``"qpower"``,
    ``"dq"``, ``"paper"`` (equation 3.1.1, integral form) or
    ``"paper-exact"``.
    """
    if kind == "uniform":
        if sites is None:
            if distances is None:
                raise ValueError("uniform selector needs sites or distances")
            sites = distances.sites
        return UniformSelector(sites)
    if distances is None:
        raise ValueError(f"selector {kind!r} needs site distances")
    if kind == "dpower":
        return DistancePowerSelector(distances, a)
    if kind == "qpower":
        return QPowerSelector(distances, a)
    if kind == "dq":
        return QDistanceSelector(distances)
    if kind == "paper":
        return SortedListSelector(distances, a, form="integral")
    if kind == "paper-exact":
        return SortedListSelector(distances, a, form="exact")
    raise ValueError(f"unknown selector kind {kind!r}")
