"""Production traffic subsystem: generators, geo model, steady state.

The pieces, bottom-up:

* :mod:`repro.workload.generators` — open-loop Poisson arrivals (rate
  scalable to millions of users) and a closed-loop client pool with
  think times; Zipf key popularity; write/read/delete mixes.
* :mod:`repro.workload.stats` — reservoir-sampled staleness
  distributions and per-window curve series.
* :mod:`repro.workload.driver` — plays generated operations into a
  simulated :class:`~repro.cluster.cluster.Cluster`, maintaining the
  staleness oracle.
* :mod:`repro.workload.geo` — named datacenters, per-link WAN latency
  and bandwidth caps, wired into the simulator's topology, mailer and
  per-cycle conversation admission.
* :mod:`repro.workload.steady` — the simulator steady-state harness
  behind ``python -m repro workload``.
* :mod:`repro.workload.live` — the live-runtime load generator
  (imported lazily here: it pulls in asyncio networking).

``repro.experiments.workloads`` remains as a compatibility shim
re-exporting :class:`WorkloadConfig` / :class:`WorkloadDriver` plus the
Section 1.3 tau study built on them.
"""

from repro.workload.driver import WorkloadDriver
from repro.workload.generators import (
    ClientPool,
    ClosedLoopGenerator,
    OpenLoopGenerator,
    Operation,
    OpKind,
    WorkloadConfig,
    ZipfKeys,
    poisson,
)
from repro.workload.geo import (
    DatacenterSpec,
    WanConfig,
    WanLinkSpec,
    WanNetwork,
    link_name,
    three_datacenters,
)
from repro.workload.stats import (
    ReservoirSample,
    WindowPoint,
    WindowSeries,
    percentile,
)
from repro.workload.steady import (
    SCHEMA,
    SteadyStateConfig,
    run_steady_state,
    summary_lines,
)

__all__ = [
    "ClientPool",
    "ClosedLoopGenerator",
    "DatacenterSpec",
    "OpenLoopGenerator",
    "Operation",
    "OpKind",
    "ReservoirSample",
    "SCHEMA",
    "SteadyStateConfig",
    "WanConfig",
    "WanLinkSpec",
    "WanNetwork",
    "WindowPoint",
    "WindowSeries",
    "WorkloadConfig",
    "WorkloadDriver",
    "ZipfKeys",
    "link_name",
    "percentile",
    "poisson",
    "run_steady_state",
    "summary_lines",
    "three_datacenters",
]
