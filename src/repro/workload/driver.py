"""Drive generated client traffic into a simulated cluster.

:class:`WorkloadDriver` binds a generator
(:mod:`repro.workload.generators`) to a
:class:`~repro.cluster.cluster.Cluster` and plays the operations, cycle
by cycle:

* **writes** become :meth:`Cluster.inject_update` calls (and the
  driver's *oracle* records the globally latest timestamp per key);
* **deletes** become :meth:`Cluster.inject_delete` calls — death
  certificates that must propagate exactly like writes;
* **reads** touch nothing: a read of ``key`` at site ``s`` samples the
  **staleness** ``latest_global_ts(key) − local_ts(key)`` (in cycles) —
  zero when ``s`` already holds the newest version, positive while an
  update is still propagating.  A site holding *no* version of a key
  some other site has written counts as a ``read_miss`` instead (there
  is no local timestamp to subtract).

The driver is the successor of the old
``repro.experiments.workloads.WorkloadDriver`` and keeps its public
surface (``inject_one_cycle``, ``run``, ``operations``, ``deletes``)
so the Section 1.3 tau study runs unchanged on top of it.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.core.timestamps import Timestamp
from repro.obs.events import EventKind
from repro.sim.rng import derive_seed
from repro.workload.generators import (
    ClientPool,
    ClosedLoopGenerator,
    OpenLoopGenerator,
    Operation,
    OpKind,
    WorkloadConfig,
)
from repro.workload.stats import ReservoirSample

#: Residue estimation caps its key scan so a million-key oracle does
#: not turn every curve point into a full-database sweep; keys are
#: taken at a deterministic stride, not sampled, so runs stay
#: reproducible.
_RESIDUE_KEY_CAP = 64


class WorkloadDriver:
    """Injects a :class:`WorkloadConfig` into a cluster, cycle by cycle.

    With ``pool`` the traffic is closed-loop
    (:class:`~repro.workload.generators.ClosedLoopGenerator`);
    otherwise open-loop Poisson arrivals at ``config.rate``.
    """

    def __init__(
        self,
        cluster: Cluster,
        config: WorkloadConfig,
        seed: int = 0,
        pool: Optional[ClientPool] = None,
    ):
        self.cluster = cluster
        self.config = config
        self._rng = random.Random(derive_seed(seed, "workload"))
        if pool is not None:
            self.generator = ClosedLoopGenerator(config, pool, self._rng)
        else:
            self.generator = OpenLoopGenerator(config, self._rng)
        self._sequence = 0
        # The oracle: globally latest timestamp per key, maintained from
        # the injections themselves (the driver sees every write).
        self._latest: Dict[str, Timestamp] = {}
        self.operations = 0
        self.writes = 0
        self.reads = 0
        self.deletes = 0
        self.read_misses = 0
        self.staleness = ReservoirSample(
            rng=random.Random(derive_seed(seed, "workload", "staleness"))
        )
        self._window_staleness_sink = None

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------

    def inject_one_cycle(self) -> int:
        """Inject this cycle's client operations; returns how many."""
        up = self.cluster.up_site_ids()
        if not up:
            return 0
        ops = self.generator.ops_for_cycle(self.cluster.cycle, up)
        for op in ops:
            self._apply(op)
        return len(ops)

    def _apply(self, op: Operation) -> None:
        self.operations += 1
        if op.kind is OpKind.DELETE:
            update = self.cluster.inject_delete(op.site, op.key)
            self._note_latest(op.key, update.entry.timestamp)
            self.deletes += 1
        elif op.kind is OpKind.READ:
            self.reads += 1
            self._sample_read(op.site, op.key)
        else:
            self._sequence += 1
            update = self.cluster.inject_update(
                op.site, op.key, f"value-{self._sequence}"
            )
            self._note_latest(op.key, update.entry.timestamp)
            self.writes += 1

    def _note_latest(self, key: str, timestamp: Timestamp) -> None:
        current = self._latest.get(key)
        if current is None or timestamp > current:
            self._latest[key] = timestamp

    def _sample_read(self, site: int, key: str) -> None:
        latest = self._latest.get(key)
        if latest is None:
            return  # never written anywhere: staleness undefined
        entry = self.cluster.sites[site].store.entry(key)
        if entry is None:
            self.read_misses += 1
            return
        staleness = max(0.0, latest.time - entry.timestamp.time)
        self.staleness.add(staleness)
        if self._window_staleness_sink is not None:
            self._window_staleness_sink(staleness)
        bus = self.cluster.bus
        if bus.has_sinks:
            bus.emit(
                EventKind.READ_SAMPLED,
                node=site,
                key=key,
                staleness=staleness,
            )

    def on_staleness(self, sink) -> None:
        """Register a callback fired with every staleness sample (the
        steady-state harness feeds its per-window curves this way)."""
        self._window_staleness_sink = sink

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def residue(self) -> float:
        """The stale fraction of (up site, key) pairs right now.

        A pair is stale when the site lacks the oracle's latest version
        of the key (missing entirely, or older).  Scans at most
        ``_RESIDUE_KEY_CAP`` keys at a deterministic stride.
        """
        keys = sorted(self._latest)
        if not keys:
            return 0.0
        stride = max(1, len(keys) // _RESIDUE_KEY_CAP)
        sampled = keys[::stride]
        up = self.cluster.up_site_ids()
        if not up:
            return 0.0
        stale = 0
        for key in sampled:
            latest = self._latest[key]
            for site_id in up:
                entry = self.cluster.sites[site_id].store.entry(key)
                if entry is None or entry.timestamp < latest:
                    stale += 1
        return stale / (len(sampled) * len(up))

    def oracle_keys(self) -> List[str]:
        """Keys ever written, sorted (the oracle's domain)."""
        return sorted(self._latest)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self, cycles: int) -> None:
        """Interleave injection with cluster cycles."""
        for __ in range(cycles):
            self.inject_one_cycle()
            self.cluster.run_cycle()
