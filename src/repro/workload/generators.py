"""Client traffic generators: arrival processes, key popularity, op mix.

The paper's tables inject one update and watch it converge; the
deployment it models — the Clearinghouse serving a whole internetwork —
lived under continuous client traffic.  This module produces that
traffic for both runtimes:

* :class:`OpenLoopGenerator` — an **open-loop** (rate-driven) arrival
  process: operations arrive Poisson(``rate``) per cycle regardless of
  how the system keeps up, the way an internet full of clients behaves.
  The rate may be given directly (``updates_per_cycle``) or derived
  from a population (``users`` × ``ops_per_user_per_cycle``), so a
  millions-of-users deployment is one config line.
* :class:`ClosedLoopGenerator` — a **closed-loop** client pool: each of
  ``clients`` simulated clients keeps at most ``max_outstanding``
  operations in flight and *thinks* for an exponential
  ``think_time`` between completed operations, so offered load follows
  the classic closed-loop law ``clients × max_outstanding /
  (service + think)`` and backs off as latency grows.

Both draw keys from a Zipf(``zipf_s``) popularity over ``key_space``
named keys (``zipf_s=0`` is uniform) and split operations into writes,
reads and deletes by configured fractions.  Reads exist purely to
*measure*: a read at site ``s`` samples the staleness
``latest_global_ts(key) − local_ts(key)`` (see
:mod:`repro.workload.driver`).
"""

from __future__ import annotations

import bisect
import dataclasses
import enum
import math
import random
from typing import List, Optional, Sequence

#: Above this mean, :func:`poisson` switches from Knuth's exact product
#: method (O(mean) uniform draws) to a normal approximation — at that
#: scale the relative error is below 1/sqrt(256) ≈ 6% of a standard
#: deviation, invisible next to sampling noise, and the cost stays O(1)
#: however many million users the rate models.
_POISSON_EXACT_LIMIT = 256.0


def poisson(rng: random.Random, mean: float) -> int:
    """Sample a Poisson(``mean``) count from ``rng``.

    Exact (Knuth's multiplication method) for ``mean`` up to
    :data:`_POISSON_EXACT_LIMIT`; beyond that a rounded
    Normal(mean, sqrt(mean)) clipped at zero.  Deterministic for a
    given ``rng`` state either way.
    """
    if mean < 0:
        raise ValueError("mean must be non-negative")
    if mean == 0:
        return 0
    if mean > _POISSON_EXACT_LIMIT:
        return max(0, round(rng.gauss(mean, math.sqrt(mean))))
    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


class ZipfKeys:
    """Zipf(``s``) popularity over ``key_space`` keys ``key-0..key-N-1``.

    Rank ``r`` (1-based) has weight ``r^-s``; ``s=0`` degenerates to
    the uniform distribution, ``key_space=1`` to a single key.  The CDF
    is precomputed once; :meth:`pick` is a binary search.
    """

    __slots__ = ("key_space", "zipf_s", "cdf")

    def __init__(self, key_space: int, zipf_s: float = 0.0):
        if key_space < 1:
            raise ValueError("key_space must be positive")
        if zipf_s < 0:
            raise ValueError("zipf_s must be non-negative")
        self.key_space = key_space
        self.zipf_s = zipf_s
        weights = [(rank + 1) ** (-zipf_s) for rank in range(key_space)]
        total = sum(weights)
        cumulative = 0.0
        self.cdf: List[float] = []
        for weight in weights:
            cumulative += weight / total
            self.cdf.append(cumulative)

    def key(self, index: int) -> str:
        return f"key-{index}"

    def pick(self, rng: random.Random) -> str:
        index = bisect.bisect_left(self.cdf, rng.random())
        return self.key(min(index, self.key_space - 1))


class OpKind(enum.Enum):
    WRITE = "write"
    READ = "read"
    DELETE = "delete"


@dataclasses.dataclass(frozen=True, slots=True)
class Operation:
    """One client operation, bound to the site the client contacted."""

    kind: OpKind
    site: int
    key: str


@dataclasses.dataclass(frozen=True, slots=True)
class WorkloadConfig:
    """A continuous client workload.

    ``updates_per_cycle`` is the mean of the open-loop Poisson arrival
    process; alternatively give a population (``users`` ×
    ``ops_per_user_per_cycle``) and the aggregate rate is derived.
    Keys are drawn from ``key_space`` names with popularity skew
    ``zipf_s`` (0 = uniform); a ``delete_fraction`` of operations are
    deletions and a ``read_fraction`` are staleness-sampling reads (the
    remainder are writes).
    """

    updates_per_cycle: float = 2.0
    key_space: int = 100
    zipf_s: float = 0.0
    delete_fraction: float = 0.0
    read_fraction: float = 0.0
    users: Optional[int] = None
    ops_per_user_per_cycle: float = 0.001

    def __post_init__(self) -> None:
        if self.updates_per_cycle < 0:
            raise ValueError("updates_per_cycle must be non-negative")
        if self.key_space < 1:
            raise ValueError("key_space must be positive")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be non-negative")
        if not 0.0 <= self.delete_fraction < 1.0:
            raise ValueError("delete_fraction must be in [0, 1)")
        if not 0.0 <= self.read_fraction < 1.0:
            raise ValueError("read_fraction must be in [0, 1)")
        if self.delete_fraction + self.read_fraction >= 1.0:
            raise ValueError("delete_fraction + read_fraction must leave writes")
        if self.users is not None and self.users < 1:
            raise ValueError("users must be positive")
        if self.ops_per_user_per_cycle < 0:
            raise ValueError("ops_per_user_per_cycle must be non-negative")

    @property
    def rate(self) -> float:
        """The aggregate open-loop arrival rate (operations per cycle)."""
        if self.users is not None:
            return self.users * self.ops_per_user_per_cycle
        return self.updates_per_cycle


def _draw_kind(config: WorkloadConfig, rng: random.Random) -> OpKind:
    u = rng.random()
    if u < config.delete_fraction:
        return OpKind.DELETE
    if u < config.delete_fraction + config.read_fraction:
        return OpKind.READ
    return OpKind.WRITE


class OpenLoopGenerator:
    """Poisson arrivals at ``config.rate`` operations per cycle."""

    def __init__(self, config: WorkloadConfig, rng: random.Random):
        self.config = config
        self._rng = rng
        self._keys = ZipfKeys(config.key_space, config.zipf_s)

    def ops_for_cycle(self, cycle: int, sites: Sequence[int]) -> List[Operation]:
        """The operations arriving this cycle, bound to contact sites."""
        if not sites:
            return []
        rng = self._rng
        count = poisson(rng, self.config.rate)
        return [
            Operation(
                kind=_draw_kind(self.config, rng),
                site=rng.choice(sites),
                key=self._keys.pick(rng),
            )
            for __ in range(count)
        ]


@dataclasses.dataclass(frozen=True, slots=True)
class ClientPool:
    """The closed-loop population: who is waiting on whom.

    ``think_time`` is the mean of an exponential pause between a
    completed operation and the client's next one; ``service_time`` is
    how long an operation occupies its slot (one cycle: the contacted
    site applies a write within the cycle it arrives).
    """

    clients: int = 16
    think_time: float = 4.0
    max_outstanding: int = 1
    service_time: float = 1.0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError("clients must be positive")
        if self.think_time < 0:
            raise ValueError("think_time must be non-negative")
        if self.max_outstanding < 1:
            raise ValueError("max_outstanding must be positive")
        if self.service_time <= 0:
            raise ValueError("service_time must be positive")

    @property
    def expected_rate(self) -> float:
        """The closed-loop law: offered operations per cycle."""
        return (
            self.clients
            * self.max_outstanding
            / (self.service_time + self.think_time)
        )


class ClosedLoopGenerator:
    """``clients`` clients, each with bounded outstanding operations.

    Every client owns ``max_outstanding`` slots; a slot issues an
    operation, is busy for ``service_time`` cycles, then thinks for an
    exponential ``think_time`` before issuing again.  Unlike the open
    loop, a slot never has two operations in flight — the offered load
    self-limits.
    """

    def __init__(
        self,
        config: WorkloadConfig,
        pool: ClientPool,
        rng: random.Random,
    ):
        self.config = config
        self.pool = pool
        self._rng = rng
        self._keys = ZipfKeys(config.key_space, config.zipf_s)
        # Slot s becomes ready at _ready[s]; initial phases are spread
        # over one think interval so the pool does not fire in lockstep.
        self._ready: List[float] = [
            self._think(rng) for __ in range(pool.clients * pool.max_outstanding)
        ]

    def _think(self, rng: random.Random) -> float:
        if self.pool.think_time == 0:
            return 0.0
        return rng.expovariate(1.0 / self.pool.think_time)

    def ops_for_cycle(self, cycle: int, sites: Sequence[int]) -> List[Operation]:
        if not sites:
            return []
        rng = self._rng
        now = float(cycle)
        ops: List[Operation] = []
        for slot, ready_at in enumerate(self._ready):
            if ready_at > now:
                continue
            ops.append(
                Operation(
                    kind=_draw_kind(self.config, rng),
                    site=rng.choice(sites),
                    key=self._keys.pick(rng),
                )
            )
            self._ready[slot] = now + self.pool.service_time + self._think(rng)
        return ops
