"""The geo-distributed WAN model: datacenters, latency, bandwidth.

The Clearinghouse ran over "an internetwork connecting several hundred
sites" — machine rooms joined by slow, expensive long-haul links (the
paper's transatlantic *Bushey* link being the famous bottleneck).  This
module models that shape explicitly:

* sites are grouped into named **datacenters**; every datacenter gets a
  gateway node (a pure network element, not a database site) and WAN
  links join the gateways, so every cross-datacenter conversation is
  charged to exactly one labeled WAN link by the existing per-link
  traffic accounting;
* each WAN link has a one-way **latency** (simulated time units) and an
  optional **capacity** (messages per cycle).  Latencies accumulate
  along routed paths and drive :class:`~repro.sim.mailer.MailSystem`
  delivery delays; capacities bound both queued mail (a transmission
  queue inflates delay) and per-cycle anti-entropy conversations (a
  saturated link refuses further exchanges that cycle, pushing gossip
  local — the Section 3 motivation for spatial distributions);
* :meth:`WanNetwork.link_report` attributes measured traffic back to
  the named links, the WAN companion of
  :mod:`repro.analysis.traffic`'s line-topology expectations.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.metrics import Edge, LinkTraffic, canonical_edge
from repro.sim.transport import LinkCapacityLedger
from repro.topology.graph import Topology


@dataclasses.dataclass(frozen=True, slots=True)
class DatacenterSpec:
    """One named datacenter and how many database sites it hosts."""

    name: str
    sites: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("datacenter name must be non-empty")
        if self.sites < 1:
            raise ValueError("a datacenter needs at least one site")


@dataclasses.dataclass(frozen=True, slots=True)
class WanLinkSpec:
    """A long-haul link between two datacenters.

    ``latency`` is the one-way delivery delay in simulated time units
    (cycles); ``capacity`` caps messages per cycle (None = uncapped).
    """

    a: str
    b: str
    latency: float = 1.0
    capacity: Optional[float] = None

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError("a WAN link must join two distinct datacenters")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
        if self.capacity is not None and self.capacity <= 0:
            raise ValueError("capacity must be positive when set")

    @property
    def name(self) -> str:
        return link_name(self.a, self.b)


def link_name(a: str, b: str) -> str:
    """The canonical display name of a WAN link (order-independent)."""
    lo, hi = sorted((a, b))
    return f"wan:{lo}<->{hi}"


@dataclasses.dataclass(frozen=True)
class WanConfig:
    """A multi-datacenter deployment: datacenters plus the WAN mesh."""

    datacenters: Tuple[DatacenterSpec, ...]
    links: Tuple[WanLinkSpec, ...]
    intra_dc_latency: float = 0.1

    def __post_init__(self) -> None:
        names = [dc.name for dc in self.datacenters]
        if len(names) != len(set(names)):
            raise ValueError("datacenter names must be unique")
        if len(names) < 2:
            raise ValueError("a WAN needs at least two datacenters")
        if self.intra_dc_latency < 0:
            raise ValueError("intra_dc_latency must be non-negative")
        known = set(names)
        seen: set = set()
        for link in self.links:
            if link.a not in known or link.b not in known:
                raise ValueError(f"link {link.name} names an unknown datacenter")
            if link.name in seen:
                raise ValueError(f"duplicate link {link.name}")
            seen.add(link.name)

    @property
    def site_count(self) -> int:
        return sum(dc.sites for dc in self.datacenters)


def three_datacenters(
    sites_per_dc: Sequence[int] = (10, 10, 10),
    capacity: Optional[float] = 64.0,
) -> WanConfig:
    """The stock 3-datacenter deployment used by the bench and CLI:
    a US/EU/AP triangle with asymmetric latencies and capped links."""
    if len(sites_per_dc) != 3:
        raise ValueError("three_datacenters needs exactly three site counts")
    us, eu, ap = sites_per_dc
    return WanConfig(
        datacenters=(
            DatacenterSpec("us-east", us),
            DatacenterSpec("eu-west", eu),
            DatacenterSpec("ap-south", ap),
        ),
        links=(
            WanLinkSpec("us-east", "eu-west", latency=1.0, capacity=capacity),
            WanLinkSpec("eu-west", "ap-south", latency=2.0, capacity=capacity),
            WanLinkSpec("us-east", "ap-south", latency=2.5, capacity=capacity),
        ),
        intra_dc_latency=0.1,
    )


class WanNetwork:
    """A :class:`WanConfig` realized as a routed topology plus delays.

    Site ids run ``0..N-1`` in datacenter order; each datacenter ``d``
    gets one gateway node (id ``N + index(d)``, not a site).  Every
    site connects to its gateway, gateways connect per the link specs,
    and each WAN edge is labeled with :func:`link_name` so traffic
    reports read like an ops dashboard.
    """

    def __init__(self, config: WanConfig):
        self.config = config
        self.topology = Topology()
        self._dc_of_site: Dict[int, str] = {}
        self._sites_of_dc: Dict[str, List[int]] = {}
        self._gateway_of_dc: Dict[str, int] = {}
        next_site = 0
        for dc in config.datacenters:
            ids = list(range(next_site, next_site + dc.sites))
            next_site += dc.sites
            self._sites_of_dc[dc.name] = ids
            for site_id in ids:
                self.topology.add_node(site_id, site=True)
                self._dc_of_site[site_id] = dc.name
        for index, dc in enumerate(config.datacenters):
            gateway = next_site + index
            self._gateway_of_dc[dc.name] = gateway
            self.topology.add_node(gateway, site=False)
            for site_id in self._sites_of_dc[dc.name]:
                self.topology.add_edge(site_id, gateway)
        # Per-edge latency: half the intra-DC latency per site<->gateway
        # hop (so intra-DC site-to-site pays the full intra latency) and
        # the spec latency per WAN edge.
        self._edge_latency: Dict[Edge, float] = {}
        half_intra = config.intra_dc_latency / 2.0
        for edge in self.topology.edges:
            self._edge_latency[edge] = half_intra
        self._wan_edges: Dict[str, Edge] = {}
        self._capacity: Dict[Edge, float] = {}
        for link in config.links:
            edge = self.topology.add_edge(
                self._gateway_of_dc[link.a],
                self._gateway_of_dc[link.b],
                label=link.name,
            )
            self._wan_edges[link.name] = edge
            self._edge_latency[edge] = link.latency
            if link.capacity is not None:
                self._capacity[edge] = link.capacity
        self.topology.validate()
        self.ledger = LinkCapacityLedger(self._capacity)
        # Transmission-queue state for capped links: the time each link
        # is next free, in simulated time.
        self._next_free: Dict[Edge, float] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def site_count(self) -> int:
        return self.config.site_count

    @property
    def site_ids(self) -> List[int]:
        return list(range(self.site_count))

    @property
    def datacenter_names(self) -> List[str]:
        return [dc.name for dc in self.config.datacenters]

    @property
    def wan_edges(self) -> Dict[str, Edge]:
        return dict(self._wan_edges)

    def dc_of(self, site_id: int) -> str:
        return self._dc_of_site[site_id]

    def sites_of(self, dc: str) -> List[int]:
        return list(self._sites_of_dc[dc])

    def gateway_of(self, dc: str) -> int:
        return self._gateway_of_dc[dc]

    # ------------------------------------------------------------------
    # Delays (mailer integration: the MailSystem delay-model protocol)
    # ------------------------------------------------------------------

    def latency(self, source: int, destination: int) -> float:
        """Propagation latency along the routed path, queuing excluded."""
        if source == destination:
            return 0.0
        return sum(
            self._edge_latency[edge]
            for edge in self.topology.path_edges(source, destination)
        )

    def delay(
        self, source: int, destination: int, now: float, size: float = 1.0
    ) -> float:
        """Delivery delay for a message posted at ``now``.

        Path latency plus, on every capacity-capped WAN edge en route,
        a deterministic transmission queue: each message occupies the
        link for ``size / capacity`` time units, and a message finding
        the link busy waits for it.
        """
        delay = self.latency(source, destination)
        if self._capacity:
            for edge in self.topology.path_edges(source, destination):
                capacity = self._capacity.get(edge)
                if capacity is None:
                    continue
                transmission = size / capacity
                start = max(now, self._next_free.get(edge, 0.0))
                self._next_free[edge] = start + transmission
                delay += (start - now) + transmission
        return delay

    # ------------------------------------------------------------------
    # Per-cycle conversation admission (transport integration)
    # ------------------------------------------------------------------

    def reset_cycle(self) -> None:
        """Open a fresh per-cycle budget on every capped link."""
        self.ledger.reset()

    def conversation_allowed(self, a: int, b: int) -> bool:
        """Whether a conversation between two sites fits this cycle's
        WAN budgets (always true intra-DC and on uncapped links)."""
        if not self._capacity:
            return True
        return self.ledger.would_admit(self.topology.path_edges(a, b))

    def note_conversation(self, a: int, b: int) -> None:
        self.ledger.charge(self.topology.path_edges(a, b))

    def note_updates(self, source: int, destination: int, count: float) -> None:
        if count > 0:
            self.ledger.charge(
                self.topology.path_edges(source, destination), count
            )

    # ------------------------------------------------------------------
    # Traffic attribution
    # ------------------------------------------------------------------

    def link_report(self, traffic: LinkTraffic) -> List[Dict[str, object]]:
        """Measured traffic per named WAN link, plus intra-DC rollups.

        The WAN rows read counts straight off the labeled gateway
        edges; the ``intra:<dc>`` rows sum the site<->gateway edges of
        each datacenter.
        """
        rows: List[Dict[str, object]] = []
        for name in sorted(self._wan_edges):
            edge = self._wan_edges[name]
            rows.append(
                {
                    "link": name,
                    "conversations": round(traffic.compare.on_link(*edge), 3),
                    "updates": round(traffic.update.on_link(*edge), 3),
                    "useful_updates": round(
                        traffic.useful_update.on_link(*edge), 3
                    ),
                }
            )
        for dc in self.datacenter_names:
            gateway = self._gateway_of_dc[dc]
            conversations = updates = useful = 0.0
            for site_id in self._sites_of_dc[dc]:
                edge = canonical_edge(site_id, gateway)
                conversations += traffic.compare.on_link(*edge)
                updates += traffic.update.on_link(*edge)
                useful += traffic.useful_update.on_link(*edge)
            rows.append(
                {
                    "link": f"intra:{dc}",
                    "conversations": round(conversations, 3),
                    "updates": round(updates, 3),
                    "useful_updates": round(useful, 3),
                }
            )
        return rows
