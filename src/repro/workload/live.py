"""A load generator for the live runtime: real sockets, same curves.

:func:`run_live_workload` is the live half of
``python -m repro workload``: it boots a :class:`~repro.net.runner.
LiveCluster` of :class:`~repro.net.node.GossipNode` processes on
localhost TCP, plays open-loop Poisson client traffic against them over
the wire — writes and deletes as ``MAIL`` injections, reads as the
``{"read": key}`` wire form — and reports the same
``repro-workload/1`` schema the simulator harness
(:mod:`repro.workload.steady`) produces, with seconds where the sim
reports cycles.  That shared schema is the point: a sim curve and a
live curve for the same mix can be laid on one plot.

Live measurement specifics:

* **the oracle** — every write/delete ack carries the timestamp the
  node stamped, so the generator knows the globally latest timestamp
  per key without any backdoor into node state;
* **staleness** — a read at node ``s`` fetches that node's entry
  timestamp over the wire and samples
  ``latest_global_ts(key) − local_ts(key)`` in seconds (a node holding
  no version counts as a ``read_miss``);
* **traffic** — nodes are assigned to named datacenters (contiguous
  blocks over the roster) and a bus sink attributes every
  ``exchange-settled`` / ``rumor-sent`` event to the ``wan:*`` or
  ``intra:*`` link between the two parties' datacenters.  Unlike the
  simulator there are no gateway hops, so a cross-datacenter
  conversation counts once rather than once per routed edge.
"""

from __future__ import annotations

import asyncio
import dataclasses
import random
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.serialize import decode_timestamp
from repro.core.timestamps import Timestamp
from repro.net.node import NodeConfig
from repro.net.runner import LiveCluster
from repro.obs.events import EventBus, EventKind
from repro.sim.rng import derive_seed
from repro.workload.generators import (
    OpenLoopGenerator,
    Operation,
    OpKind,
    WorkloadConfig,
)
from repro.workload.geo import link_name
from repro.workload.stats import ReservoirSample, WindowSeries
from repro.workload.steady import build_report

#: Datacenter labels used when the caller does not supply any; three
#: names so a 3-node smoke run exercises every cross-DC link.
DEFAULT_DATACENTERS: Tuple[str, ...] = ("us-east", "eu-west", "ap-south")

#: Residue probes per window are wire round-trips; cap the key sample.
_RESIDUE_KEY_CAP = 8


@dataclasses.dataclass(frozen=True)
class LiveWorkloadConfig:
    """One live load-generation run."""

    workload: WorkloadConfig = WorkloadConfig(updates_per_cycle=20.0)
    nodes: int = 3
    duration: float = 4.0            # seconds of sustained injection
    tick: float = 0.1                # generator wakeup interval (seconds)
    window: float = 1.0              # curve-point width (seconds)
    seed: int = 0
    datacenters: Tuple[str, ...] = DEFAULT_DATACENTERS
    node_config: NodeConfig = NodeConfig()
    quiesce_timeout: float = 20.0    # post-run convergence wait (seconds)

    def __post_init__(self) -> None:
        if self.nodes < 2:
            raise ValueError("need at least two nodes")
        if self.duration <= 0 or self.tick <= 0 or self.window <= 0:
            raise ValueError("duration, tick and window must be positive")
        if self.tick > self.duration:
            raise ValueError("tick must not exceed duration")
        if not self.datacenters:
            raise ValueError("need at least one datacenter name")

    @property
    def rate_per_second(self) -> float:
        """Target operation rate; ``workload.rate`` is ops per second
        here (per cycle in the simulator — the tick loop rescales)."""
        return self.workload.rate


def assign_datacenters(
    node_ids: Sequence[int], names: Sequence[str]
) -> Dict[int, str]:
    """Contiguous-block node→datacenter assignment, like the sim's
    :class:`~repro.workload.geo.WanNetwork` numbers its sites."""
    ordered = sorted(node_ids)
    count = len(ordered)
    used = min(len(names), count)
    return {
        node_id: names[index * used // count]
        for index, node_id in enumerate(ordered)
    }


class LiveTrafficTap:
    """EventBus sink attributing gossip events to datacenter links.

    ``exchange-settled`` events (anti-entropy conversations) carry
    ``shipped``/``received`` — both directions needed by the receiver,
    so they count as useful updates too.  ``rumor-sent`` pushes carry
    ``shipped`` but may be redundant at the receiver, so they count
    toward ``updates`` only.
    """

    def __init__(self, dc_of: Dict[int, str]):
        self.dc_of = dc_of
        self.conversations: Dict[str, float] = {}
        self.updates: Dict[str, float] = {}
        self.useful: Dict[str, float] = {}

    def _link(self, a: int, b: int) -> Optional[str]:
        dc_a = self.dc_of.get(a)
        dc_b = self.dc_of.get(b)
        if dc_a is None or dc_b is None:
            return None  # a client or an unknown node: not link traffic
        if dc_a == dc_b:
            return f"intra:{dc_a}"
        return link_name(dc_a, dc_b)

    def __call__(self, event) -> None:
        kind = event.kind
        if kind is EventKind.EXCHANGE_SETTLED:
            link = self._link(event.node, event.payload.get("partner", -1))
            if link is None:
                return
            moved = float(
                event.payload.get("shipped", 0) + event.payload.get("received", 0)
            )
            self.conversations[link] = self.conversations.get(link, 0.0) + 1.0
            self.updates[link] = self.updates.get(link, 0.0) + moved
            self.useful[link] = self.useful.get(link, 0.0) + moved
        elif kind is EventKind.RUMOR_SENT:
            link = self._link(event.node, event.payload.get("partner", -1))
            if link is None:
                return
            self.conversations[link] = self.conversations.get(link, 0.0) + 1.0
            self.updates[link] = self.updates.get(link, 0.0) + float(
                event.payload.get("shipped", 0)
            )

    def summary(self, datacenters: Sequence[str]) -> Dict[str, Any]:
        """The same shape :func:`repro.analysis.traffic.wan_traffic_summary`
        builds for the simulator."""
        names = [name for name in datacenters if name]
        links: List[Dict[str, Any]] = []
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                link = link_name(a, b)
                links.append(self._row(link))
        for name in names:
            links.append(self._row(f"intra:{name}"))
        wan_conversations = sum(
            row["conversations"]
            for row in links
            if str(row["link"]).startswith("wan:")
        )
        total = sum(self.conversations.values())
        wan_rows = [row for row in links if str(row["link"]).startswith("wan:")]
        busiest = max(
            wan_rows, key=lambda row: row["conversations"], default=None
        )
        return {
            "links": links,
            "wan_conversations": round(wan_conversations, 3),
            "wan_share": round(wan_conversations / total if total else 0.0, 4),
            "busiest_wan_link": None if busiest is None else busiest["link"],
        }

    def _row(self, link: str) -> Dict[str, Any]:
        return {
            "link": link,
            "conversations": round(self.conversations.get(link, 0.0), 3),
            "updates": round(self.updates.get(link, 0.0), 3),
            "useful_updates": round(self.useful.get(link, 0.0), 3),
        }


class _LiveOracle:
    """Latest-known global timestamp per key, from injection acks."""

    def __init__(self) -> None:
        self.latest: Dict[str, Timestamp] = {}

    def note(self, key: str, payload: Dict[str, Any]) -> None:
        encoded = payload.get("timestamp")
        if encoded is None:
            return
        stamp = decode_timestamp(encoded)
        current = self.latest.get(key)
        if current is None or stamp > current:
            self.latest[key] = stamp


async def run_live_workload(
    config: LiveWorkloadConfig,
    bus: Optional[EventBus] = None,
) -> Dict[str, Any]:
    """Drive generated traffic at a live cluster; returns the report."""
    bus = bus if bus is not None else EventBus()
    cluster = await LiveCluster.launch(
        config.nodes, config.node_config, bus=bus
    )
    dc_of = assign_datacenters(list(cluster.nodes), config.datacenters)
    tap = LiveTrafficTap(dc_of)
    bus.add_sink(tap)
    # One generator "cycle" is one tick; rescale the per-second rate.
    tick_config = dataclasses.replace(
        config.workload,
        updates_per_cycle=max(
            config.rate_per_second * config.tick, 1e-9
        ),
        users=None,
    )
    rng = random.Random(derive_seed(config.seed, "live-workload"))
    generator = OpenLoopGenerator(tick_config, rng)
    oracle = _LiveOracle()
    staleness = ReservoirSample(
        rng=random.Random(derive_seed(config.seed, "live-workload", "staleness"))
    )
    series = WindowSeries(config.window)
    counts = {"writes": 0, "reads": 0, "deletes": 0, "read_misses": 0}
    sequence = 0

    async def residue() -> float:
        keys = sorted(oracle.latest)
        if not keys:
            return 0.0
        stride = max(1, len(keys) // _RESIDUE_KEY_CAP)
        sampled = keys[::stride][:_RESIDUE_KEY_CAP]
        node_ids = sorted(cluster.nodes)
        stale = 0
        for key in sampled:
            latest = oracle.latest[key]
            for node_id in node_ids:
                view = await cluster.read(node_id, key)
                encoded = view.get("timestamp")
                if not view.get("found") or encoded is None:
                    stale += 1
                elif decode_timestamp(encoded) < latest:
                    stale += 1
        return stale / (len(sampled) * len(node_ids))

    async def apply(op: Operation) -> None:
        nonlocal sequence
        if op.kind is OpKind.DELETE:
            reply = await cluster.delete_key(op.site, op.key)
            oracle.note(op.key, reply.payload)
            counts["deletes"] += 1
        elif op.kind is OpKind.READ:
            counts["reads"] += 1
            latest = oracle.latest.get(op.key)
            if latest is None:
                return  # never written: staleness undefined
            view = await cluster.read(op.site, op.key)
            encoded = view.get("timestamp")
            if not view.get("found") or encoded is None:
                counts["read_misses"] += 1
                return
            lag = max(0.0, latest.time - decode_timestamp(encoded).time)
            staleness.add(lag)
            series.note_staleness(lag)
        else:
            sequence += 1
            reply = await cluster.inject(op.site, op.key, f"value-{sequence}")
            oracle.note(op.key, reply.payload)
            counts["writes"] += 1

    operations = 0
    started = time.monotonic()
    windows_closed = 0
    tick_index = 0
    try:
        while True:
            elapsed = time.monotonic() - started
            if elapsed >= config.duration:
                break
            node_ids = sorted(cluster.nodes)
            ops = generator.ops_for_cycle(tick_index, node_ids)
            tick_index += 1
            for op in ops:
                await apply(op)
            operations += len(ops)
            series.note_ops(len(ops))
            elapsed = time.monotonic() - started
            while elapsed >= (windows_closed + 1) * config.window:
                windows_closed += 1
                series.close_window(
                    t=round(windows_closed * config.window, 6),
                    residue=await residue(),
                )
            sleep_for = (tick_index * config.tick) - (
                time.monotonic() - started
            )
            if sleep_for > 0:
                await asyncio.sleep(sleep_for)
        injection_wall = time.monotonic() - started
        # Quiesce: stop injecting; gossip must still converge the stores.
        converged = await cluster.wait_converged(
            timeout=config.quiesce_timeout
        )
        if series.open_samples:
            series.close_window(
                t=round(injection_wall, 6), residue=await residue()
            )
    finally:
        bus.remove_sink(tap)
        await cluster.stop()
    return build_report(
        runtime="live",
        unit="seconds",
        n=config.nodes,
        duration=injection_wall,
        ops={
            "total": operations,
            "writes": counts["writes"],
            "reads": counts["reads"],
            "deletes": counts["deletes"],
            "read_misses": counts["read_misses"],
        },
        staleness=staleness.summary(),
        traffic=tap.summary(config.datacenters),
        curves=series.to_dict(),
        converged_after_quiesce=converged,
    )


def run_live_workload_sync(
    config: LiveWorkloadConfig, bus: Optional[EventBus] = None
) -> Dict[str, Any]:
    """Synchronous wrapper for the CLI."""
    return asyncio.run(run_live_workload(config, bus=bus))
