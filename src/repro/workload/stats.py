"""Steady-state measurement: staleness distributions and curve series.

A sustained workload is summarized by a handful of observables —
throughput, read-staleness percentiles, residue over time, per-link
traffic — sampled both as running totals and as per-window curve
points.  The staleness distribution is kept as a bounded reservoir
(Vitter's Algorithm R, driven by the workload RNG so runs stay
deterministic under a seed) plus exact count/sum/max, so percentile
estimates cost O(capacity) memory however long the run.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Dict, List, Optional, Sequence


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of an already sorted sample, by linear
    interpolation between closest ranks.  Empty input returns 0.0."""
    if not sorted_values:
        return 0.0
    if q <= 0:
        return float(sorted_values[0])
    if q >= 1:
        return float(sorted_values[-1])
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return float(
        sorted_values[low] * (1.0 - fraction) + sorted_values[high] * fraction
    )


class ReservoirSample:
    """A fixed-capacity uniform sample of an unbounded stream."""

    __slots__ = ("capacity", "count", "total", "maximum", "_rng", "_sample")

    def __init__(self, capacity: int = 8192, rng: Optional[random.Random] = None):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.maximum = 0.0
        self._rng = rng if rng is not None else random.Random(0)
        self._sample: List[float] = []

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value
        if len(self._sample) < self.capacity:
            self._sample.append(value)
            return
        slot = self._rng.randrange(self.count)
        if slot < self.capacity:
            self._sample[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        return percentile(sorted(self._sample), q)

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean": round(self.mean, 6),
            "p50": round(self.percentile(0.50), 6),
            "p99": round(self.percentile(0.99), 6),
            "max": round(self.maximum, 6),
        }


@dataclasses.dataclass(slots=True)
class WindowPoint:
    """One curve sample: the state of the run over one window."""

    t: float                      # window end (cycles in sim, seconds live)
    ops: int                      # operations injected in the window
    throughput: float             # ops per time unit over the window
    staleness_p50: float          # over reads sampled in the window
    staleness_p99: float
    residue: float                # stale (site, key) fraction at window end

    def to_dict(self) -> Dict[str, Any]:
        return {
            "t": round(self.t, 6),
            "ops": self.ops,
            "throughput": round(self.throughput, 6),
            "staleness_p50": round(self.staleness_p50, 6),
            "staleness_p99": round(self.staleness_p99, 6),
            "residue": round(self.residue, 6),
        }


class WindowSeries:
    """Accumulates per-window curve points for the steady-state report."""

    __slots__ = ("window", "points", "_ops", "_staleness")

    def __init__(self, window: float):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.points: List[WindowPoint] = []
        self._ops = 0
        self._staleness: List[float] = []

    def note_ops(self, count: int) -> None:
        self._ops += count

    def note_staleness(self, value: float) -> None:
        self._staleness.append(value)

    @property
    def open_samples(self) -> bool:
        """Whether the current (unclosed) window holds any data."""
        return self._ops > 0 or bool(self._staleness)

    def close_window(self, t: float, residue: float) -> WindowPoint:
        """Seal the current window at time ``t`` and start the next."""
        stale = sorted(self._staleness)
        point = WindowPoint(
            t=t,
            ops=self._ops,
            throughput=self._ops / self.window,
            staleness_p50=percentile(stale, 0.50),
            staleness_p99=percentile(stale, 0.99),
            residue=residue,
        )
        self.points.append(point)
        self._ops = 0
        self._staleness = []
        return point

    def to_dict(self) -> Dict[str, Any]:
        return {
            "window": self.window,
            "points": [point.to_dict() for point in self.points],
        }
