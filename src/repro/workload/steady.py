"""Steady-state measurement runs: sustained traffic, curve outputs.

:func:`run_steady_state` is the simulator half of
``python -m repro workload``: it builds a cluster (uniform, or a
:class:`~repro.workload.geo.WanNetwork` deployment), attaches
anti-entropy (plus direct mail when asked — whose deliveries then pay
WAN latency and queue behind bandwidth caps), drives a
:class:`~repro.workload.driver.WorkloadDriver` for ``cycles`` cycles,
and reports the steady-state observables:

* **throughput** (operations per cycle) and the op mix that was played;
* **read staleness** percentiles (p50/p99), in cycles;
* **traffic per link**, attributed to named WAN links when a geo model
  is present;
* per-window **curves** (throughput, staleness, residue over time);
* whether the cluster still converges once injection stops (the
  quiesce check every sustained-load study in this repo ends with).

The report dict uses the ``repro-workload/1`` schema — the exact same
keys the live harness (:mod:`repro.workload.live`) produces, so sim
and live curves are directly comparable; only the time unit differs
(cycles vs seconds).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional

from repro.analysis.traffic import wan_traffic_summary
from repro.cluster.cluster import Cluster
from repro.obs.events import HARNESS_NODE, EventBus, EventKind
from repro.obs.metrics import MetricsRegistry, linear_buckets
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.base import ExchangeMode
from repro.protocols.direct_mail import DirectMailProtocol
from repro.protocols.exchange import ChecksumWithRecent, FullCompare
from repro.sim.mailer import MailSystem
from repro.sim.rng import derive_seed
from repro.workload.driver import WorkloadDriver
from repro.workload.generators import ClientPool, WorkloadConfig
from repro.workload.geo import WanConfig, WanNetwork
from repro.workload.stats import WindowSeries

#: Report schema identifier shared by the sim and live harnesses.
SCHEMA = "repro-workload/1"


@dataclasses.dataclass(frozen=True)
class SteadyStateConfig:
    """One steady-state run: the traffic, the deployment, the length."""

    workload: WorkloadConfig = WorkloadConfig()
    n: int = 24                       # uniform-network size (ignored with wan)
    wan: Optional[WanConfig] = None   # geo deployment instead of uniform
    cycles: int = 60
    window: int = 5
    seed: int = 0
    pool: Optional[ClientPool] = None  # closed-loop when set, open-loop else
    direct_mail: bool = False          # timely distribution over the mailer
    strategy: str = "full"             # "full" | "checksum"
    tau: float = 10.0                  # recent-update window for "checksum"
    quiesce_cycles: int = 200

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ValueError("cycles must be positive")
        if self.window < 1 or self.window > self.cycles:
            raise ValueError("window must be in [1, cycles]")
        if self.n < 2 and self.wan is None:
            raise ValueError("need at least two sites")
        if self.strategy not in ("full", "checksum"):
            raise ValueError("strategy must be 'full' or 'checksum'")


def _exchange_strategy(config: SteadyStateConfig):
    if config.strategy == "checksum":
        return ChecksumWithRecent(tau=config.tau)
    return FullCompare()


def build_report(
    runtime: str,
    unit: str,
    n: int,
    duration: float,
    ops: Dict[str, int],
    staleness: Dict[str, Any],
    traffic: Dict[str, Any],
    curves: Dict[str, Any],
    converged_after_quiesce: bool,
) -> Dict[str, Any]:
    """Assemble the shared ``repro-workload/1`` report shape.

    Both harnesses funnel through this one function so the sim and
    live reports cannot drift apart structurally.
    """
    throughput = ops["total"] / duration if duration > 0 else 0.0
    return {
        "schema": SCHEMA,
        "runtime": runtime,
        "unit": unit,
        "n": n,
        "duration": round(duration, 6),
        "ops": ops,
        "throughput": {
            "mean": round(throughput, 6),
            "unit": f"ops/{'cycle' if unit == 'cycles' else 'second'}",
        },
        "staleness": {"unit": unit, **staleness},
        "traffic": traffic,
        "curves": curves,
        "converged_after_quiesce": converged_after_quiesce,
    }


def empty_traffic_summary() -> Dict[str, Any]:
    """The traffic block for deployments without routed links."""
    return {
        "links": [],
        "wan_conversations": 0.0,
        "wan_share": 0.0,
        "busiest_wan_link": None,
    }


def run_steady_state(
    config: SteadyStateConfig,
    bus: Optional[EventBus] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, Any]:
    """Run one steady-state simulation; returns the report dict."""
    wan_net: Optional[WanNetwork] = None
    seed = derive_seed(config.seed, "steady-state")
    if config.wan is not None:
        wan_net = WanNetwork(config.wan)
        cluster = Cluster(topology=wan_net.topology, seed=seed, bus=bus)
        cluster.attach_wan(wan_net)
    else:
        cluster = Cluster(n=config.n, seed=seed, bus=bus)
    cluster.add_protocol(
        AntiEntropyProtocol(
            config=AntiEntropyConfig(
                mode=ExchangeMode.PUSH_PULL, synchronous=False
            ),
            strategy=_exchange_strategy(config),
        )
    )
    if config.direct_mail:
        cluster.add_protocol(
            DirectMailProtocol(
                mail=MailSystem(
                    cluster.simulator,
                    cluster.rng,
                    latency=wan_net if wan_net is not None else 1.0,
                )
            )
        )
    driver = WorkloadDriver(
        cluster, config.workload, seed=config.seed, pool=config.pool
    )
    series = WindowSeries(float(config.window))
    registry = metrics if metrics is not None else MetricsRegistry()
    ops_counter = registry.counter(
        "repro_workload_ops_total", "Client operations injected", labels=("kind",)
    )
    staleness_histogram = registry.histogram(
        "repro_workload_read_staleness",
        "Read staleness in cycles",
        buckets=linear_buckets(0.0, 2.0, 12),
    )

    def _staleness_sink(value: float) -> None:
        series.note_staleness(value)
        staleness_histogram.observe(value)

    driver.on_staleness(_staleness_sink)
    last = {"write": 0, "read": 0, "delete": 0}
    for cycle_index in range(config.cycles):
        count = driver.inject_one_cycle()
        series.note_ops(count)
        for kind, total in (
            ("write", driver.writes),
            ("read", driver.reads),
            ("delete", driver.deletes),
        ):
            ops_counter.inc(total - last[kind], kind=kind)
            last[kind] = total
        cluster.run_cycle()
        if (cycle_index + 1) % config.window == 0:
            point = series.close_window(
                t=float(cluster.cycle), residue=driver.residue()
            )
            if cluster.bus.has_sinks:
                cluster.bus.emit(
                    EventKind.WORKLOAD_WINDOW,
                    node=HARNESS_NODE,
                    **point.to_dict(),
                )
    # Quiesce: stop injecting and confirm the epidemics still converge.
    converged = True
    try:
        cluster.run_until(cluster.converged, max_cycles=config.quiesce_cycles)
    except RuntimeError:
        converged = False
    if wan_net is not None:
        traffic = wan_traffic_summary(wan_net, cluster.traffic)
    else:
        traffic = empty_traffic_summary()
    return build_report(
        runtime="sim",
        unit="cycles",
        n=cluster.n,
        duration=float(config.cycles),
        ops={
            "total": driver.operations,
            "writes": driver.writes,
            "reads": driver.reads,
            "deletes": driver.deletes,
            "read_misses": driver.read_misses,
        },
        staleness=driver.staleness.summary(),
        traffic=traffic,
        curves=series.to_dict(),
        converged_after_quiesce=converged,
    )


def summary_lines(report: Dict[str, Any]) -> List[str]:
    """A human rendering of one ``repro-workload/1`` report."""
    throughput = report["throughput"]
    staleness = report["staleness"]
    lines = [
        f"{report['runtime']}: n={report['n']} duration={report['duration']:g} "
        f"{report['unit']}",
        f"  ops: {report['ops']['total']} "
        f"(writes={report['ops']['writes']} reads={report['ops']['reads']} "
        f"deletes={report['ops']['deletes']} misses={report['ops']['read_misses']})",
        f"  throughput: {throughput['mean']:g} {throughput['unit']}",
        f"  staleness: p50={staleness['p50']:g} p99={staleness['p99']:g} "
        f"max={staleness['max']:g} {staleness['unit']} "
        f"({staleness['count']} reads sampled)",
        f"  converged after quiesce: {report['converged_after_quiesce']}",
    ]
    links = report["traffic"]["links"]
    if links:
        lines.append(
            f"  wan share: {report['traffic']['wan_share']:.1%} "
            f"(busiest {report['traffic']['busiest_wan_link']})"
        )
        for row in links:
            lines.append(
                f"    {row['link']:<24} conversations={row['conversations']:g} "
                f"updates={row['updates']:g}"
            )
    return lines
