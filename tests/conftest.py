"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.store import ReplicaStore
from repro.core.timestamps import SequenceClock, Timestamp


@pytest.fixture
def store() -> ReplicaStore:
    """A store for site 0 with a deterministic sequence clock."""
    return ReplicaStore(site_id=0, clock=SequenceClock(site=0))


def make_store(site_id: int, start: float = 0.0) -> ReplicaStore:
    return ReplicaStore(site_id=site_id, clock=SequenceClock(site=site_id, start=start))


def ts(time: float, site: int = 0, seq: int = 0) -> Timestamp:
    return Timestamp(time=time, site=site, sequence=seq)
