"""The Sarin & Lynch-style acknowledgment GC baseline (Section 2)."""

from repro.cluster.cluster import Cluster
from repro.protocols.ackgc import AckBasedCertificateGC
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.base import ExchangeMode


def ack_cluster(n=12, seed=0):
    cluster = Cluster(n=n, seed=seed)
    cluster.add_protocol(
        AntiEntropyProtocol(config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL))
    )
    gc = AckBasedCertificateGC()
    cluster.add_protocol(gc)
    return cluster, gc


class TestHappyPath:
    def test_certificate_discarded_once_everyone_holds_it(self):
        cluster, gc = ack_cluster(seed=1)
        cluster.inject_update(0, "x", "v")
        cluster.run_until(cluster.converged, max_cycles=40)
        cluster.inject_delete(0, "x")
        cluster.run_until(
            lambda: gc.certificates_held() == 0, max_cycles=100
        )
        # At least one site independently determined completion; the
        # rest learned it by gossip.  Nobody holds the certificate and
        # the metadata is fully reclaimed.
        assert gc.stats.discarded >= 1
        assert gc.metadata_size() == 0
        assert all(cluster.sites[s].store.get("x") is None for s in cluster.site_ids)
        assert all(
            cluster.sites[s].store.entry("x") is None for s in cluster.site_ids
        )

    def test_not_discarded_before_full_coverage(self):
        cluster, gc = ack_cluster(seed=2)
        update = cluster.inject_delete(0, "x")
        # Immediately after injection only site 0 holds it.
        cluster.run_cycle()
        remaining = gc.certificates_held()
        assert remaining >= 1
        # No site may discard while somebody's ack is missing.
        missing = gc.is_blocked_on("x", update.timestamp)
        if missing:
            assert remaining > 0

    def test_metadata_is_order_n_per_certificate(self):
        cluster, gc = ack_cluster(n=10, seed=3)
        cluster.inject_delete(0, "x")
        peak = 0
        for __ in range(10):
            cluster.run_cycle()
            peak = max(peak, gc.metadata_size())
        # While the determination is in flight, up to 10 sites each
        # track up to 10 holders: the O(n^2) structure the paper
        # criticizes.
        assert peak > 10
        assert gc.stats.ack_entries_sent > 0


class TestPaperCriticism:
    def test_one_down_site_blocks_gc_forever(self):
        """The paper's objection: a site down for 'hours or even days'
        prevents the determination from completing."""
        cluster, gc = ack_cluster(seed=4)
        cluster.sites[11].up = False
        cluster.inject_delete(0, "x")
        cluster.run_cycles(40)
        # The up sites all hold the certificate but cannot discard it.
        assert gc.certificates_held() == 11
        assert gc.stats.discarded == 0
        assert 11 in gc.is_blocked_on("x", cluster.sites[0].store.entry("x").timestamp)
        # When the site finally returns, GC completes.
        cluster.sites[11].up = True
        cluster.run_until(lambda: gc.certificates_held() == 0, max_cycles=100)

    def test_certificates_pile_up_while_blocked(self):
        cluster, gc = ack_cluster(seed=5)
        cluster.sites[11].up = False
        for i in range(8):
            cluster.inject_update(i, f"k{i}", i)
        cluster.run_until(
            lambda: cluster.converged(cluster.up_site_ids()), max_cycles=60
        )
        for i in range(8):
            cluster.inject_delete(i, f"k{i}")
        cluster.run_cycles(30)
        # 8 certificates x 11 up sites, none discardable.
        assert gc.certificates_held() == 88
        assert gc.stats.discarded == 0

    def test_dormant_scheme_storage_stays_bounded_in_same_scenario(self):
        """The contrast the paper draws: fixed-threshold + dormancy
        keeps storage bounded even with a site down."""
        from repro.protocols.deathcerts import (
            CertificatePolicy,
            DeathCertificateManager,
        )

        cluster = Cluster(n=12, seed=5)
        cluster.add_protocol(
            AntiEntropyProtocol(
                config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL)
            )
        )
        manager = DeathCertificateManager(CertificatePolicy(tau1=8.0, tau2=500.0))
        cluster.add_protocol(manager)
        cluster.sites[11].up = False
        for i in range(8):
            cluster.inject_update(i, f"k{i}", i)
        cluster.run_until(
            lambda: cluster.converged(cluster.up_site_ids()), max_cycles=60
        )
        for i in range(8):
            cluster.inject_delete(i, f"k{i}", retention_count=3)
        cluster.run_cycles(30)
        census = manager.certificate_census()
        # Active certificates all expired; only dormant copies remain.
        assert census["active"] == 0
        assert census["dormant"] <= 8 * 3


class TestMembership:
    def test_membership_change_updates_requirement(self):
        cluster, gc = ack_cluster(seed=6)
        cluster.sites[11].up = False
        cluster.inject_delete(0, "x")
        cluster.run_cycles(20)
        assert gc.stats.discarded == 0
        # Removing the dead site from the replica set unblocks GC —
        # exactly the site-removal protocol Sarin & Lynch require.
        cluster.remove_site(11)
        cluster.run_until(lambda: gc.certificates_held() == 0, max_cycles=60)
