"""The doubly-linked activity order (Section 1.5)."""

from hypothesis import given, strategies as st

from repro.core.activity import ActivityOrder


class TestBasics:
    def test_empty(self):
        order = ActivityOrder()
        assert len(order) == 0
        assert order.front() is None
        assert list(order.keys_front_to_back()) == []

    def test_touch_inserts_at_front(self):
        order = ActivityOrder()
        order.touch("a")
        order.touch("b")
        assert list(order.keys_front_to_back()) == ["b", "a"]
        assert order.front() == "b"

    def test_touch_moves_existing_to_front(self):
        order = ActivityOrder()
        for key in "abc":
            order.touch(key)
        order.touch("a")
        assert list(order.keys_front_to_back()) == ["a", "c", "b"]
        assert len(order) == 3

    def test_touch_front_is_noop(self):
        order = ActivityOrder()
        order.touch("a")
        order.touch("b")
        order.touch("b")
        assert list(order.keys_front_to_back()) == ["b", "a"]

    def test_discard(self):
        order = ActivityOrder()
        for key in "abc":
            order.touch(key)
        order.discard("b")
        assert list(order.keys_front_to_back()) == ["c", "a"]
        assert "b" not in order

    def test_discard_head_and_tail(self):
        order = ActivityOrder()
        for key in "abc":
            order.touch(key)
        order.discard("c")  # head
        order.discard("a")  # tail
        assert list(order.keys_front_to_back()) == ["b"]

    def test_discard_missing_is_noop(self):
        order = ActivityOrder()
        order.discard("ghost")
        assert len(order) == 0


class TestDemote:
    def test_demote_one_position(self):
        order = ActivityOrder()
        for key in "dcba":
            order.touch(key)  # a b c d
        order.demote("a")
        assert list(order.keys_front_to_back()) == ["b", "a", "c", "d"]

    def test_demote_many_positions(self):
        order = ActivityOrder()
        for key in "dcba":
            order.touch(key)
        order.demote("a", positions=2)
        assert list(order.keys_front_to_back()) == ["b", "c", "a", "d"]

    def test_demote_past_end_lands_at_tail(self):
        order = ActivityOrder()
        for key in "cba":
            order.touch(key)
        order.demote("a", positions=10)
        assert list(order.keys_front_to_back()) == ["b", "c", "a"]

    def test_demote_tail_is_noop(self):
        order = ActivityOrder()
        for key in "ba":
            order.touch(key)
        order.demote("b", positions=3)
        assert list(order.keys_front_to_back()) == ["a", "b"]

    def test_demote_missing_is_noop(self):
        order = ActivityOrder()
        order.touch("a")
        order.demote("ghost")
        assert list(order.keys_front_to_back()) == ["a"]


class TestBatch:
    def test_batch_windows(self):
        order = ActivityOrder()
        for key in [5, 4, 3, 2, 1]:
            order.touch(key)  # 1 2 3 4 5
        assert order.batch(0, 2) == [1, 2]
        assert order.batch(2, 2) == [3, 4]
        assert order.batch(4, 2) == [5]
        assert order.batch(6, 2) == []

    def test_position(self):
        order = ActivityOrder()
        for key in "cba":
            order.touch(key)
        assert order.position("a") == 0
        assert order.position("c") == 2
        assert order.position("ghost") is None


class TestModelConformance:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["touch", "discard", "demote"]),
                st.integers(0, 6),
                st.integers(1, 4),
            ),
            max_size=100,
        )
    )
    def test_against_list_model(self, operations):
        order = ActivityOrder()
        model: list = []
        for op, key, amount in operations:
            if op == "touch":
                if key in model:
                    model.remove(key)
                model.insert(0, key)
                order.touch(key)
            elif op == "discard":
                if key in model:
                    model.remove(key)
                order.discard(key)
            else:
                if key in model:
                    index = model.index(key)
                    target = min(index + amount, len(model) - 1)
                    model.remove(key)
                    model.insert(target, key)
                order.demote(key, positions=amount)
        assert list(order.keys_front_to_back()) == model
        assert len(order) == len(model)
