"""Epidemic theory closed forms (Section 1.4) against paper values."""

import math

import pytest

from repro.analysis.epidemic_theory import (
    connection_count_probability,
    connection_limited_push_lambda,
    connection_limited_push_residue,
    connection_limited_pull_residue,
    i_of_s,
    infective_trajectory,
    pittel_push_cycles,
    residue_from_traffic,
    rumor_residue,
    traffic_from_residue,
)


class TestRumorResidue:
    def test_paper_values(self):
        """'at k = 1 ... 20% will miss the rumor, while at k = 2 only 6%'."""
        assert rumor_residue(1) == pytest.approx(0.2032, abs=0.002)
        assert rumor_residue(2) == pytest.approx(0.0595, abs=0.002)

    def test_residue_decreases_exponentially_in_k(self):
        values = [rumor_residue(k) for k in range(1, 8)]
        assert values == sorted(values, reverse=True)
        # Successive ratios roughly constant (exponential decay).
        ratios = [values[i + 1] / values[i] for i in range(len(values) - 1)]
        assert all(r < 0.5 for r in ratios)

    def test_residue_satisfies_fixed_point(self):
        for k in (1, 2, 3, 5):
            s = rumor_residue(k)
            assert s == pytest.approx(math.exp(-(k + 1) * (1 - s)), rel=1e-6)

    def test_residue_is_where_infectives_vanish(self):
        for k in (1.0, 2.0, 4.0):
            s = rumor_residue(k)
            assert i_of_s(s, k) == pytest.approx(0.0, abs=1e-6)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            rumor_residue(0)


class TestIOfS:
    def test_boundary_conditions(self):
        assert i_of_s(1.0, 2.0) == pytest.approx(0.0)

    def test_peak_infection_positive(self):
        assert i_of_s(0.5, 2.0) > 0

    def test_domain_validated(self):
        with pytest.raises(ValueError):
            i_of_s(0.0, 1.0)
        with pytest.raises(ValueError):
            i_of_s(0.5, 0.0)


class TestTrajectory:
    def test_ends_near_fixed_point(self):
        samples = infective_trajectory(k=2.0, n=10000)
        final_s = samples[-1][1]
        assert final_s == pytest.approx(rumor_residue(2.0), abs=0.02)

    def test_susceptibles_monotonically_decrease(self):
        samples = infective_trajectory(k=1.0, n=1000)
        s_values = [s for __, s, __i in samples]
        assert all(a >= b for a, b in zip(s_values, s_values[1:]))

    def test_infection_rises_then_falls(self):
        samples = infective_trajectory(k=2.0, n=1000)
        i_values = [i for __, __s, i in samples]
        peak = max(i_values)
        assert peak > i_values[0]
        assert i_values[-1] < peak / 10


class TestTrafficLaws:
    def test_residue_traffic_inverse_pair(self):
        for m in (0.5, 1.7, 4.5):
            assert traffic_from_residue(residue_from_traffic(m)) == pytest.approx(m)

    def test_table1_consistency(self):
        """Table 1's residue and traffic columns satisfy s = e^-m."""
        for residue, m in [(0.18, 1.7), (0.037, 3.3), (0.011, 4.5)]:
            assert residue_from_traffic(m) == pytest.approx(residue, rel=0.15)

    def test_connection_limited_push_lambda(self):
        assert connection_limited_push_lambda() == pytest.approx(1.582, abs=0.001)

    def test_connection_limit_improves_push(self):
        for m in (1.0, 3.0):
            assert connection_limited_push_residue(m) < residue_from_traffic(m)

    def test_pull_with_connection_failure(self):
        delta = math.exp(-1)
        assert connection_limited_pull_residue(2.0, delta) == pytest.approx(
            math.exp(-2.0)
        )
        with pytest.raises(ValueError):
            connection_limited_pull_residue(1.0, 1.5)


class TestConnectionCounts:
    def test_poisson_one(self):
        assert connection_count_probability(0) == pytest.approx(math.exp(-1))
        assert connection_count_probability(1) == pytest.approx(math.exp(-1))
        assert connection_count_probability(3) == pytest.approx(math.exp(-1) / 6)

    def test_distribution_sums_to_one(self):
        total = sum(connection_count_probability(j) for j in range(30))
        assert total == pytest.approx(1.0)

    def test_matches_simulated_indegree(self):
        import random
        from collections import Counter

        rng = random.Random(0)
        n = 2000
        indegree = Counter()
        for s in range(n):
            t = rng.randrange(n - 1)
            indegree[t if t < s else t + 1] += 1
        zero_fraction = sum(1 for s in range(n) if indegree[s] == 0) / n
        assert zero_fraction == pytest.approx(math.exp(-1), abs=0.03)


class TestPittel:
    def test_formula(self):
        assert pittel_push_cycles(1024) == pytest.approx(10 + math.log(1024))

    def test_growth_is_logarithmic(self):
        assert pittel_push_cycles(2048) - pittel_push_cycles(1024) == pytest.approx(
            1 + math.log(2), abs=1e-9
        )

    def test_needs_two_sites(self):
        with pytest.raises(ValueError):
            pittel_push_cycles(1)
