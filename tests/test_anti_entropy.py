"""Anti-entropy (Section 1.3): simple-epidemic convergence, push vs
pull endgames, periods, connection limits, live strategies."""

import pytest

from repro.cluster.cluster import Cluster
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.base import ExchangeMode
from repro.protocols.exchange import ChecksumWithRecent, HierarchicalChecksum, PeelBack
from repro.sim.transport import ConnectionPolicy


def anti_entropy_cluster(n, mode=ExchangeMode.PUSH_PULL, seed=0, **config_kwargs):
    cluster = Cluster(n=n, seed=seed)
    protocol = AntiEntropyProtocol(
        config=AntiEntropyConfig(mode=mode, **config_kwargs)
    )
    cluster.add_protocol(protocol)
    return cluster, protocol


class TestConvergence:
    @pytest.mark.parametrize(
        "mode", [ExchangeMode.PUSH, ExchangeMode.PULL, ExchangeMode.PUSH_PULL]
    )
    def test_single_update_reaches_everyone(self, mode):
        cluster, protocol = anti_entropy_cluster(30, mode=mode)
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_until(lambda: cluster.metrics.infected == 30, max_cycles=100)
        assert all(v == "v" for v in cluster.values_of("k").values())

    def test_convergence_is_logarithmic(self):
        """Doubling n should add only a few cycles."""
        def cycles_for(n):
            cluster, __ = anti_entropy_cluster(n, mode=ExchangeMode.PUSH_PULL, seed=3)
            cluster.inject_update(0, "k", "v", track=True)
            cluster.run_until(lambda: cluster.metrics.infected == n, max_cycles=200)
            return cluster.metrics.t_last

        small = cycles_for(64)
        large = cycles_for(512)
        assert large <= small + 6

    def test_multiple_keys_converge(self):
        cluster, __ = anti_entropy_cluster(15)
        for i in range(5):
            cluster.inject_update(i, f"k{i}", i)
        cluster.run_until(cluster.converged, max_cycles=100)
        for i in range(5):
            assert set(cluster.values_of(f"k{i}").values()) == {i}

    def test_conflicting_updates_settle_on_lww_winner(self):
        cluster, __ = anti_entropy_cluster(10)
        cluster.inject_update(0, "k", "first")
        cluster.run_cycles(2)
        winner = cluster.inject_update(5, "k", "second")
        cluster.run_until(cluster.converged, max_cycles=100)
        values = set(cluster.values_of("k").values())
        assert values == {"second"}


class TestEndgameAsymmetry:
    """Section 1.3: pull converges quadratically, push only linearly,
    when few susceptibles remain."""

    def _residue_after(self, mode, cycles, seed=5):
        n = 600
        cluster, __ = anti_entropy_cluster(n, mode=mode, seed=seed)
        update = cluster.inject_update(0, "k", "v", track=True)
        import random as _random

        rng = _random.Random(99)
        others = [s for s in cluster.site_ids if s != 0]
        # Plant at 90% of sites: the endgame regime.
        for site in rng.sample(others, int(n * 0.9) - 1):
            cluster.apply_at(site, update, via=None)
        cluster.run_cycles(cycles)
        return cluster.metrics.residue

    def test_pull_beats_push_in_endgame(self):
        pull = self._residue_after(ExchangeMode.PULL, cycles=3)
        push = self._residue_after(ExchangeMode.PUSH, cycles=3)
        assert pull < push

    def test_pull_eliminates_quickly(self):
        assert self._residue_after(ExchangeMode.PULL, cycles=5) == 0.0

    def test_push_tail_shrinks_roughly_e_per_cycle(self):
        before = self._residue_after(ExchangeMode.PUSH, cycles=2)
        after = self._residue_after(ExchangeMode.PUSH, cycles=3)
        assert after < before


class TestPeriodAndOffset:
    def test_period_skips_cycles(self):
        cluster, protocol = anti_entropy_cluster(10, period=3, offset=0)
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_cycles(2)
        assert protocol.stats.exchanges == 0  # cycles 1, 2 skipped
        cluster.run_cycle()                   # cycle 3 runs
        assert protocol.stats.exchanges == 10

    def test_offset_shifts_schedule(self):
        cluster, protocol = anti_entropy_cluster(10, period=3, offset=1)
        cluster.run_cycle()  # cycle 1 matches offset
        assert protocol.stats.exchanges == 10

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            AntiEntropyConfig(period=0)
        with pytest.raises(ValueError):
            AntiEntropyConfig(period=2, offset=2)


class TestConnectionLimit:
    def test_rejections_recorded(self):
        cluster, protocol = anti_entropy_cluster(
            50, policy=ConnectionPolicy(connection_limit=1, hunt_limit=0), seed=2
        )
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_cycles(3)
        assert protocol.stats.rejected > 0
        assert cluster.metrics.rejected_connections == protocol.stats.rejected

    def test_limit_slows_but_does_not_stop_convergence(self):
        n = 100
        cluster, __ = anti_entropy_cluster(
            n, policy=ConnectionPolicy(connection_limit=1, hunt_limit=0), seed=2
        )
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_until(lambda: cluster.metrics.infected == n, max_cycles=300)
        assert cluster.metrics.complete

    def test_hunting_reduces_rejections(self):
        def rejections(hunt_limit):
            cluster, protocol = anti_entropy_cluster(
                60,
                policy=ConnectionPolicy(connection_limit=1, hunt_limit=hunt_limit),
                seed=4,
            )
            cluster.run_cycles(5)
            return protocol.stats.rejected

        assert rejections(5) < rejections(0)


class TestDownSites:
    def test_down_sites_do_not_participate(self):
        cluster, protocol = anti_entropy_cluster(10)
        cluster.sites[3].up = False
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_until(
            lambda: cluster.metrics.infected == 9, max_cycles=100
        )
        assert cluster.sites[3].store.get("k") is None

    def test_rejoining_site_catches_up(self):
        cluster, protocol = anti_entropy_cluster(10)
        cluster.sites[3].up = False
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_cycles(10)
        cluster.sites[3].up = True
        cluster.run_until(lambda: cluster.metrics.infected == 10, max_cycles=100)
        assert cluster.sites[3].store.get("k") == "v"


class TestLiveStrategies:
    @pytest.mark.parametrize(
        "strategy", [ChecksumWithRecent(tau=50.0), PeelBack(), HierarchicalChecksum()]
    )
    def test_asynchronous_mode_converges(self, strategy):
        cluster = Cluster(n=20, seed=1)
        protocol = AntiEntropyProtocol(
            config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL, synchronous=False),
            strategy=strategy,
        )
        cluster.add_protocol(protocol)
        for i in range(4):
            cluster.inject_update(i, f"k{i}", i)
        cluster.run_until(cluster.converged, max_cycles=100)
        assert cluster.converged()

    def test_checksum_successes_tracked(self):
        cluster = Cluster(n=10, seed=1)
        protocol = AntiEntropyProtocol(
            config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL, synchronous=False),
            strategy=ChecksumWithRecent(tau=50.0),
        )
        cluster.add_protocol(protocol)
        cluster.inject_update(0, "k", "v")
        cluster.run_cycles(10)
        assert protocol.stats.checksum_successes > 0

    def test_hierarchical_bucket_stats_tracked(self):
        cluster = Cluster(n=10, seed=1)
        protocol = AntiEntropyProtocol(
            config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL, synchronous=False),
            strategy=HierarchicalChecksum(),
        )
        cluster.add_protocol(protocol)
        for i in range(3):
            cluster.inject_update(i, f"k{i}", i)
        cluster.run_until(cluster.converged, max_cycles=100)
        assert cluster.converged()
        # Differences were settled bucket-by-bucket, exchanges that found
        # equal roots were counted as checksum successes, and the scoped
        # offers skipped entries a full comparison would have examined.
        assert protocol.stats.bucket_rounds > 0
        assert protocol.stats.checksum_successes > 0
        assert protocol.stats.full_compares == 0

    def test_transfer_hook_fires(self):
        transfers = []
        cluster, protocol = anti_entropy_cluster(10)
        protocol.on_transfer(
            lambda src, dst, update, result: transfers.append((src, dst, update.key))
        )
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_until(lambda: cluster.metrics.infected == 10, max_cycles=50)
        assert transfers
        assert all(key == "k" for __, __unused, key in transfers)


class TestSynchronousSemantics:
    def test_decisions_use_start_of_cycle_state(self):
        """With push from a single seed, at most 2^c sites can know the
        update after c cycles — the synchronous doubling bound."""
        cluster, __ = anti_entropy_cluster(64, mode=ExchangeMode.PUSH, seed=7)
        cluster.inject_update(0, "k", "v", track=True)
        for cycle in range(1, 5):
            cluster.run_cycle()
            assert cluster.metrics.infected <= 2 ** cycle
