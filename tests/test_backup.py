"""Anti-entropy backing up rumor mongering (Section 1.5)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.protocols.backup import AntiEntropyBackup, RecoveryStrategy
from repro.protocols.base import ExchangeMode
from repro.protocols.rumor import RumorConfig


def backup_cluster(n, recovery=RecoveryStrategy.HOT_RUMOR, k=1, period=3, seed=0):
    cluster = Cluster(n=n, seed=seed)
    protocol = AntiEntropyBackup(
        rumor_config=RumorConfig(
            mode=ExchangeMode.PUSH, feedback=True, counter=True, k=k
        ),
        anti_entropy_period=period,
        recovery=recovery,
    )
    cluster.add_protocol(protocol)
    return cluster, protocol


class TestGuaranteedDelivery:
    @pytest.mark.parametrize(
        "recovery",
        [
            RecoveryStrategy.CONSERVATIVE,
            RecoveryStrategy.HOT_RUMOR,
            RecoveryStrategy.REDISTRIBUTE_MAIL,
        ],
    )
    def test_every_strategy_reaches_all_sites(self, recovery):
        """With k=1 the rumor alone would leave ~18% susceptible; the
        anti-entropy backup must close the gap for every strategy."""
        n = 150
        cluster, protocol = backup_cluster(n, recovery=recovery, k=1)
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_until(lambda: cluster.metrics.infected == n, max_cycles=200)
        assert cluster.metrics.complete

    def test_composite_goes_quiescent_after_convergence(self):
        cluster, protocol = backup_cluster(60)
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_until_quiescent(max_cycles=300)
        assert cluster.converged()
        assert not protocol.rumor.active


class TestRecoveryBehavior:
    def test_hot_rumor_recovery_reignites_rumor(self):
        cluster, protocol = backup_cluster(100, recovery=RecoveryStrategy.HOT_RUMOR, k=1, seed=5)
        cluster.inject_update(0, "k", "v", track=True)
        # Let the k=1 rumor die out with some residue.
        cluster.run_until(lambda: not protocol.rumor.active, max_cycles=60)
        residue_after_rumor = cluster.metrics.residue
        if residue_after_rumor == 0:
            pytest.skip("rumor happened to cover everyone at this seed")
        # Next anti-entropy round rediscovers it and makes it hot again.
        cluster.run_until(
            lambda: protocol.rumor.active or cluster.metrics.complete,
            max_cycles=20,
        )
        assert protocol.redistributions > 0

    def test_conservative_recovery_never_remakes_rumors(self):
        cluster, protocol = backup_cluster(
            100, recovery=RecoveryStrategy.CONSERVATIVE, k=1, seed=4
        )
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_until(lambda: not protocol.rumor.active, max_cycles=60)
        hot_before = protocol.rumor.infective_count()
        cluster.run_cycles(6)  # a couple of anti-entropy rounds
        assert protocol.rumor.infective_count() == hot_before == 0

    def test_mail_recovery_uses_mail(self):
        cluster, protocol = backup_cluster(
            80, recovery=RecoveryStrategy.REDISTRIBUTE_MAIL, k=1, seed=4
        )
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_until(lambda: cluster.metrics.complete, max_cycles=100)
        assert protocol._mail is not None
        assert protocol._mail.mail.stats.posted > 0

    def test_mail_recovery_costs_far_more_than_hot_rumor(self):
        from repro.experiments.backup_scenarios import recovery_cost_experiment

        mail = recovery_cost_experiment(
            n=80, strategy=RecoveryStrategy.REDISTRIBUTE_MAIL, seed=9
        )
        rumor = recovery_cost_experiment(
            n=80, strategy=RecoveryStrategy.HOT_RUMOR, seed=9
        )
        assert mail.converged and rumor.converged
        assert mail.mail_messages > 5 * rumor.update_sends


class TestScheduling:
    def test_anti_entropy_runs_on_its_period_only(self):
        cluster, protocol = backup_cluster(30, period=4)
        cluster.inject_update(0, "k", "v")
        cluster.run_cycles(2)
        assert protocol.anti_entropy.stats.exchanges == 0
        cluster.run_cycles(2)  # cycle 3 == offset (period-1) fires
        assert protocol.anti_entropy.stats.exchanges > 0

    def test_rumor_runs_every_cycle(self):
        cluster, protocol = backup_cluster(30, period=4)
        cluster.inject_update(0, "k", "v")
        cluster.run_cycle()
        assert protocol.rumor.stats.conversations == 1
