"""Golden bit-identity: the batched trial core vs the scalar reference.

The batched engine (:mod:`repro.sim.batch`) promises *bit-for-bit* the
same epidemics as the event-driven :class:`~repro.cluster.cluster.Cluster`
path — same per-site RNG streams, same draw order, same metrics.  These
tests hold that promise across the Table 1-3 configurations, the rumor
variants (push-pull, minimization, blind/coin, pull footnote semantics,
connection limits with hunting), both anti-entropy directions, and both
array backends, over a seed sweep.
"""

import pytest

from repro.experiments.tables import run_anti_entropy_trial, run_rumor_trial
from repro.protocols.base import ExchangeMode
from repro.protocols.rumor import RumorConfig
from repro.sim import batch
from repro.sim.arrays import FORCE_PURE_ENV, PythonBackend, get_backend
from repro.sim.rng import SiteSeeder, site_seed
from repro.sim.transport import ConnectionPolicy

N = 120
SEEDS = (1, 7)


def _fingerprint(metrics):
    """Every integer the two engines must agree on, bit for bit."""
    return {
        "receipts": dict(metrics.receipt_times),
        "update_sends": metrics.update_sends,
        "comparisons": metrics.comparisons,
        "cycles": metrics.cycles_run,
        "rejected": metrics.rejected_connections,
    }


CONFIGS = {
    # Table 1-3 shapes (one k each; the bench sweeps the full tables).
    "t1-push-fb-counter": RumorConfig(
        mode=ExchangeMode.PUSH, feedback=True, counter=True, k=2
    ),
    "t2-push-blind-coin": RumorConfig(
        mode=ExchangeMode.PUSH, feedback=False, counter=False, k=2
    ),
    "t3-pull-fb-counter": RumorConfig(
        mode=ExchangeMode.PULL, feedback=True, counter=True, k=2
    ),
    # Variant coverage.
    "pushpull": RumorConfig(
        mode=ExchangeMode.PUSH_PULL, feedback=True, counter=True, k=2
    ),
    "minimization": RumorConfig(
        mode=ExchangeMode.PUSH_PULL, feedback=True, counter=True, k=2,
        minimization=True,
    ),
    "blind-counter": RumorConfig(
        mode=ExchangeMode.PUSH, feedback=False, counter=True, k=3
    ),
    "feedback-coin": RumorConfig(
        mode=ExchangeMode.PUSH, feedback=True, counter=False, k=2
    ),
    "pull-noreset": RumorConfig(
        mode=ExchangeMode.PULL, feedback=True, counter=True, k=2,
        reset_on_success=False,
    ),
    "push-limited-hunt": RumorConfig(
        mode=ExchangeMode.PUSH, feedback=True, counter=True, k=2,
        policy=ConnectionPolicy(connection_limit=1, hunt_limit=2),
    ),
    "pull-limited": RumorConfig(
        mode=ExchangeMode.PULL, feedback=True, counter=True, k=2,
        policy=ConnectionPolicy(connection_limit=1, hunt_limit=1),
    ),
}


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_rumor_golden(name, seed):
    config = CONFIGS[name]
    reference = run_rumor_trial(N, config, seed, engine="reference")
    batched = run_rumor_trial(N, config, seed, engine="batched")
    assert _fingerprint(batched) == _fingerprint(reference)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "mode", (ExchangeMode.PUSH, ExchangeMode.PULL, ExchangeMode.PUSH_PULL)
)
def test_anti_entropy_golden(mode, seed):
    reference = run_anti_entropy_trial(N, mode, seed=seed, engine="reference")
    batched = run_anti_entropy_trial(N, mode, seed=seed, engine="batched")
    assert _fingerprint(batched) == _fingerprint(reference)


def test_anti_entropy_period_offset_golden():
    reference = run_anti_entropy_trial(
        N, ExchangeMode.PUSH_PULL, seed=5, engine="reference"
    )
    batched = batch.anti_entropy_trial(N, ExchangeMode.PUSH_PULL, 5)
    assert _fingerprint(batched) == _fingerprint(reference)


def test_pure_python_backend_matches_numpy(monkeypatch):
    """The fallback backend runs the same batched code path, same bits."""
    config = CONFIGS["pushpull"]
    default = _fingerprint(run_rumor_trial(N, config, 3, engine="batched"))
    monkeypatch.setenv(FORCE_PURE_ENV, "1")
    assert get_backend() is PythonBackend
    forced = _fingerprint(run_rumor_trial(N, config, 3, engine="batched"))
    assert forced == default


def test_word_cache_replay_matches_fresh(monkeypatch):
    """A trial replayed from the word cache equals a cache-cold trial."""
    config = CONFIGS["t1-push-fb-counter"]
    monkeypatch.setenv(batch.TRIAL_CACHE_ENV, "0")
    cold = _fingerprint(batch.rumor_trial(N, config, 11))
    monkeypatch.delenv(batch.TRIAL_CACHE_ENV)
    batch.clear_word_cache()
    first = _fingerprint(batch.rumor_trial(N, config, 11))   # fills the cache
    warm = _fingerprint(batch.rumor_trial(N, config, 11))    # replays it
    assert first == cold
    assert warm == cold


def test_site_seeder_matches_site_seed():
    seeder = SiteSeeder(99)
    assert [seeder.seed(i) for i in range(64)] == [
        site_seed(99, i) for i in range(64)
    ]


def test_engine_argument_validation():
    with pytest.raises(ValueError, match="unknown engine"):
        run_rumor_trial(N, CONFIGS["pushpull"], 1, engine="warp")
    with pytest.raises(ValueError, match="unknown engine"):
        run_anti_entropy_trial(N, ExchangeMode.PUSH, engine="warp")


def test_batched_raises_when_not_converged():
    config = CONFIGS["t1-push-fb-counter"]
    with pytest.raises(RuntimeError, match="predicate not reached"):
        batch.rumor_trial(N, config, 1, max_cycles=1)
