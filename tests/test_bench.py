"""The benchmark harness: scenarios, report schema, regression gate."""

import json

import pytest

from repro.experiments.bench import (
    SCHEMA,
    compare_reports,
    load_report,
    measure_exchange_hot_path,
    measure_parallel_speedup,
    summary_lines,
    write_report,
    _bench_anti_entropy,
    _bench_rumor,
    _bench_table1,
)
from repro.experiments.runner import TrialRunner


def _report(**overrides):
    base = {
        "schema": SCHEMA,
        "date": "2026-01-01",
        "quick": True,
        "jobs": 1,
        "cpu_count": 1,
        "platform": "test",
        "python": "3",
        "scenarios": [
            {
                "name": "table1",
                "wall_clock_s": 1.0,
                "trials": 10,
                "trials_per_s": 10.0,
                "detail": {},
            },
        ],
        "parallel": {
            "jobs": 1, "n": 1, "runs": 1,
            "serial_s": 1.0, "parallel_s": 1.0, "speedup": 1.0,
        },
        "exchange_hot_path": {
            "entries": 1, "conversations": 1,
            "legacy_s_per_conversation": 1.0,
            "optimized_s_per_conversation": 1.0,
            "speedup": 1.0,
        },
    }
    base.update(overrides)
    return base


def _scenario(name, wall):
    return {
        "name": name, "wall_clock_s": wall, "trials": 1,
        "trials_per_s": 1.0, "detail": {},
    }


class TestScenarios:
    def test_table1_scenario(self):
        timing = _bench_table1(quick=True, runner=TrialRunner(jobs=1))
        assert timing.name == "table1"
        assert timing.wall_clock_s > 0
        assert timing.trials == 20  # 5 ks x 2 runs x 2 passes
        assert timing.trials_per_s > 0
        assert timing.detail["engine"] == "batched"
        assert timing.detail["best_pass_s"] <= timing.detail["first_pass_s"]

    def test_anti_entropy_scenario(self):
        timing = _bench_anti_entropy(quick=True)
        assert timing.detail["n"] == 256
        assert timing.detail["cycles"] > 0
        assert timing.trials == timing.detail["runs"]

    def test_rumor_scenario(self):
        timing = _bench_rumor(quick=True)
        assert 0.0 <= timing.detail["residue"] <= 1.0
        assert timing.detail["best_run_s"] <= timing.detail["first_run_s"]

    def test_parallel_speedup_shape(self, monkeypatch):
        import repro.experiments.bench as bench_module

        monkeypatch.setattr(bench_module.os, "cpu_count", lambda: 2)
        result = measure_parallel_speedup(quick=True, jobs=1)
        assert result["serial_s"] > 0
        assert result["parallel_s"] > 0
        assert result["speedup"] > 0

    def test_parallel_speedup_skipped_on_one_cpu(self, monkeypatch):
        import repro.experiments.bench as bench_module

        monkeypatch.setattr(bench_module.os, "cpu_count", lambda: 1)
        result = measure_parallel_speedup(quick=True, jobs=4)
        assert result["skipped"] == "1 cpu"
        assert "speedup" not in result
        # The skipped shape still renders in the summary.
        lines = "\n".join(summary_lines(_report(parallel=result)))
        assert "skipped (1 cpu)" in lines

    def test_exchange_hot_path_shape(self):
        result = measure_exchange_hot_path(quick=True)
        assert result["legacy_s_per_conversation"] > 0
        assert result["optimized_s_per_conversation"] > 0
        assert result["speedup"] > 0


class TestReportIO:
    def test_write_and_load_roundtrip(self, tmp_path):
        report = _report()
        path = write_report(report, str(tmp_path / "bench.json"))
        assert load_report(str(path)) == report

    def test_default_filename_uses_date(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        path = write_report(_report(date="2026-08-06"))
        assert path.name == "BENCH_2026-08-06.json"

    def test_default_filename_never_clobbers_same_day_report(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        first = write_report(_report(date="2026-08-06"))
        second = write_report(_report(date="2026-08-06"))
        third = write_report(_report(date="2026-08-06"))
        assert first.name == "BENCH_2026-08-06.json"
        assert second.name == "BENCH_2026-08-06-2.json"
        assert third.name == "BENCH_2026-08-06-3.json"
        # All three still exist and load as valid reports.
        for path in (first, second, third):
            assert load_report(str(path))["date"] == "2026-08-06"

    def test_explicit_path_still_overwrites(self, tmp_path):
        target = tmp_path / "bench.json"
        write_report(_report(date="2026-08-06"), str(target))
        path = write_report(_report(date="2026-08-07"), str(target))
        assert path == target
        assert load_report(str(target))["date"] == "2026-08-07"
        assert list(tmp_path.iterdir()) == [target]

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "other/1"}))
        with pytest.raises(ValueError):
            load_report(str(path))

    def test_summary_lines_mention_every_scenario(self):
        lines = "\n".join(summary_lines(_report()))
        assert "table1" in lines
        assert "parallel speedup" in lines
        assert "exchange hot path" in lines


class TestRegressionGate:
    def test_no_regression_when_equal(self):
        assert compare_reports(_report(), _report()) == []

    def test_flags_scenarios_beyond_factor(self):
        current = _report(scenarios=[_scenario("table1", 2.5)])
        baseline = _report(scenarios=[_scenario("table1", 1.0)])
        regressions = compare_reports(current, baseline, max_regression=2.0)
        assert len(regressions) == 1
        assert "table1" in regressions[0]

    def test_within_factor_passes(self):
        current = _report(scenarios=[_scenario("table1", 1.9)])
        baseline = _report(scenarios=[_scenario("table1", 1.0)])
        assert compare_reports(current, baseline, max_regression=2.0) == []

    def test_new_scenarios_are_skipped(self):
        current = _report(
            scenarios=[_scenario("table1", 1.0), _scenario("brand-new", 99.0)]
        )
        assert compare_reports(current, _report()) == []

    def test_quick_mismatch_is_not_comparable(self):
        current = _report(quick=False, scenarios=[_scenario("table1", 99.0)])
        assert compare_reports(current, _report(quick=True)) == []
