"""Property tests for the v4 binary wire codec (:mod:`repro.net.binwire`).

Hypothesis drives round trips through the MessagePack-style packer for
arbitrary payload values, and through :func:`encode_message` /
:func:`decode_body` for every message type — including TREE frontiers
carrying 128-bit checksums and span-context fragments, the two payload
shapes that forced the EXT_BIGINT extension and binary-safe strings.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import binwire
from repro.net.binwire import (
    BINARY_MAGIC,
    BinWireError,
    FrameEncoder,
    decode_binary_body,
    encode_binary_body,
    msgpack_available,
    pack_value,
    unpack_value,
)
from repro.net.wire import (
    BINARY_WIRE_VERSION,
    TYPE_CODES,
    Message,
    MessageType,
    WireError,
    decode_body,
    encode_message,
)
from repro.sim.arrays import FORCE_PURE_ENV

# JSON-compatible scalars plus the binary-only extras (bytes, big ints).
SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**200), max_value=2**200),
    st.floats(allow_nan=False),
    st.text(max_size=64),
    st.binary(max_size=64),
)
VALUES = st.recursive(
    SCALARS,
    lambda children: st.one_of(
        st.lists(children, max_size=8),
        st.dictionaries(st.text(max_size=16), children, max_size=8),
        st.dictionaries(st.integers(-100, 100), children, max_size=4),
    ),
    max_leaves=24,
)
PAYLOADS = st.dictionaries(st.text(max_size=16), VALUES, max_size=6)


@settings(max_examples=200, deadline=None)
@given(VALUES)
def test_pack_value_round_trip(value):
    assert unpack_value(pack_value(value)) == value


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=-(2**512), max_value=2**512))
def test_bigint_round_trip(value):
    assert unpack_value(pack_value(value)) == value


@pytest.mark.parametrize(
    "value",
    [2**63 - 1, 2**63, -(2**63), -(2**63) - 1, 2**64 - 1, 2**64,
     2**127, -(2**127), 2**300],
)
def test_int64_boundary_values(value):
    assert unpack_value(pack_value(value)) == value


def test_bool_int_distinction_survives():
    out = unpack_value(pack_value([True, 1, False, 0]))
    assert out == [True, 1, False, 0]
    assert [type(v) for v in out] == [bool, int, bool, int]


@settings(max_examples=60, deadline=None)
@given(
    type_=st.sampled_from(sorted(MessageType, key=lambda t: t.value)),
    sender=st.integers(min_value=0, max_value=2**31),
    payload=PAYLOADS,
)
def test_v4_message_round_trip(type_, sender, payload):
    message = Message(
        version=BINARY_WIRE_VERSION,
        max_version=BINARY_WIRE_VERSION,
        type=type_,
        sender=sender,
        payload=payload,
    )
    frame = encode_message(message)
    length = struct.unpack(">I", frame[:4])[0]
    body = frame[4:]
    assert len(body) == length
    assert body[0] == BINARY_MAGIC
    assert decode_body(body) == message


@settings(max_examples=40, deadline=None)
@given(
    frontier=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=2**20),
            st.integers(min_value=0, max_value=2**128 - 1),
        ),
        max_size=16,
    ),
    dirty=st.lists(st.integers(min_value=0, max_value=2**16), max_size=16),
    bits=st.integers(min_value=0, max_value=20),
)
def test_tree_frontier_round_trip(frontier, dirty, bits):
    """TREE replies carry 128-bit checksums — the EXT_BIGINT hot case."""
    payload = {
        "bits": bits,
        "frontier": [[node, value] for node, value in frontier],
        "dirty": dirty,
    }
    message = Message(
        version=4, max_version=4, type=MessageType.TREE, sender=9, payload=payload
    )
    assert decode_body(encode_message(message)[4:]) == message


@settings(max_examples=40, deadline=None)
@given(
    spans=st.lists(
        st.fixed_dictionaries(
            {
                "trace": st.text(min_size=1, max_size=32),
                "hop": st.one_of(st.none(), st.integers(0, 2**32)),
                "sent_at": st.floats(
                    min_value=0, max_value=2**40, allow_nan=False
                ),
            }
        ),
        max_size=8,
    )
)
def test_span_fragment_round_trip(spans):
    """Span contexts ride beside updates in PUSH/RUMOR payloads."""
    payload = {"updates": [], "spans": spans}
    message = Message(
        version=4, max_version=4, type=MessageType.RUMOR, sender=2, payload=payload
    )
    assert decode_body(encode_message(message)[4:]) == message


@settings(max_examples=40, deadline=None)
@given(
    type_=st.sampled_from(sorted(MessageType, key=lambda t: t.value)),
    payload=st.dictionaries(
        st.text(max_size=12),
        st.recursive(
            st.one_of(
                st.none(), st.booleans(), st.integers(-(2**53), 2**53),
                st.text(max_size=32),
            ),
            lambda c: st.lists(c, max_size=4),
            max_leaves=8,
        ),
        max_size=4,
    ),
)
def test_json_and_binary_agree(type_, payload):
    """The same JSON-expressible message decodes identically from both
    codecs (only the version stamps differ)."""
    v3 = Message(version=3, max_version=4, type=type_, sender=5, payload=payload)
    v4 = Message(version=4, max_version=4, type=type_, sender=5, payload=payload)
    from_json = decode_body(encode_message(v3)[4:])
    from_binary = decode_body(encode_message(v4)[4:])
    assert from_json.payload == from_binary.payload
    assert (from_json.type, from_json.sender) == (from_binary.type, from_binary.sender)


def test_every_message_type_has_a_code():
    assert set(TYPE_CODES) == set(MessageType)
    codes = list(TYPE_CODES.values())
    assert len(set(codes)) == len(codes)


@pytest.mark.parametrize(
    "body",
    [
        b"\xc1",                              # truncated prelude
        b"\xc1\x04\x04",                      # still truncated
        b"\xc1\x04\x04\x63\x92\x05\x80",      # unknown type code 0x63
        b"\xc1\x03\x03\x00\x92\x05\x80",      # version below the binary floor
        b"\xc1\x04\x04\x00\x05",              # body is not [sender, payload]
        b"\xc1\x04\x04\x00\x92\xa3abc\x80",   # sender is not an int
        b"\xc1\x04\x04\x00\x92\x05\x91\x01",  # payload is not a map
        b"\xc1\x04\x04\x00\x92\x05",          # truncated msgpack body
        encode_binary_body(4, 4, 0, 1, {})[:-1],  # cut off mid-frame
    ],
)
def test_malformed_binary_bodies_raise(body):
    with pytest.raises(WireError):
        decode_body(body)


def test_hostile_container_count_rejected():
    # array32 claiming 2**31 elements with a 3-byte body must not allocate.
    body = b"\xdd\x80\x00\x00\x00" + b"\x01\x01\x01"
    with pytest.raises(BinWireError):
        unpack_value(body)


def test_decode_binary_body_clamps_max_version():
    body = encode_binary_body(4, 2, 0, 1, {})
    version, max_version, code, sender, payload = decode_binary_body(body)
    assert (version, code, sender, payload) == (4, 0, 1, {})
    message = decode_body(body)
    assert message.max_version >= message.version


def test_frame_encoder_reuse_and_reentrancy():
    encoder = FrameEncoder()
    first = encoder.encode_body(4, 4, 0, 1, {"a": 1})
    second = encoder.encode_body(4, 4, 0, 1, {"a": 1})
    assert first == second == encode_binary_body(4, 4, 0, 1, {"a": 1})
    # The shared encoder hands out detached bytes: mutating state between
    # calls must not corrupt previously returned frames.
    third = encoder.encode_body(4, 4, 1, 2, {"b": [1, 2, 3]})
    assert first == encode_binary_body(4, 4, 0, 1, {"a": 1})
    assert decode_binary_body(third)[4] == {"b": [1, 2, 3]}


def test_pure_python_env_forces_pure_codec(monkeypatch):
    monkeypatch.setenv(FORCE_PURE_ENV, "1")
    assert binwire._use_msgpack() is False
    value = {"k": [2**127, "s", b"b"], "f": 1.5}
    assert unpack_value(pack_value(value)) == value


@pytest.mark.skipif(not msgpack_available(), reason="msgpack not installed")
def test_msgpack_and_pure_cross_decode(monkeypatch):
    """Frames from either packer decode on the other."""
    value = {"k": [2**127, -5, "s", b"b", None, True], "f": 1.5}
    accelerated = pack_value(value)
    monkeypatch.setenv(FORCE_PURE_ENV, "1")
    pure = pack_value(value)
    assert unpack_value(accelerated) == value
    assert unpack_value(pure) == value
    monkeypatch.delenv(FORCE_PURE_ENV)
    assert unpack_value(pure) == value
