"""Wire-codec interop over real sockets: v3 JSON peers ↔ v4 binary nodes.

The version ladder's promise is that a v4 node never sends a binary
frame to a peer that has not advertised v4, and always understands
JSON from older peers.  These tests hold that promise with real TCP
connections: a raw legacy client speaking hand-encoded v3 JSON, a raw
v4 client speaking binary, and a two-node cluster where one node is
pinned to the v3 ceiling.
"""

import asyncio
import contextlib
import dataclasses
import socket
from typing import List

from repro.net.membership import Membership, PeerInfo
from repro.net.node import GossipNode, NodeConfig
from repro.net.peer import Peer, RetryPolicy
from repro.net.wire import (
    Message,
    MessageType,
    decode_body,
    encode_message,
    read_message,
)

QUIET = dict(
    anti_entropy_interval=3600.0,
    rumor_interval=3600.0,
    retry=RetryPolicy(connect_timeout=0.5, io_timeout=1.0, attempts=1),
)

BINARY_MAGIC_BYTE = b"\xc1"
JSON_FIRST_BYTE = b"{"


@contextlib.asynccontextmanager
async def cluster(n: int = 2, **overrides):
    config = NodeConfig(**{**QUIET, **overrides})
    socks = []
    for __ in range(n):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        socks.append(sock)
    membership = Membership.localhost([s.getsockname()[1] for s in socks])
    nodes: List[GossipNode] = []
    try:
        for node_id, sock in enumerate(socks):
            node = GossipNode(node_id, membership, config)
            await node.start(sock=sock)
            nodes.append(node)
        yield nodes
    finally:
        for node in nodes:
            await node.stop()


def pin_to_v3(node: GossipNode) -> None:
    """Make ``node`` behave exactly like a pre-binary v3 build: every
    frame it emits is JSON and advertises ``max_version=3``, and it
    never records a peer above v3."""
    original_handle = node._handle
    original_call = node._call
    original_wire_version = node.wire_version

    def handle(message):
        reply = original_handle(message)
        if reply is None:
            return None
        return dataclasses.replace(
            reply, version=min(reply.version, 3), max_version=3
        )

    async def call(peer, message):
        return await original_call(
            peer, dataclasses.replace(message, max_version=3)
        )

    node._handle = handle
    node._call = call
    node.wire_version = lambda peer_id: min(original_wire_version(peer_id), 3)


async def raw_round_trip(port: int, request: Message) -> tuple[bytes, Message]:
    """One conversation on a fresh TCP connection; returns the reply's
    raw body bytes and its decoded form."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(encode_message(request))
        await writer.drain()
        reply = await asyncio.wait_for(read_message(reader), 2.0)
        assert reply is not None
    finally:
        writer.close()
    # Re-encode to recover the body bytes the server actually chose.
    return encode_message(reply)[4:], reply


class TestRawClients:
    def test_v3_json_client_gets_json_back(self):
        """A legacy client advertising max=3 must receive a JSON reply."""
        async def scenario():
            async with cluster(1) as (node,):
                port = node.membership.get(0).port
                request = Message(
                    version=3, max_version=3,
                    type=MessageType.STATUS, sender=77,
                )
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                try:
                    writer.write(encode_message(request))
                    await writer.drain()
                    length = int.from_bytes(
                        await reader.readexactly(4), "big"
                    )
                    body = await reader.readexactly(length)
                finally:
                    writer.close()
                return body

        body = asyncio.run(scenario())
        assert body[:1] == JSON_FIRST_BYTE
        reply = decode_body(body)
        assert reply.type is MessageType.STATUS
        assert reply.version == 3

    def test_v4_binary_client_gets_binary_back(self):
        """A client advertising max=4 negotiates the binary codec."""
        async def scenario():
            async with cluster(1) as (node,):
                port = node.membership.get(0).port
                request = Message(
                    version=4, max_version=4,
                    type=MessageType.STATUS, sender=77,
                )
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                try:
                    writer.write(encode_message(request))
                    await writer.drain()
                    length = int.from_bytes(
                        await reader.readexactly(4), "big"
                    )
                    body = await reader.readexactly(length)
                finally:
                    writer.close()
                return body

        body = asyncio.run(scenario())
        assert body[:1] == BINARY_MAGIC_BYTE
        reply = decode_body(body)
        assert reply.type is MessageType.STATUS
        assert reply.version == 4

    def test_v1_client_still_speaks_plain_json(self):
        async def scenario():
            async with cluster(1) as (node,):
                port = node.membership.get(0).port
                request = Message(
                    version=1, max_version=1,
                    type=MessageType.STATUS, sender=77,
                )
                return await raw_round_trip(port, request)

        __, reply = asyncio.run(scenario())
        assert reply.type is MessageType.STATUS
        assert reply.version == 1


class TestMixedCluster:
    def test_v3_node_and_v4_node_converge(self):
        """Anti-entropy between a pinned-v3 node and a v4 node reaches
        agreement in both directions, and the v4 node never records the
        legacy peer above v3."""
        async def scenario():
            async with cluster(2) as (legacy, modern):
                pin_to_v3(legacy)
                legacy.inject("from-legacy", 1)
                modern.inject("from-modern", 2)
                assert await legacy.run_anti_entropy_once()
                assert await modern.run_anti_entropy_once()
                return (
                    legacy.store.agrees_with(modern.store),
                    legacy.store.get("from-modern"),
                    modern.store.get("from-legacy"),
                    modern.wire_version(legacy.node_id),
                )

        agrees, at_legacy, at_modern, recorded = asyncio.run(scenario())
        assert agrees
        assert at_legacy == 2
        assert at_modern == 1
        assert recorded <= 3

    def test_v4_nodes_upgrade_to_binary_requests(self):
        """After the first reply advertises v4, subsequent requests go
        binary — and the cluster still converges."""
        async def scenario():
            async with cluster(2) as (a, b):
                a.inject("round-one", 1)
                assert await a.run_anti_entropy_once()
                first_version = a.wire_version(b.node_id)
                a.inject("round-two", 2)
                assert await a.run_anti_entropy_once()
                return (
                    first_version,
                    b.store.get("round-one"),
                    b.store.get("round-two"),
                    a.store.agrees_with(b.store),
                )

        first_version, one, two, agrees = asyncio.run(scenario())
        assert first_version == 4
        assert one == 1 and two == 2
        assert agrees


class TestPeerAccounting:
    def test_peer_counts_frames_and_bytes(self):
        async def scenario():
            async with cluster(1) as (node,):
                info = node.membership.get(0)
                peer = Peer(
                    PeerInfo(node_id=0, host=info.host, port=info.port),
                    policy=RetryPolicy(
                        connect_timeout=0.5, io_timeout=1.0, attempts=1
                    ),
                )
                try:
                    await peer.call(
                        Message(type=MessageType.STATUS, sender=42)
                    )
                finally:
                    await peer.close()
                return peer.frames_sent, peer.bytes_sent

        frames, sent = asyncio.run(scenario())
        assert frames == 1
        assert sent > 4  # at least the length prefix plus a body

    def test_binary_status_frame_is_smaller_than_json(self):
        """The reason v4 exists: the same conversation costs fewer
        bytes on the binary codec."""
        payload = {
            "checksum": 2**127 - 1,
            "counts": {str(i): i for i in range(16)},
        }
        v3 = Message(
            version=3, max_version=4,
            type=MessageType.STATUS, sender=1, payload=payload,
        )
        v4 = Message(
            version=4, max_version=4,
            type=MessageType.STATUS, sender=1, payload=payload,
        )
        json_frame = encode_message(v3)
        binary_frame = encode_message(v4)
        assert len(binary_frame) < len(json_frame)
        assert decode_body(binary_frame[4:]).payload == payload
