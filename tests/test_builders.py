"""Topology builders: regular graphs and the Figure 1/2 pathologies."""

import pytest

from repro.topology import builders


class TestRegularTopologies:
    def test_line(self):
        topo = builders.line(5)
        topo.validate()
        assert topo.site_count == 5
        assert topo.edge_count == 4
        assert topo.distance(0, 4) == 4

    def test_line_of_one(self):
        assert builders.line(1).site_count == 1

    def test_ring_wraps(self):
        topo = builders.ring(6)
        assert topo.distance(0, 5) == 1
        assert topo.distance(0, 3) == 3

    def test_ring_minimum_size(self):
        with pytest.raises(ValueError):
            builders.ring(2)

    def test_grid_dimensions(self):
        topo = builders.grid(3, 4)
        topo.validate()
        assert topo.site_count == 12
        # Interior degree 4, corners 2: edges = 3*3 + 2*4 = 17
        assert topo.edge_count == 17
        assert topo.distance(0, 11) == (3 - 1) + (4 - 1)

    def test_mesh_3d(self):
        topo = builders.mesh([2, 2, 2])
        topo.validate()
        assert topo.site_count == 8
        assert topo.edge_count == 12  # cube
        assert topo.distance(0, 7) == 3

    def test_mesh_rejects_empty(self):
        with pytest.raises(ValueError):
            builders.mesh([])

    def test_star(self):
        topo = builders.star(6)
        assert topo.site_count == 7
        assert topo.distance(1, 2) == 2

    def test_complete_binary_tree(self):
        topo = builders.complete_binary_tree(3)
        topo.validate()
        assert topo.site_count == 15
        assert topo.distance(0, 14) == 3  # root to deepest leaf

    def test_random_connected_is_connected(self):
        for seed in range(5):
            topo = builders.random_connected(30, extra_edges=10, seed=seed)
            topo.validate()
            assert topo.site_count == 30
            assert topo.edge_count >= 29

    def test_random_connected_deterministic(self):
        a = builders.random_connected(20, 5, seed=3)
        b = builders.random_connected(20, 5, seed=3)
        assert a.edges == b.edges


class TestFigure1:
    def test_geometry(self):
        topo, s, t, group = builders.figure1_topology(m=10, spur_length=3)
        topo.validate()
        assert topo.distance(s, t) == 1
        # Every u_i is equidistant from s and from t, farther than d(s,t).
        d_s = {topo.distance(s, u) for u in group}
        d_t = {topo.distance(t, u) for u in group}
        assert len(d_s) == 1 and d_s == d_t
        assert d_s.pop() > topo.distance(s, t)

    def test_group_members_are_sites_relays_are_not(self):
        topo, s, t, group = builders.figure1_topology(m=4)
        assert set(group) <= set(topo.sites)
        assert topo.site_count == 2 + 4
        assert topo.node_count > topo.site_count  # relays exist

    def test_q_based_selection_prefers_the_pair(self):
        """The defining property: under Q^-2, s picks t overwhelmingly."""
        from repro.topology.distance import SiteDistances
        from repro.topology.spatial import QPowerSelector

        topo, s, t, group = builders.figure1_topology(m=20)
        selector = QPowerSelector(SiteDistances(topo), a=2.0)
        assert selector.probability(s, t) > 0.9

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            builders.figure1_topology(m=0)
        with pytest.raises(ValueError):
            builders.figure1_topology(m=3, spur_length=0)


class TestFigure2:
    def test_geometry(self):
        topo, s, root = builders.figure2_topology(depth=3, spur_length=6)
        topo.validate()
        assert topo.distance(s, root) == 7
        assert topo.distance(s, root) > 3  # exceeds tree height

    def test_site_count(self):
        topo, s, root = builders.figure2_topology(depth=3, spur_length=6)
        assert topo.site_count == (2 ** 4 - 1) + 1

    def test_rejects_short_spur(self):
        with pytest.raises(ValueError):
            builders.figure2_topology(depth=5, spur_length=3)


class TestTwoClusters:
    def test_bridge_is_labeled_and_critical(self):
        topo, bridge = builders.two_clusters(10, 15, bridge_length=4)
        topo.validate()
        assert topo.labeled_edge("bridge") == bridge
        assert topo.site_count == 25
        # Every cross-cluster path uses the bridge link.
        path = topo.path(topo.sites[0], topo.sites[-1])
        edges = {tuple(sorted(e)) for e in zip(path, path[1:])}
        assert bridge in edges

    def test_bridge_length_one(self):
        topo, bridge = builders.two_clusters(3, 3, bridge_length=1)
        topo.validate()
        assert topo.labeled_edge("bridge") == bridge
