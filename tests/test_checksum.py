"""Database checksums: order independence, incrementality (Section 1.3)."""

import os
import subprocess
import sys

import pytest
from hypothesis import given, strategies as st

from repro.core.checksum import (
    ChecksumTree,
    DatabaseChecksum,
    encode_key,
    entry_digest,
    key_digest,
)


class TestEntryDigest:
    def test_deterministic(self):
        assert entry_digest("k", b"abc") == entry_digest("k", b"abc")

    def test_sensitive_to_key_and_content(self):
        base = entry_digest("k", b"abc")
        assert entry_digest("k2", b"abc") != base
        assert entry_digest("k", b"abd") != base

    def test_key_content_boundary_is_unambiguous(self):
        # ("ab", "c...") must not collide with ("a", "bc...").
        assert entry_digest("ab", b"c") != entry_digest("a", b"bc")

    def test_digest_width(self):
        assert 0 <= entry_digest("k", b"v") < 2 ** 128

    def test_string_and_int_keys_never_collide(self):
        # Regression: digesting repr(key) made "1" and 1 distinguishable
        # only by quoting conventions; the canonical JSON encoding keeps
        # them distinct by type.
        assert entry_digest("1", b"v") != entry_digest(1, b"v")

    def test_tuple_keys_digest_canonically(self):
        assert entry_digest(("a", 1), b"v") == entry_digest(("a", 1), b"v")
        assert entry_digest(("a", 1), b"v") != entry_digest(("a", "1"), b"v")


class TestEncodeKey:
    def test_strings_ints_floats_bools_tuples(self):
        for key in ("k", 7, 2.5, True, False, ("a", 1), ((1, 2), "x")):
            blob = encode_key(key)
            assert isinstance(blob, bytes)
            assert blob == encode_key(key)

    def test_distinct_keys_encode_distinctly(self):
        keys = ["1", 1, 1.5, True, ("1",), (1,), ("a", "b"), (("a",), "b")]
        encodings = {encode_key(key) for key in keys}
        assert len(encodings) == len(keys)

    def test_unencodable_keys_rejected(self):
        with pytest.raises(ValueError):
            encode_key(object())

    def test_digest_agrees_across_processes(self):
        """The digest must be a pure function of the key's content.

        ``repr``-based digests were content-determined too, but nothing
        guarded that property; run a child interpreter with a different
        hash seed (the classic way process-dependent state leaks in) and
        require identical digests for every key shape we support.
        """
        keys = ["printer:bldg-35", 42, 2.5, True, ("site", 7), "uniçode"]
        program = (
            "from repro.core.checksum import key_digest, entry_digest\n"
            "keys = ['printer:bldg-35', 42, 2.5, True, ('site', 7), 'uni\\u00e7ode']\n"
            "print([ (key_digest(k), entry_digest(k, b'payload')) for k in keys])\n"
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "12345"
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        result = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True, text=True, env=env, check=True,
        )
        theirs = eval(result.stdout.strip())  # noqa: S307 - our own output
        ours = [(key_digest(k), entry_digest(k, b"payload")) for k in keys]
        assert theirs == ours


class TestChecksumTree:
    def test_root_equals_whole_database_checksum(self):
        tree = ChecksumTree(bucket_bits=4)
        entries = [("a", b"1"), ("b", b"2"), (7, b"3"), (("t", 1), b"4")]
        for key, blob in entries:
            kd = key_digest(key)
            tree.apply(tree.bucket_of(kd), entry_digest(key, blob))
        assert tree.root == DatabaseChecksum.of(entries).value

    def test_apply_remove_round_trips(self):
        tree = ChecksumTree(bucket_bits=3)
        delta = entry_digest("k", b"v")
        bucket = tree.bucket_of(key_digest("k"))
        tree.apply(bucket, delta)
        tree.apply(bucket, delta)  # XOR: applying twice removes
        assert tree.root == 0
        assert all(tree.node(i) == 0 for i in range(1, 2 * tree.buckets))

    def test_internal_nodes_are_xor_of_children(self):
        tree = ChecksumTree(bucket_bits=5)
        for i in range(100):
            kd = key_digest(i)
            tree.apply(tree.bucket_of(kd), entry_digest(i, b"x"))
        for node in range(1, tree.buckets):
            left, right = tree.children(node)
            assert tree.node(node) == tree.node(left) ^ tree.node(right)

    def test_diff_buckets_finds_exactly_the_differences(self):
        a = ChecksumTree(bucket_bits=6)
        b = ChecksumTree(bucket_bits=6)
        for i in range(200):
            kd = key_digest(i)
            delta = entry_digest(i, b"shared")
            a.apply(a.bucket_of(kd), delta)
            b.apply(b.bucket_of(kd), delta)
        changed = {a.bucket_of(key_digest(f"extra-{j}")) for j in range(3)}
        for j in range(3):
            key = f"extra-{j}"
            a.apply(a.bucket_of(key_digest(key)), entry_digest(key, b"new"))
        dirty, comparisons = a.diff_buckets(b)
        assert set(dirty) == changed
        assert comparisons >= len(changed)

    def test_diff_of_equal_trees_is_empty(self):
        a = ChecksumTree(bucket_bits=4)
        b = ChecksumTree(bucket_bits=4)
        dirty, comparisons = a.diff_buckets(b)
        assert dirty == []
        assert comparisons == 1  # the root comparison prunes everything

    def test_diff_rejects_mismatched_bucket_counts(self):
        with pytest.raises(ValueError):
            ChecksumTree(bucket_bits=4).diff_buckets(ChecksumTree(bucket_bits=5))

    def test_single_bucket_tree(self):
        tree = ChecksumTree(bucket_bits=0)
        assert tree.buckets == 1
        assert tree.is_leaf(1)
        delta = entry_digest("k", b"v")
        tree.apply(0, delta)
        assert tree.root == delta


class TestDatabaseChecksum:
    def test_empty_checksum_is_zero(self):
        assert DatabaseChecksum().value == 0

    def test_add_remove_round_trips(self):
        checksum = DatabaseChecksum()
        checksum.add("k", b"v")
        checksum.remove("k", b"v")
        assert checksum.value == 0

    def test_order_independent(self):
        entries = [("a", b"1"), ("b", b"2"), ("c", b"3")]
        forward = DatabaseChecksum.of(entries)
        backward = DatabaseChecksum.of(reversed(entries))
        assert forward == backward

    def test_replace_equals_remove_then_add(self):
        a = DatabaseChecksum()
        a.add("k", b"old")
        a.replace("k", b"old", b"new")
        b = DatabaseChecksum.of([("k", b"new")])
        assert a == b

    def test_replace_with_no_previous(self):
        a = DatabaseChecksum()
        a.replace("k", None, b"new")
        assert a == DatabaseChecksum.of([("k", b"new")])

    def test_different_contents_differ(self):
        a = DatabaseChecksum.of([("k", b"1")])
        b = DatabaseChecksum.of([("k", b"2")])
        assert a != b

    def test_comparison_with_int(self):
        a = DatabaseChecksum.of([("k", b"1")])
        assert a == a.value
        assert not (a == a.value + 1)

    def test_copy_is_independent(self):
        a = DatabaseChecksum.of([("k", b"1")])
        b = a.copy()
        b.add("k2", b"2")
        assert a != b


class TestChecksumProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.binary(min_size=0, max_size=8)),
            max_size=40,
        )
    )
    def test_incremental_matches_batch(self, entries):
        incremental = DatabaseChecksum()
        for key, blob in entries:
            incremental.add(key, blob)
        assert incremental == DatabaseChecksum.of(entries)

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.binary(min_size=0, max_size=4)),
            max_size=30,
        ),
        st.randoms(use_true_random=False),
    )
    def test_shuffled_insertion_order_agrees(self, entries, rng):
        shuffled = list(entries)
        rng.shuffle(shuffled)
        assert DatabaseChecksum.of(entries) == DatabaseChecksum.of(shuffled)

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.binary(min_size=0, max_size=4)),
            min_size=1,
            max_size=30,
        )
    )
    def test_removing_everything_returns_to_zero(self, entries):
        checksum = DatabaseChecksum.of(entries)
        for key, blob in entries:
            checksum.remove(key, blob)
        assert checksum.value == 0
