"""Database checksums: order independence, incrementality (Section 1.3)."""

from hypothesis import given, strategies as st

from repro.core.checksum import DatabaseChecksum, entry_digest


class TestEntryDigest:
    def test_deterministic(self):
        assert entry_digest("k", b"abc") == entry_digest("k", b"abc")

    def test_sensitive_to_key_and_content(self):
        base = entry_digest("k", b"abc")
        assert entry_digest("k2", b"abc") != base
        assert entry_digest("k", b"abd") != base

    def test_key_content_boundary_is_unambiguous(self):
        # ("ab", "c...") must not collide with ("a", "bc...").
        assert entry_digest("ab", b"c") != entry_digest("a", b"bc")

    def test_digest_width(self):
        assert 0 <= entry_digest("k", b"v") < 2 ** 128


class TestDatabaseChecksum:
    def test_empty_checksum_is_zero(self):
        assert DatabaseChecksum().value == 0

    def test_add_remove_round_trips(self):
        checksum = DatabaseChecksum()
        checksum.add("k", b"v")
        checksum.remove("k", b"v")
        assert checksum.value == 0

    def test_order_independent(self):
        entries = [("a", b"1"), ("b", b"2"), ("c", b"3")]
        forward = DatabaseChecksum.of(entries)
        backward = DatabaseChecksum.of(reversed(entries))
        assert forward == backward

    def test_replace_equals_remove_then_add(self):
        a = DatabaseChecksum()
        a.add("k", b"old")
        a.replace("k", b"old", b"new")
        b = DatabaseChecksum.of([("k", b"new")])
        assert a == b

    def test_replace_with_no_previous(self):
        a = DatabaseChecksum()
        a.replace("k", None, b"new")
        assert a == DatabaseChecksum.of([("k", b"new")])

    def test_different_contents_differ(self):
        a = DatabaseChecksum.of([("k", b"1")])
        b = DatabaseChecksum.of([("k", b"2")])
        assert a != b

    def test_comparison_with_int(self):
        a = DatabaseChecksum.of([("k", b"1")])
        assert a == a.value
        assert not (a == a.value + 1)

    def test_copy_is_independent(self):
        a = DatabaseChecksum.of([("k", b"1")])
        b = a.copy()
        b.add("k2", b"2")
        assert a != b


class TestChecksumProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.binary(min_size=0, max_size=8)),
            max_size=40,
        )
    )
    def test_incremental_matches_batch(self, entries):
        incremental = DatabaseChecksum()
        for key, blob in entries:
            incremental.add(key, blob)
        assert incremental == DatabaseChecksum.of(entries)

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.binary(min_size=0, max_size=4)),
            max_size=30,
        ),
        st.randoms(use_true_random=False),
    )
    def test_shuffled_insertion_order_agrees(self, entries, rng):
        shuffled = list(entries)
        rng.shuffle(shuffled)
        assert DatabaseChecksum.of(entries) == DatabaseChecksum.of(shuffled)

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.binary(min_size=0, max_size=4)),
            min_size=1,
            max_size=30,
        )
    )
    def test_removing_everything_returns_to_zero(self, entries):
        checksum = DatabaseChecksum.of(entries)
        for key, blob in entries:
            checksum.remove(key, blob)
        assert checksum.value == 0
