"""The synthetic CIN topology (DESIGN.md substitution #1)."""

import pytest

from repro.topology.cin import CinParameters, build_cin_like_topology
from repro.topology.distance import SiteDistances


@pytest.fixture(scope="module")
def cin():
    return build_cin_like_topology()


class TestShape:
    def test_a_few_hundred_sites(self, cin):
        assert 200 <= cin.site_count <= 400

    def test_connected_and_valid(self, cin):
        cin.topology.validate()

    def test_europe_is_a_few_tens_of_sites(self, cin):
        assert 20 <= len(cin.europe_sites) <= 50
        assert len(cin.us_sites) > 4 * len(cin.europe_sites)

    def test_region_partition_covers_all_sites(self, cin):
        from itertools import chain

        region_sites = list(chain.from_iterable(cin.regions.values()))
        assert sorted(region_sites) == sorted(cin.sites)

    def test_paths_traverse_many_gateways(self, cin):
        distances = SiteDistances(cin.topology)
        assert distances.diameter() >= 10  # "as many as 14 gateways"

    def test_linear_chains_exist(self, cin):
        chains = [r for name, r in cin.regions.items() if name.startswith("chain")]
        assert chains
        distances = SiteDistances(cin.topology)
        for chain in chains:
            assert distances.distance(chain[0], chain[-1]) == len(chain) - 1


class TestTransatlanticLinks:
    def test_bushey_labeled(self, cin):
        assert cin.topology.labeled_edge("bushey") == cin.bushey
        assert cin.bushey in cin.transatlantic

    def test_transatlantic_links_are_the_only_routes_to_europe(self, cin):
        """Every US<->Europe path crosses one of the two links."""
        topo = cin.topology
        transatlantic = {tuple(sorted(e)) for e in cin.transatlantic}
        for eu_site in cin.europe_sites[:3]:
            for us_site in cin.us_sites[:5]:
                path = topo.path(us_site, eu_site)
                edges = {tuple(sorted(e)) for e in zip(path, path[1:])}
                assert edges & transatlantic

    def test_expected_uniform_load_formula(self, cin):
        """Sanity check of the paper's 2*n1*n2/(n1+n2) estimate: the
        total expected transatlantic conversations per uniform cycle."""
        n1 = len(cin.europe_sites)
        n2 = len(cin.us_sites)
        expected = 2 * n1 * n2 / (n1 + n2)
        assert expected > 20  # a genuinely hot pair of links


class TestDeterminism:
    def test_same_seed_same_network(self):
        a = build_cin_like_topology(CinParameters(seed=5))
        b = build_cin_like_topology(CinParameters(seed=5))
        assert a.topology.edges == b.topology.edges
        assert a.sites == b.sites

    def test_different_seed_different_network(self):
        a = build_cin_like_topology(CinParameters(seed=5))
        b = build_cin_like_topology(CinParameters(seed=6))
        assert a.topology.edges != b.topology.edges

    def test_parameters_scale_site_count(self):
        small = build_cin_like_topology(
            CinParameters(backbone_hubs=4, metro_ethernets=(2, 2),
                          sites_per_ethernet=(3, 3), linear_chains=1,
                          linear_chain_length=5, europe_ethernets=2)
        )
        assert small.site_count < 80
        small.topology.validate()
