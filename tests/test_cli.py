"""The command-line interface."""

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_known_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.experiment == "table1"
        assert args.runs == 10
        assert args.n == 1000

    def test_options(self):
        args = build_parser().parse_args(["table4", "--runs", "3", "--n", "200"])
        assert args.runs == 3
        assert args.n == 200

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])


class TestMain:
    def test_invalid_runs(self, capsys):
        assert main(["table1", "--runs", "0"]) == 2

    def test_invalid_n(self, capsys):
        assert main(["table1", "--n", "1"]) == 2

    def test_table1_small(self, capsys):
        assert main(["table1", "--runs", "1", "--n", "100"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "paper" in out
        assert "residue" in out

    def test_deathcerts(self, capsys):
        assert main(["deathcerts", "--runs", "1"]) == 0
        out = capsys.readouterr().out
        assert "naive delete" in out
        assert "dormant certificates" in out

    def test_backup(self, capsys):
        assert main(["backup", "--runs", "1", "--n", "60"]) == 0
        out = capsys.readouterr().out
        assert "redistribute-mail" in out

    def test_tau(self, capsys):
        assert main(["tau", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "checksum success" in out

    def test_pathologies(self, capsys):
        assert main(["pathologies", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "Figure 2" in out

    def test_every_command_is_wired(self):
        # Every command in the registry is reachable through the parser.
        parser = build_parser()
        for name in COMMANDS:
            assert parser.parse_args([name]).experiment == name


class TestRemainingCommands:
    def test_table2_and_table3(self, capsys):
        assert main(["table2", "--runs", "1", "--n", "100"]) == 0
        assert main(["table3", "--runs", "1", "--n", "100"]) == 0
        out = capsys.readouterr().out
        assert "blind+coin" in out
        assert "pull" in out

    def test_table4_and_table5(self, capsys):
        assert main(["table4", "--runs", "1"]) == 0
        assert main(["table5", "--runs", "1"]) == 0
        out = capsys.readouterr().out
        assert "no connection limit" in out
        assert "connection limit 1" in out
        assert "uniform" in out

    def test_line(self, capsys):
        assert main(["line", "--runs", "3"]) == 0
        out = capsys.readouterr().out
        assert "d^-a on a line" in out

    def test_hierarchy(self, capsys):
        assert main(["hierarchy", "--runs", "1"]) == 0
        out = capsys.readouterr().out
        assert "hierarchy" in out


class TestTraceAnalyze:
    def trace_file(self, tmp_path):
        from repro.cluster.cluster import Cluster
        from repro.obs.events import EventKind, HARNESS_NODE, JsonlTraceWriter
        from repro.protocols.direct_mail import DirectMailProtocol

        path = tmp_path / "run.jsonl"
        cluster = Cluster(n=4, seed=0)
        cluster.add_protocol(DirectMailProtocol())
        with JsonlTraceWriter(path) as writer:
            cluster.bus.add_sink(writer)
            cluster.bus.emit(EventKind.RUN_STARTED, node=HARNESS_NODE, n=4, key="k")
            cluster.inject_update(0, "k", "v")
            cluster.run_cycle()
        return path

    def test_renders_the_tree(self, tmp_path, capsys):
        path = self.trace_file(tmp_path)
        assert main(["trace", "analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "trace analysis" in out
        assert "[complete]" in out
        assert "anomalies: none" in out

    def test_json_output(self, tmp_path, capsys):
        import json

        path = self.trace_file(tmp_path)
        assert main(["trace", "analyze", str(path), "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["n"] == 4
        assert len(blob["traces"]) == 1
        assert blob["traces"][0]["infected"] == [0, 1, 2, 3]

    def test_usage_errors(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["trace"])
        with pytest.raises(SystemExit):
            main(["trace", "summarize", "x.jsonl"])
        with pytest.raises(SystemExit):
            main(["trace", "analyze", str(tmp_path / "missing.jsonl")])

    def test_stray_arguments_on_other_commands_rejected(self, capsys):
        assert main(["table1", "analyze"]) == 2
