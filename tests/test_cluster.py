"""The cluster runtime: cycles, injection, tracking, accounting."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.store import ApplyResult
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.base import ExchangeMode, Protocol
from repro.topology import builders


class TestConstruction:
    def test_n_sites_without_topology(self):
        cluster = Cluster(n=5, seed=0)
        assert cluster.n == 5
        assert cluster.site_ids == [0, 1, 2, 3, 4]

    def test_topology_sites(self):
        cluster = Cluster(topology=builders.line(4), seed=0)
        assert cluster.n == 4

    def test_requires_topology_or_n(self):
        with pytest.raises(ValueError):
            Cluster()

    def test_n_must_match_topology(self):
        with pytest.raises(ValueError):
            Cluster(topology=builders.line(4), n=5)

    def test_each_site_has_own_rng_and_clock(self):
        cluster = Cluster(n=3, seed=0)
        rngs = {id(cluster.sites[i].rng) for i in range(3)}
        assert len(rngs) == 3
        stamps = {cluster.sites[i].clock.next_timestamp() for i in range(3)}
        assert len(stamps) == 3

    def test_clock_skew_applied(self):
        cluster = Cluster(n=2, seed=0, clock_skew=lambda site: 0.1 * site)
        assert cluster.sites[0].clock.now() == 0.0
        assert cluster.sites[1].clock.now() == pytest.approx(0.1)


class TestInjection:
    def test_update_lands_locally(self):
        cluster = Cluster(n=3, seed=0)
        cluster.inject_update(1, "k", "v")
        assert cluster.sites[1].store.get("k") == "v"
        assert cluster.sites[0].store.get("k") is None

    def test_update_notifies_protocols(self):
        seen = []

        class Recorder(Protocol):
            def on_local_update(self, site_id, update):
                seen.append((site_id, update.key))

        cluster = Cluster(n=3, seed=0)
        cluster.add_protocol(Recorder())
        cluster.inject_update(2, "k", "v")
        assert seen == [(2, "k")]

    def test_delete_samples_retention_sites(self):
        cluster = Cluster(n=10, seed=0)
        update = cluster.inject_delete(0, "k", retention_count=3)
        assert len(update.entry.retention_sites) == 3
        assert set(update.entry.retention_sites) <= set(cluster.site_ids)

    def test_retention_count_capped_at_n(self):
        cluster = Cluster(n=3, seed=0)
        update = cluster.inject_delete(0, "k", retention_count=50)
        assert len(update.entry.retention_sites) == 3

    def test_tracked_injection_creates_metrics(self):
        cluster = Cluster(n=4, seed=0)
        cluster.inject_update(1, "k", "v", track=True)
        assert cluster.metrics is not None
        assert cluster.metrics.infected == 1
        assert 1 in cluster.metrics.receipt_times


class TestTimeAdvance:
    def test_run_cycle_advances_time(self):
        cluster = Cluster(n=2, seed=0)
        cluster.run_cycles(3)
        assert cluster.cycle == 3
        assert cluster.simulator.now == 3.0

    def test_site_clocks_follow_cycles(self):
        cluster = Cluster(n=2, seed=0)
        cluster.run_cycles(5)
        assert cluster.sites[0].clock.now() == 5.0

    def test_run_until_raises_on_bound(self):
        cluster = Cluster(n=2, seed=0)
        with pytest.raises(RuntimeError):
            cluster.run_until(lambda: False, max_cycles=5)

    def test_run_until_counts_cycles(self):
        cluster = Cluster(n=2, seed=0)
        ran = cluster.run_until(lambda: cluster.cycle >= 4, max_cycles=10)
        assert ran == 4

    def test_protocols_run_each_cycle(self):
        calls = []

        class Recorder(Protocol):
            def run_cycle(self, cycle):
                calls.append(cycle)

        cluster = Cluster(n=2, seed=0)
        cluster.add_protocol(Recorder())
        cluster.run_cycles(3)
        assert calls == [1, 2, 3]


class TestNewsFanout:
    def test_apply_at_notifies_other_protocols_not_source(self):
        log = []

        class Recorder(Protocol):
            def __init__(self, name):
                super().__init__()
                self.name = name

            def on_news(self, site_id, update, result):
                log.append(self.name)

        a = Recorder("a")
        b = Recorder("b")
        cluster = Cluster(n=2, seed=0)
        cluster.add_protocol(a)
        cluster.add_protocol(b)
        update = cluster.sites[0].store.update("k", "v")
        cluster.apply_at(1, update, via=a)
        assert log == ["b"]

    def test_apply_at_suppresses_notification_for_stale(self):
        log = []

        class Recorder(Protocol):
            def on_news(self, site_id, update, result):
                log.append(site_id)

        cluster = Cluster(n=2, seed=0)
        cluster.add_protocol(Recorder())
        newer = cluster.sites[0].store.update("k", "v2")
        cluster.apply_at(1, newer, via=None)
        older = cluster.sites[0].store  # build an older update artificially
        assert log == [1]
        result = cluster.apply_at(1, newer, via=None)
        assert result is ApplyResult.EQUAL
        assert log == [1]  # no duplicate notification

    def test_observers_see_news(self):
        seen = []
        cluster = Cluster(n=2, seed=0)
        cluster.add_observer(lambda site, update, result: seen.append(site))
        update = cluster.sites[0].store.update("k", "v")
        cluster.apply_at(1, update, via=None)
        assert seen == [1]

    def test_protocol_cannot_attach_twice(self):
        cluster = Cluster(n=2, seed=0)
        protocol = Protocol()
        cluster.add_protocol(protocol)
        with pytest.raises(RuntimeError):
            cluster.add_protocol(protocol)


class TestAccounting:
    def test_comparison_routed_over_topology(self):
        cluster = Cluster(topology=builders.line(4), seed=0)
        cluster.inject_update(0, "k", "v", track=True)
        cluster.count_comparison(0, 3)
        assert cluster.traffic.compare.total == 3  # three links en route
        assert cluster.metrics.comparisons == 1

    def test_update_sends_routed_and_counted(self):
        cluster = Cluster(topology=builders.line(3), seed=0)
        cluster.inject_update(0, "k", "v", track=True)
        cluster.count_update_sends(0, 2, count=2)
        assert cluster.traffic.update.total == 4  # 2 sends x 2 links
        assert cluster.metrics.update_sends == 2

    def test_zero_sends_ignored(self):
        cluster = Cluster(topology=builders.line(3), seed=0)
        cluster.count_update_sends(0, 2, count=0)
        assert cluster.traffic.update.total == 0

    def test_no_routing_without_edges(self):
        cluster = Cluster(n=3, seed=0)
        cluster.inject_update(0, "k", "v", track=True)
        cluster.count_update_sends(0, 2)
        assert cluster.metrics.update_sends == 1
        assert cluster.traffic.update.total == 0


class TestConsistencyChecks:
    def test_converged_on_identical_stores(self):
        cluster = Cluster(n=3, seed=0)
        assert cluster.converged()  # all empty
        update = cluster.inject_update(0, "k", "v")
        assert not cluster.converged()
        for site in (1, 2):
            cluster.sites[site].store.apply_entry(update.key, update.entry)
        assert cluster.converged()

    def test_converged_subset(self):
        cluster = Cluster(n=3, seed=0)
        update = cluster.inject_update(0, "k", "v")
        cluster.sites[1].store.apply_entry(update.key, update.entry)
        assert cluster.converged([0, 1])
        assert not cluster.converged([0, 2])

    def test_infected_sites(self):
        cluster = Cluster(n=3, seed=0)
        update = cluster.inject_update(0, "k", "v")
        cluster.sites[2].store.apply_entry(update.key, update.entry)
        assert cluster.infected_sites(update) == [0, 2]

    def test_values_of(self):
        cluster = Cluster(n=2, seed=0)
        cluster.inject_update(0, "k", "v")
        assert cluster.values_of("k") == {0: "v", 1: None}

    def test_up_site_ids_excludes_down(self):
        cluster = Cluster(n=3, seed=0)
        cluster.sites[1].up = False
        assert cluster.up_site_ids() == [0, 2]


class TestDeterminism:
    def test_same_seed_same_run(self):
        def run(seed):
            cluster = Cluster(n=40, seed=seed)
            cluster.add_protocol(
                AntiEntropyProtocol(config=AntiEntropyConfig(mode=ExchangeMode.PUSH))
            )
            cluster.inject_update(0, "k", "v", track=True)
            cluster.run_until(lambda: cluster.metrics.infected == 40, max_cycles=100)
            return (cluster.cycle, dict(cluster.metrics.receipt_times))

        assert run(11) == run(11)

    def test_different_seed_different_run(self):
        def run(seed):
            cluster = Cluster(n=40, seed=seed)
            cluster.add_protocol(
                AntiEntropyProtocol(config=AntiEntropyConfig(mode=ExchangeMode.PUSH))
            )
            cluster.inject_update(0, "k", "v", track=True)
            cluster.run_until(lambda: cluster.metrics.infected == 40, max_cycles=100)
            return dict(cluster.metrics.receipt_times)

        assert run(11) != run(12)


class TestUsefulUpdateAccounting:
    def test_useful_counter_routed(self):
        from repro.topology import builders

        cluster = Cluster(topology=builders.line(3), seed=0)
        cluster.count_useful_update_send(0, 2)
        assert cluster.traffic.useful_update.total == 2  # two links en route
        cluster.count_useful_update_send(0, 2, count=0)
        assert cluster.traffic.useful_update.total == 2

    def test_rumor_protocol_separates_useful_from_gross(self):
        from repro.protocols.rumor import RumorConfig, RumorMongeringProtocol
        from repro.topology import builders

        cluster = Cluster(topology=builders.line(2), seed=1)
        protocol = RumorMongeringProtocol(RumorConfig(mode=ExchangeMode.PUSH, k=9))
        cluster.add_protocol(protocol)
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_cycle()   # useful delivery 0 -> 1
        assert cluster.traffic.useful_update.total == 1
        cluster.run_cycle()   # both push uselessly
        assert cluster.traffic.useful_update.total == 1
        assert cluster.traffic.update.total == 3
