"""Many concurrent epidemics: the multi-update regime.

The paper's tables track one update, but its motivation is a live
database with "a reasonable update rate": many rumors in flight at
once, sharing conversations. These tests verify that concurrency does
not break per-update behavior — each update still spreads, rumor lists
carry multiple entries per conversation, and the pull variant's
stated advantage (a pull request usually finds a non-empty rumor
list under load) shows up as measured efficiency.
"""

from repro.cluster.cluster import Cluster
from repro.protocols.base import ExchangeMode
from repro.protocols.rumor import RumorConfig, RumorMongeringProtocol
from repro.sim.tracing import NewsLog


def rumor_cluster_with_log(n, config, seed=0):
    cluster = Cluster(n=n, seed=seed)
    log = NewsLog()
    cluster.add_protocol(log)
    rumor = RumorMongeringProtocol(config)
    cluster.add_protocol(rumor)
    return cluster, rumor, log


class TestConcurrentSpread:
    def test_ten_concurrent_updates_each_spread_widely(self):
        n, updates = 400, 10
        cluster, rumor, log = rumor_cluster_with_log(
            n, RumorConfig(mode=ExchangeMode.PUSH_PULL, k=3), seed=1
        )
        for i in range(updates):
            cluster.inject_update(i * 7 % n, f"key-{i}", i)
        cluster.run_until(lambda: not rumor.active, max_cycles=200)
        for i in range(updates):
            receipts = log.first_receipts(f"key-{i}")
            coverage = (len(receipts) + 1) / n  # +1 for the origin
            assert coverage > 0.95, f"key-{i} reached only {coverage:.0%}"

    def test_staggered_injection_under_continuous_load(self):
        """Updates injected over time, two per cycle, all delivered."""
        n = 300
        cluster, rumor, log = rumor_cluster_with_log(
            n, RumorConfig(mode=ExchangeMode.PULL, k=3), seed=2
        )
        total = 20
        for i in range(total):
            cluster.inject_update((13 * i) % n, f"key-{i}", i)
            if i % 2 == 1:
                cluster.run_cycle()
        cluster.run_until(lambda: not rumor.active, max_cycles=200)
        missing = [
            i
            for i in range(total)
            if (len(log.first_receipts(f"key-{i}")) + 1) / n < 0.95
        ]
        assert not missing, f"under-covered keys: {missing}"

    def test_conversations_batch_multiple_rumors(self):
        """With many hot rumors, one conversation ships several updates:
        updates_sent greatly exceeds conversations."""
        cluster, rumor, log = rumor_cluster_with_log(
            200, RumorConfig(mode=ExchangeMode.PUSH, k=3), seed=3
        )
        for i in range(8):
            cluster.inject_update(0, f"key-{i}", i)  # all hot at one site
        cluster.run_cycles(4)
        assert rumor.stats.updates_sent > 2 * rumor.stats.conversations

    def test_pull_is_fruitful_under_load(self):
        """The paper's rationale for pull on the CIN: with numerous
        independent updates, a pull request usually finds a non-empty
        rumor list.  Measure the fraction of pull conversations that
        shipped at least one update early in a busy epidemic."""
        n = 300
        cluster, rumor, log = rumor_cluster_with_log(
            n, RumorConfig(mode=ExchangeMode.PULL, k=2), seed=4
        )
        for i in range(30):
            cluster.inject_update((11 * i) % n, f"key-{i}", i)
        cluster.run_cycles(6)
        busy_sends = rumor.stats.updates_sent
        busy_conversations = rumor.stats.conversations
        # Under load a meaningful share of requests found rumors.
        assert busy_sends > 0.2 * busy_conversations

    def test_quiescent_pull_is_pure_overhead(self):
        """The flip side: with no updates, pull's requests ship nothing
        cycle after cycle (push would go silent)."""
        cluster, rumor, log = rumor_cluster_with_log(
            100, RumorConfig(mode=ExchangeMode.PULL, k=2), seed=5
        )
        cluster.run_cycles(5)
        assert rumor.stats.conversations == 500
        assert rumor.stats.updates_sent == 0

    def test_each_update_keeps_independent_counters(self):
        """Two rumors at one site deactivate independently: the older
        one can die while the newer stays hot."""
        cluster, rumor, log = rumor_cluster_with_log(
            2, RumorConfig(mode=ExchangeMode.PUSH, k=1), seed=6
        )
        cluster.inject_update(0, "old", 1)
        cluster.run_cycles(2)  # "old" delivered, then useless -> dying
        cluster.inject_update(0, "new", 2)
        hot = rumor.hot_rumors(0)
        if "old" in hot:
            # Not yet deactivated: at least its counter exceeds new's.
            assert hot["old"].counter >= hot["new"].counter
        assert "new" in hot
        cluster.run_until(lambda: not rumor.active, max_cycles=50)
        assert cluster.converged()
