"""Death certificates end to end (Section 2)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.base import ExchangeMode
from repro.protocols.deathcerts import CertificatePolicy, DeathCertificateManager
from repro.protocols.rumor import RumorConfig, RumorMongeringProtocol


def certificate_cluster(n=20, tau1=8.0, tau2=500.0, seed=0):
    cluster = Cluster(n=n, seed=seed)
    cluster.add_protocol(
        AntiEntropyProtocol(config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL))
    )
    manager = DeathCertificateManager(CertificatePolicy(tau1=tau1, tau2=tau2))
    cluster.add_protocol(manager)
    return cluster, manager


class TestPolicyValidation:
    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            CertificatePolicy(tau1=0.0)
        with pytest.raises(ValueError):
            CertificatePolicy(tau1=1.0, tau2=-1.0)
        with pytest.raises(ValueError):
            CertificatePolicy(tau1=1.0, sweep_period=0)

    def test_space_budget_formula(self):
        # tau2 = (tau - tau1) * n / r
        assert CertificatePolicy.space_budget_equivalent(30, 10, 300, 4) == 1500.0
        with pytest.raises(ValueError):
            CertificatePolicy.space_budget_equivalent(5, 10, 300, 4)
        with pytest.raises(ValueError):
            CertificatePolicy.space_budget_equivalent(30, 10, 300, 0)


class TestDeletionSpreads:
    def test_delete_propagates_to_all_sites(self):
        cluster, manager = certificate_cluster()
        cluster.inject_update(0, "x", "v")
        cluster.run_until(cluster.converged, max_cycles=60)
        cluster.inject_delete(3, "x")
        cluster.run_until(cluster.converged, max_cycles=60)
        assert all(v is None for v in cluster.values_of("x").values())

    def test_deleted_item_not_resurrected_by_straggler_copy(self):
        cluster, manager = certificate_cluster()
        cluster.inject_update(0, "x", "v")
        cluster.run_until(cluster.converged, max_cycles=60)
        cluster.inject_delete(0, "x")
        # While certificates are alive everywhere, an old copy coming
        # from a store replica cannot win.
        cluster.run_until(cluster.converged, max_cycles=60)
        assert all(v is None for v in cluster.values_of("x").values())

    def test_certificates_expire_after_tau1(self):
        cluster, manager = certificate_cluster(tau1=5.0)
        cluster.inject_delete(0, "x")
        cluster.run_until(cluster.converged, max_cycles=40)
        cluster.run_cycles(10)
        census = manager.certificate_census()
        assert census["active"] == 0
        assert manager.stats.expired > 0

    def test_sweep_period_respected(self):
        cluster = Cluster(n=5, seed=0)
        manager = DeathCertificateManager(
            CertificatePolicy(tau1=2.0, sweep_period=4)
        )
        cluster.add_protocol(manager)
        cluster.inject_delete(0, "x")
        cluster.run_cycles(3)   # cycles 1-3: no sweep multiple of 4
        assert manager.stats.expired == 0
        cluster.run_cycles(1)   # cycle 4 sweeps
        assert manager.stats.expired == 1


class TestDormantLifecycle:
    def test_retention_sites_keep_dormant_copies(self):
        cluster, manager = certificate_cluster(tau1=5.0)
        update = cluster.inject_delete(0, "x", retention_count=3)
        retention = set(update.entry.retention_sites)
        cluster.run_until(cluster.converged, max_cycles=40)
        cluster.run_cycles(8)
        census = manager.certificate_census()
        assert census["active"] == 0
        assert census["dormant"] == len(retention)
        for site_id in retention:
            assert cluster.sites[site_id].store.dormant_certificate("x") is not None

    def test_reactivation_spreads_to_all_sites(self):
        cluster, manager = certificate_cluster(tau1=5.0, seed=3)
        update = cluster.inject_delete(0, "x", retention_count=3)
        cluster.run_until(cluster.converged, max_cycles=40)
        cluster.run_cycles(8)   # certificates now dormant/gone
        # A zombie copy of the deleted item appears at one site.
        zombie = cluster.sites[7].store
        from repro.core.items import VersionedValue
        from repro.core.timestamps import Timestamp

        zombie.apply_entry("x", VersionedValue("zombie", Timestamp(-1.0, 7, 0)))
        cluster.run_until(
            lambda: manager.stats.reactivations > 0, max_cycles=100
        )
        cluster.run_until(
            lambda: all(v is None for v in cluster.values_of("x").values()),
            max_cycles=100,
        )

    def test_manager_reinjects_reactivated_certificate_as_rumor(self):
        cluster = Cluster(n=20, seed=5)
        rumor = RumorMongeringProtocol(
            RumorConfig(mode=ExchangeMode.PUSH_PULL, k=3)
        )
        manager = DeathCertificateManager(CertificatePolicy(tau1=5.0, tau2=500.0))
        cluster.add_protocol(rumor)
        cluster.add_protocol(manager)
        update = cluster.inject_delete(0, "x", retention_count=2)
        cluster.run_until(lambda: not rumor.active, max_cycles=60)
        cluster.run_cycles(8)  # certificates dormant at retention sites
        retention_site = update.entry.retention_sites[0]
        from repro.core.items import VersionedValue
        from repro.core.timestamps import Timestamp

        # Obsolete data hits the retention site directly.
        result = cluster.apply_at(
            retention_site,
            type(update)(key="x", entry=VersionedValue("zombie", Timestamp(-1.0, 9, 0))),
            via=None,
        )
        assert manager.stats.reactivations == 1
        # The awakened certificate is hot again and spreads.
        assert rumor.is_infective(retention_site, "x")
        cluster.run_until(lambda: not rumor.active, max_cycles=100)
        assert all(v is None for v in cluster.values_of("x").values())


class TestScenarioDrivers:
    def test_naive_delete_resurrects(self):
        from repro.experiments.deathcert_scenarios import resurrection_scenario

        assert resurrection_scenario(use_certificate=False).resurrected

    def test_certificate_prevents_resurrection(self):
        from repro.experiments.deathcert_scenarios import resurrection_scenario

        assert not resurrection_scenario(use_certificate=True).resurrected

    def test_fixed_threshold_eventually_fails(self):
        from repro.experiments.deathcert_scenarios import fixed_threshold_scenario

        assert fixed_threshold_scenario().resurrected

    def test_dormant_certificates_prevent_late_resurrection(self):
        from repro.experiments.deathcert_scenarios import dormant_certificate_scenario

        result = dormant_certificate_scenario()
        assert not result.resurrected
        assert result.reactivations > 0

    def test_reinstatement_survives_reactivation(self):
        from repro.experiments.deathcert_scenarios import reinstatement_scenario

        result = reinstatement_scenario()
        assert result.value_visible_everywhere
        assert result.reactivations > 0


class TestClockSkew:
    def test_small_skew_does_not_break_certificates(self):
        """Section 2 assumes clock error epsilon << tau1; with skew a
        tenth of tau1 the dormant scheme still blocks resurrection."""
        from repro.cluster.cluster import Cluster

        n = 20
        cluster = Cluster(
            n=n, seed=40, clock_skew=lambda site: 0.5 * (site % 3 - 1)
        )
        cluster.add_protocol(
            AntiEntropyProtocol(
                config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL)
            )
        )
        manager = DeathCertificateManager(CertificatePolicy(tau1=10.0, tau2=500.0))
        cluster.add_protocol(manager)
        cluster.inject_update(0, "x", "v")
        cluster.run_until(cluster.converged, max_cycles=60)
        straggler = n - 1
        cluster.sites[straggler].up = False
        cluster.inject_delete(0, "x", retention_count=4)
        cluster.run_until(
            lambda: cluster.converged(cluster.up_site_ids()), max_cycles=60
        )
        cluster.run_cycles(13)
        cluster.sites[straggler].up = True
        cluster.run_until(cluster.converged, max_cycles=400)
        assert all(v is None for v in cluster.values_of("x").values())

    def test_skewed_clocks_still_converge_on_lww(self):
        from repro.cluster.cluster import Cluster

        cluster = Cluster(n=10, seed=41, clock_skew=lambda site: 0.3 * site)
        cluster.add_protocol(
            AntiEntropyProtocol(
                config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL)
            )
        )
        cluster.inject_update(9, "k", "from-fast-clock")
        cluster.run_cycle()
        cluster.inject_update(0, "k", "from-slow-clock")
        cluster.run_until(cluster.converged, max_cycles=60)
        # Everyone agrees — on *some* value; with skewed clocks the
        # "formally but not practically correct" caveat of Section 1.1
        # means the later real-time write can lose.
        assert len(set(cluster.values_of("k").values())) == 1
