"""Direct mail (Section 1.2): timely, O(n) messages, fallible."""

import pytest

from repro.cluster.cluster import Cluster
from repro.protocols.direct_mail import DirectMailProtocol


def mail_cluster(n=10, seed=0, **kwargs):
    cluster = Cluster(n=n, seed=seed)
    protocol = DirectMailProtocol(**kwargs)
    cluster.add_protocol(protocol)
    return cluster, protocol


class TestHappyPath:
    def test_update_reaches_everyone_next_cycle(self):
        cluster, protocol = mail_cluster(n=10)
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_cycle()
        assert cluster.metrics.complete
        assert all(v == "v" for v in cluster.values_of("k").values())

    def test_costs_n_minus_one_messages(self):
        cluster, protocol = mail_cluster(n=10)
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_cycle()
        assert cluster.metrics.update_sends == 9
        assert protocol.mail.stats.posted == 9

    def test_newer_update_supersedes_in_flight(self):
        cluster, protocol = mail_cluster(n=5)
        cluster.inject_update(0, "k", "v1")
        cluster.inject_update(0, "k", "v2")
        cluster.run_cycle()
        assert all(v == "v2" for v in cluster.values_of("k").values())

    def test_concurrent_updates_resolve_by_timestamp(self):
        cluster, protocol = mail_cluster(n=5)
        cluster.inject_update(0, "k", "from-0")
        cluster.inject_update(1, "k", "from-1")
        cluster.run_cycle()
        values = set(cluster.values_of("k").values())
        assert len(values) == 1  # everyone agrees on the LWW winner

    def test_not_active_after_delivery(self):
        cluster, protocol = mail_cluster(n=4)
        cluster.inject_update(0, "k", "v")
        assert protocol.active
        cluster.run_cycle()
        assert not protocol.active


class TestFailureModes:
    def test_mail_loss_leaves_sites_susceptible(self):
        cluster, protocol = mail_cluster(n=100, loss_probability=0.3, seed=5)
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_cycles(2)
        assert 0 < cluster.metrics.residue < 1
        assert protocol.mail.stats.dropped_loss > 0

    def test_incomplete_site_knowledge(self):
        cluster, protocol = mail_cluster(n=50, known_fraction=0.5, seed=5)
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_cycles(2)
        # Only about half the sites were even addressed.
        assert cluster.metrics.update_sends < 35
        assert cluster.metrics.residue > 0.2

    def test_known_fraction_validated(self):
        with pytest.raises(ValueError):
            DirectMailProtocol(known_fraction=0.0)

    def test_mailbox_overflow(self):
        cluster, protocol = mail_cluster(n=5, mailbox_capacity=2)
        # Three updates -> three letters per destination; one overflows.
        for i in range(3):
            cluster.inject_update(0, f"k{i}", i)
        cluster.run_cycle()
        assert protocol.mail.stats.dropped_overflow > 0

    def test_down_site_misses_mail(self):
        cluster, protocol = mail_cluster(n=5)
        cluster.sites[3].up = False
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_cycle()
        assert cluster.sites[3].store.get("k") is None
        assert 3 not in cluster.metrics.receipt_times


class TestRemailOption:
    def test_remail_disabled_by_default(self):
        cluster, protocol = mail_cluster(n=5)
        assert not protocol.remail_on_news

    def test_remail_triggers_on_news(self):
        cluster, protocol = mail_cluster(n=5, remail_on_news=True)
        update = cluster.sites[0].store.update("k", "v")
        posted_before = protocol.mail.stats.posted
        cluster.apply_at(2, update, via=None)  # news from another protocol
        assert protocol.mail.stats.posted == posted_before + 4
