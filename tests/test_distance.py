"""Site distances and Q_s(d) (Section 3)."""

import pytest

from repro.topology import builders
from repro.topology.distance import SiteDistances
from repro.topology.graph import Topology


class TestSiteDistances:
    def test_line_distances(self):
        d = SiteDistances(builders.line(5))
        assert d.distance(0, 4) == 4
        assert d.distance(3, 1) == 2
        assert d.site_count == 5

    def test_ignores_non_site_nodes_in_q(self):
        topo = Topology()
        topo.add_node(0, site=True)
        topo.add_node(1)  # relay, not a site
        topo.add_node(2, site=True)
        topo.add_edge(0, 1)
        topo.add_edge(1, 2)
        d = SiteDistances(topo)
        assert d.q(0, 1) == 0   # the relay does not count
        assert d.q(0, 2) == 1

    def test_disconnected_sites_rejected(self):
        topo = Topology()
        topo.add_edge(0, 1)
        topo.add_node(2, site=True)
        topo.add_node(0, site=True)
        with pytest.raises(ValueError):
            SiteDistances(topo)


class TestQFunction:
    def test_q_on_line(self):
        # On a line from site 2 of 0..4: Q(1)=2, Q(2)=4.
        d = SiteDistances(builders.line(5))
        assert d.q(2, 0) == 0
        assert d.q(2, 1) == 2
        assert d.q(2, 2) == 4
        assert d.q(2, 99) == 4

    def test_q_negative_distance(self):
        d = SiteDistances(builders.line(3))
        assert d.q(0, -1) == 0

    def test_q_monotone_nondecreasing(self):
        d = SiteDistances(builders.grid(4, 4))
        for s in d.sites:
            values = [d.q(s, dist) for dist in range(10)]
            assert values == sorted(values)
            assert values[-1] == d.site_count - 1

    def test_q_growth_tracks_mesh_dimension(self):
        """Q(d) ~ d on a line but ~ d^2 on a 2-D mesh (the local-
        dimension adaptation the paper's distributions rely on)."""
        line = SiteDistances(builders.line(101))
        center_line = 50
        mesh = SiteDistances(builders.grid(21, 21))
        center_mesh = mesh.sites[10 * 21 + 10]
        # Compare growth ratio Q(8)/Q(4): ~2 on the line, ~4 on the mesh.
        line_ratio = line.q(center_line, 8) / line.q(center_line, 4)
        mesh_ratio = mesh.q(center_mesh, 8) / mesh.q(center_mesh, 4)
        assert line_ratio == pytest.approx(2.0, rel=0.05)
        assert mesh_ratio == pytest.approx(4.0, rel=0.25)


class TestSortedViews:
    def test_others_by_distance_sorted(self):
        d = SiteDistances(builders.line(6))
        others, dists = d.others_by_distance(0)
        assert dists == sorted(dists)
        assert others == [1, 2, 3, 4, 5]

    def test_histogram_sums_to_population(self):
        d = SiteDistances(builders.grid(3, 3))
        for s in d.sites:
            histogram = d.distance_histogram(s)
            assert sum(count for __, count in histogram) == 8

    def test_eccentricity_and_diameter(self):
        d = SiteDistances(builders.line(7))
        assert d.eccentricity(0) == 6
        assert d.eccentricity(3) == 3
        assert d.diameter() == 6

    def test_mean_distance_on_pair(self):
        d = SiteDistances(builders.line(2))
        assert d.mean_distance() == 1.0
