"""The discrete-event engine: ordering, cancellation, determinism."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        log = []
        for name in "abcde":
            sim.schedule(1.0, lambda n=name: log.append(n))
        sim.run()
        assert log == list("abcde")

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(ValueError):
            sim.schedule_at(5.0, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.schedule(2.0, lambda: log.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 3.0)]


class TestRunControl:
    def test_run_until_stops_at_horizon(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(5.0, lambda: log.append(5))
        executed = sim.run(until=3.0)
        assert executed == 1
        assert log == [1]
        assert sim.now == 3.0           # time advances to the horizon
        assert sim.pending == 1

    def test_run_until_resumes(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda: log.append(5))
        sim.run(until=3.0)
        sim.run(until=10.0)
        assert log == [5]

    def test_max_events_bound(self):
        sim = Simulator()
        counter = []

        def recurring():
            counter.append(1)
            sim.schedule(1.0, recurring)

        sim.schedule(1.0, recurring)
        executed = sim.run(max_events=10)
        assert executed == 10

    def test_run_until_quiescent_raises_on_runaway(self):
        sim = Simulator()

        def recurring():
            sim.schedule(1.0, recurring)

        sim.schedule(1.0, recurring)
        with pytest.raises(RuntimeError):
            sim.run_until_quiescent(max_events=100)

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert sim.step() is False
        sim.schedule(1.0, lambda: None)
        assert sim.step() is True
        assert sim.step() is False


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        log = []
        event = sim.schedule(1.0, lambda: log.append("cancelled"))
        sim.schedule(2.0, lambda: log.append("kept"))
        sim.cancel(event)
        sim.run()
        assert log == ["kept"]

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.cancel(event)
        sim.cancel(event)
        sim.run()
        assert sim.processed == 0

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        sim.cancel(event)
        assert sim.pending == 1
