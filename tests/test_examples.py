"""Smoke tests: every example script runs to completion and prints its
headline result.  Guards the repository's runnable-examples promise."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXPECTED_MARKERS = {
    "quickstart.py": "converged after",
    "rumor_variants.py": "residue",
    "death_certificates.py": "resurrected=False",
    "spatial_tuning.py": "asymptotic T(n)",
    "clearinghouse.py": "transatlantic (Bushey)",
    "nameservice.py": "all domains consistent",
    "epidemic_curves.py": "final residue",
    "operations.py": "all consistent",
    "live_cluster.py": "live cluster converged",
}


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{name} exited {result.returncode}:\n{result.stderr[-2000:]}"
    )
    return result.stdout


def test_every_example_has_a_marker():
    """The marker table stays in sync with the examples directory."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED_MARKERS)


@pytest.mark.parametrize("name", sorted(EXPECTED_MARKERS))
def test_example_runs(name):
    output = run_example(name)
    assert EXPECTED_MARKERS[name] in output, (
        f"{name} output missing {EXPECTED_MARKERS[name]!r}:\n{output[-1500:]}"
    )
