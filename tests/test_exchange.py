"""Anti-entropy exchange strategies (Section 1.3)."""

import pytest

from repro.protocols.base import ExchangeMode
from repro.protocols.exchange import (
    ChecksumWithRecent,
    ExchangeReport,
    FullCompare,
    HierarchicalChecksum,
    PeelBack,
    resolve_difference,
    strategy_for,
)

from conftest import make_store, ts


def diverged_pair(common=5, a_only=3, b_only=2):
    """Two stores sharing `common` keys plus private *recent* updates.

    b's clock starts ahead of a's so both sites' private updates are
    newer than the shared history (clocks in the paper approximate
    real time, so recent divergence has recent timestamps).
    """
    a = make_store(0)
    b = make_store(1, start=100.0)
    for i in range(common):
        update = a.update(f"common-{i}", i)
        b.apply_entry(update.key, update.entry)
    for i in range(a_only):
        for __ in range(25):
            a.clock.next_timestamp()  # move a's clock past the history
        a.update(f"a-{i}", i)
    for i in range(b_only):
        b.update(f"b-{i}", i)
    return a, b


class TestResolveDifference:
    def test_push_pull_converges(self):
        a, b = diverged_pair()
        report = resolve_difference(a, b, ExchangeMode.PUSH_PULL)
        assert a.agrees_with(b)
        assert len(report.sent_ab) == 3
        assert len(report.sent_ba) == 2
        assert report.changed

    def test_push_only_updates_partner(self):
        a, b = diverged_pair()
        resolve_difference(a, b, ExchangeMode.PUSH)
        assert b.get("a-0") == 0       # b learned a's updates
        assert a.get("b-0") is None    # a learned nothing

    def test_pull_only_updates_caller(self):
        a, b = diverged_pair()
        resolve_difference(a, b, ExchangeMode.PULL)
        assert a.get("b-0") == 0
        assert b.get("a-0") is None

    def test_newer_timestamp_wins_per_key(self):
        a = make_store(0)
        b = make_store(1)
        a.update("k", "old")
        b.update("k", "newer")  # b's clock stamps later via sequence? No:
        # both clocks start at 0; make b's entry strictly newer.
        b.update("k", "newest")
        resolve_difference(a, b, ExchangeMode.PUSH_PULL)
        assert a.get("k") == b.get("k")

    def test_no_differences_no_traffic(self):
        a, b = diverged_pair(common=4, a_only=0, b_only=0)
        report = resolve_difference(a, b, ExchangeMode.PUSH_PULL)
        assert not report.changed
        assert report.updates_shipped == 0

    def test_death_certificates_spread(self):
        a, b = diverged_pair(common=3, a_only=0, b_only=0)
        a.delete("common-1")
        resolve_difference(a, b, ExchangeMode.PUSH_PULL)
        assert b.get("common-1") is None
        assert a.agrees_with(b)

    def test_certificate_reactivation_propagates(self):
        a, b = diverged_pair(common=1, a_only=0, b_only=0)
        update = a.delete("common-0")
        b.apply_entry(update.key, update.entry)
        # a reactivates its copy; push-pull must carry the new
        # activation timestamp to b even though ordinary stamps match.
        awakened = update.entry.reactivated(now=500.0)
        a.apply_entry(update.key, awakened)
        resolve_difference(a, b, ExchangeMode.PUSH_PULL)
        assert b.entry("common-0").activation_timestamp.time == 500.0


class TestChecksumWithRecent:
    def test_recent_updates_avoid_full_compare(self):
        a, b = diverged_pair(common=10, a_only=2, b_only=1)
        strategy = ChecksumWithRecent(tau=1000.0)
        report = strategy.exchange(a, b, ExchangeMode.PUSH_PULL)
        assert a.agrees_with(b)
        assert not report.full_compare
        assert report.checksum_rounds == 1
        # Only the recent lists were examined, not the whole database.
        assert report.entries_examined <= 2 * (10 + 3)

    def test_small_tau_forces_full_compare(self):
        a, b = diverged_pair(common=5, a_only=2, b_only=0)
        # Age the stores so nothing is "recent".
        for __ in range(100):
            a.clock.next_timestamp()
            b.clock.next_timestamp()
        strategy = ChecksumWithRecent(tau=1.0)
        report = strategy.exchange(a, b, ExchangeMode.PUSH_PULL)
        assert a.agrees_with(b)
        assert report.full_compare   # the paper's tau-too-small failure

    def test_agreeing_stores_cost_one_checksum_round(self):
        a, b = diverged_pair(common=5, a_only=0, b_only=0)
        strategy = ChecksumWithRecent(tau=1000.0)
        report = strategy.exchange(a, b, ExchangeMode.PUSH_PULL)
        assert report.checksum_rounds == 1
        assert not report.changed or report.updates_shipped == 0

    def test_tau_validated(self):
        with pytest.raises(ValueError):
            ChecksumWithRecent(tau=0.0)


class TestPeelBack:
    def test_converges_and_ships_only_differences(self):
        a, b = diverged_pair(common=20, a_only=2, b_only=1)
        strategy = PeelBack()
        report = strategy.exchange(a, b, ExchangeMode.PUSH_PULL)
        assert a.agrees_with(b)
        assert len(report.sent_ab) == 2
        assert len(report.sent_ba) == 1
        # Peel back stops early: it must NOT walk all 23 entries twice.
        assert report.entries_examined < 20

    def test_identical_stores_stop_immediately(self):
        a, b = diverged_pair(common=10, a_only=0, b_only=0)
        report = PeelBack().exchange(a, b, ExchangeMode.PUSH_PULL)
        assert report.entries_examined == 0
        assert report.checksum_rounds == 1

    def test_requires_push_pull(self):
        a, b = diverged_pair()
        with pytest.raises(ValueError):
            PeelBack().exchange(a, b, ExchangeMode.PUSH)

    def test_divergence_deep_in_history(self):
        # The differing entry is the OLDEST one: peel back must walk all
        # the way down and still converge.
        a = make_store(0)
        b = make_store(1)
        a.update("old-only-a", "x")
        for i in range(10):
            update = a.update(f"shared-{i}", i)
            b.apply_entry(update.key, update.entry)
        report = PeelBack().exchange(a, b, ExchangeMode.PUSH_PULL)
        assert a.agrees_with(b)
        assert b.get("old-only-a") == "x"


class TestPeelBackBatching:
    """Regression: the docstring promises one re-compare per batch of
    equal-timestamp updates, but the original implementation recompared
    after every single update — doubling the checksum rounds whenever
    both sides stream the same shared-history entry."""

    def test_one_round_per_shared_timestamp(self):
        a = make_store(0)
        b = make_store(1)
        a.update("old-only-a", "x")      # the divergence, deepest in history
        shared = 10
        for i in range(shared):
            update = a.update(f"shared-{i}", i)
            b.apply_entry(update.key, update.entry)
        report = PeelBack().exchange(a, b, ExchangeMode.PUSH_PULL)
        assert a.agrees_with(b)
        # Initial compare + one batch per shared timestamp + the final
        # batch that ships the divergence.  The unbatched implementation
        # charged 2 rounds per shared timestamp (one per stream side).
        assert report.checksum_rounds == shared + 2
        # Both copies of every shared entry are examined, plus the one
        # real difference.
        assert report.entries_examined == 2 * shared + 1

    def test_equal_timestamps_across_keys_ship_in_one_batch(self):
        from repro.core.items import VersionedValue

        a = make_store(0)
        b = make_store(1)
        shared = a.update("shared", "s")
        b.apply_entry(shared.key, shared.entry)
        # Two different keys, one per side, carrying the exact same
        # timestamp: the docstring's batch is both of them together.
        stamp = ts(50.0, site=9, seq=0)
        a.apply_entry("only-a", VersionedValue("va", stamp))
        b.apply_entry("only-b", VersionedValue("vb", stamp))
        report = PeelBack().exchange(a, b, ExchangeMode.PUSH_PULL)
        assert a.agrees_with(b)
        # Initial compare + the single equal-timestamp batch.
        assert report.checksum_rounds == 2
        assert len(report.sent_ab) == 1
        assert len(report.sent_ba) == 1

    def test_initial_compare_is_counted_when_stores_differ(self):
        a, b = diverged_pair(common=0, a_only=1, b_only=0)
        report = PeelBack().exchange(a, b, ExchangeMode.PUSH_PULL)
        assert a.agrees_with(b)
        # One failed initial compare + one batch that settles it.
        assert report.checksum_rounds == 2


class TestHierarchicalChecksum:
    def test_converges_and_ships_only_differences(self):
        a, b = diverged_pair(common=40, a_only=3, b_only=2)
        report = HierarchicalChecksum().exchange(a, b, ExchangeMode.PUSH_PULL)
        assert a.agrees_with(b)
        assert len(report.sent_ab) == 3
        assert len(report.sent_ba) == 2
        assert not report.full_compare
        assert report.checksum_rounds == 1
        assert report.buckets_resolved >= 1
        assert report.tree_comparisons >= 1

    def test_examines_only_dirty_buckets(self):
        a, b = diverged_pair(common=60, a_only=1, b_only=0)
        dirty_bucket = a.bucket_of("a-0")
        report = HierarchicalChecksum().exchange(a, b, ExchangeMode.PUSH_PULL)
        assert a.agrees_with(b)
        # Every entry examined lives in the single dirty bucket; the 60
        # shared keys spread over the other buckets are never touched.
        assert report.buckets_resolved == 1
        assert report.entries_examined <= 2 * a.bucket_len(dirty_bucket)
        assert report.entries_examined < 60

    def test_identical_stores_cost_one_root_compare(self):
        a, b = diverged_pair(common=10, a_only=0, b_only=0)
        report = HierarchicalChecksum().exchange(a, b, ExchangeMode.PUSH_PULL)
        assert report.checksum_rounds == 1
        assert report.tree_comparisons == 0
        assert report.entries_examined == 0
        assert not report.changed

    def test_requires_push_pull(self):
        a, b = diverged_pair()
        with pytest.raises(ValueError):
            HierarchicalChecksum().exchange(a, b, ExchangeMode.PUSH)

    def test_bucket_count_mismatch_falls_back_to_full_compare(self):
        from repro.core.store import ReplicaStore
        from repro.core.timestamps import SequenceClock

        a = ReplicaStore(site_id=0, clock=SequenceClock(site=0), bucket_bits=4)
        b = ReplicaStore(site_id=1, clock=SequenceClock(site=1), bucket_bits=6)
        a.update("only-a", 1)
        update = a.update("shared", 2)
        b.apply_entry(update.key, update.entry)
        report = HierarchicalChecksum().exchange(a, b, ExchangeMode.PUSH_PULL)
        assert a.agrees_with(b)
        assert report.full_compare
        assert report.buckets_resolved == 0

    def test_deletions_spread_through_buckets(self):
        a, b = diverged_pair(common=20, a_only=0, b_only=0)
        a.delete("common-3")
        report = HierarchicalChecksum().exchange(a, b, ExchangeMode.PUSH_PULL)
        assert a.agrees_with(b)
        assert b.get("common-3") is None
        assert not report.full_compare


class TestExchangeReportMerge:
    def test_costs_add_and_full_compare_is_sticky(self):
        first = ExchangeReport(entries_examined=5, checksum_rounds=1)
        second = ExchangeReport(
            entries_examined=7, tree_comparisons=3, buckets_resolved=2,
            full_compare=True,
        )
        merged = first.merge(second)
        assert merged is first
        assert merged.entries_examined == 12
        assert merged.checksum_rounds == 1
        assert merged.tree_comparisons == 3
        assert merged.buckets_resolved == 2
        assert merged.full_compare

    def test_shipped_lists_concatenate(self):
        a, b = diverged_pair(common=2, a_only=1, b_only=1)
        full = resolve_difference(a, b, ExchangeMode.PUSH_PULL)
        report = ExchangeReport().merge(full)
        assert report.updates_shipped == full.updates_shipped
        assert report.sent_ab == full.sent_ab
        assert report.sent_ba == full.sent_ba

    def test_checksum_fallback_accounting_flows_through_merge(self):
        # The ChecksumWithRecent phase-3 fallback must leave a report
        # whose counters describe the whole conversation.
        a, b = diverged_pair(common=5, a_only=2, b_only=0)
        for __ in range(100):
            a.clock.next_timestamp()
            b.clock.next_timestamp()
        report = ChecksumWithRecent(tau=1.0).exchange(a, b, ExchangeMode.PUSH_PULL)
        assert report.full_compare
        assert report.checksum_rounds == 1     # the phase-2 compare
        assert report.updates_shipped == 2
        assert report.entries_examined >= 7    # the full pass examined the union


class TestStrategyFactory:
    def test_known_strategies(self):
        assert isinstance(strategy_for("full"), FullCompare)
        assert isinstance(strategy_for("checksum", tau=5.0), ChecksumWithRecent)
        assert isinstance(strategy_for("peelback"), PeelBack)
        assert isinstance(strategy_for("hierarchical"), HierarchicalChecksum)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            strategy_for("bogus")

    def test_describe(self):
        assert strategy_for("full").describe() == "full-compare"
        assert "tau=5" in strategy_for("checksum", tau=5.0).describe()
        assert strategy_for("hierarchical").describe() == "hierarchical-checksum"
