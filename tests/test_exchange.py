"""Anti-entropy exchange strategies (Section 1.3)."""

import pytest

from repro.protocols.base import ExchangeMode
from repro.protocols.exchange import (
    ChecksumWithRecent,
    FullCompare,
    PeelBack,
    resolve_difference,
    strategy_for,
)

from conftest import make_store


def diverged_pair(common=5, a_only=3, b_only=2):
    """Two stores sharing `common` keys plus private *recent* updates.

    b's clock starts ahead of a's so both sites' private updates are
    newer than the shared history (clocks in the paper approximate
    real time, so recent divergence has recent timestamps).
    """
    a = make_store(0)
    b = make_store(1, start=100.0)
    for i in range(common):
        update = a.update(f"common-{i}", i)
        b.apply_entry(update.key, update.entry)
    for i in range(a_only):
        for __ in range(25):
            a.clock.next_timestamp()  # move a's clock past the history
        a.update(f"a-{i}", i)
    for i in range(b_only):
        b.update(f"b-{i}", i)
    return a, b


class TestResolveDifference:
    def test_push_pull_converges(self):
        a, b = diverged_pair()
        report = resolve_difference(a, b, ExchangeMode.PUSH_PULL)
        assert a.agrees_with(b)
        assert len(report.sent_ab) == 3
        assert len(report.sent_ba) == 2
        assert report.changed

    def test_push_only_updates_partner(self):
        a, b = diverged_pair()
        resolve_difference(a, b, ExchangeMode.PUSH)
        assert b.get("a-0") == 0       # b learned a's updates
        assert a.get("b-0") is None    # a learned nothing

    def test_pull_only_updates_caller(self):
        a, b = diverged_pair()
        resolve_difference(a, b, ExchangeMode.PULL)
        assert a.get("b-0") == 0
        assert b.get("a-0") is None

    def test_newer_timestamp_wins_per_key(self):
        a = make_store(0)
        b = make_store(1)
        a.update("k", "old")
        b.update("k", "newer")  # b's clock stamps later via sequence? No:
        # both clocks start at 0; make b's entry strictly newer.
        b.update("k", "newest")
        resolve_difference(a, b, ExchangeMode.PUSH_PULL)
        assert a.get("k") == b.get("k")

    def test_no_differences_no_traffic(self):
        a, b = diverged_pair(common=4, a_only=0, b_only=0)
        report = resolve_difference(a, b, ExchangeMode.PUSH_PULL)
        assert not report.changed
        assert report.updates_shipped == 0

    def test_death_certificates_spread(self):
        a, b = diverged_pair(common=3, a_only=0, b_only=0)
        a.delete("common-1")
        resolve_difference(a, b, ExchangeMode.PUSH_PULL)
        assert b.get("common-1") is None
        assert a.agrees_with(b)

    def test_certificate_reactivation_propagates(self):
        a, b = diverged_pair(common=1, a_only=0, b_only=0)
        update = a.delete("common-0")
        b.apply_entry(update.key, update.entry)
        # a reactivates its copy; push-pull must carry the new
        # activation timestamp to b even though ordinary stamps match.
        awakened = update.entry.reactivated(now=500.0)
        a.apply_entry(update.key, awakened)
        resolve_difference(a, b, ExchangeMode.PUSH_PULL)
        assert b.entry("common-0").activation_timestamp.time == 500.0


class TestChecksumWithRecent:
    def test_recent_updates_avoid_full_compare(self):
        a, b = diverged_pair(common=10, a_only=2, b_only=1)
        strategy = ChecksumWithRecent(tau=1000.0)
        report = strategy.exchange(a, b, ExchangeMode.PUSH_PULL)
        assert a.agrees_with(b)
        assert not report.full_compare
        assert report.checksum_rounds == 1
        # Only the recent lists were examined, not the whole database.
        assert report.entries_examined <= 2 * (10 + 3)

    def test_small_tau_forces_full_compare(self):
        a, b = diverged_pair(common=5, a_only=2, b_only=0)
        # Age the stores so nothing is "recent".
        for __ in range(100):
            a.clock.next_timestamp()
            b.clock.next_timestamp()
        strategy = ChecksumWithRecent(tau=1.0)
        report = strategy.exchange(a, b, ExchangeMode.PUSH_PULL)
        assert a.agrees_with(b)
        assert report.full_compare   # the paper's tau-too-small failure

    def test_agreeing_stores_cost_one_checksum_round(self):
        a, b = diverged_pair(common=5, a_only=0, b_only=0)
        strategy = ChecksumWithRecent(tau=1000.0)
        report = strategy.exchange(a, b, ExchangeMode.PUSH_PULL)
        assert report.checksum_rounds == 1
        assert not report.changed or report.updates_shipped == 0

    def test_tau_validated(self):
        with pytest.raises(ValueError):
            ChecksumWithRecent(tau=0.0)


class TestPeelBack:
    def test_converges_and_ships_only_differences(self):
        a, b = diverged_pair(common=20, a_only=2, b_only=1)
        strategy = PeelBack()
        report = strategy.exchange(a, b, ExchangeMode.PUSH_PULL)
        assert a.agrees_with(b)
        assert len(report.sent_ab) == 2
        assert len(report.sent_ba) == 1
        # Peel back stops early: it must NOT walk all 23 entries twice.
        assert report.entries_examined < 20

    def test_identical_stores_stop_immediately(self):
        a, b = diverged_pair(common=10, a_only=0, b_only=0)
        report = PeelBack().exchange(a, b, ExchangeMode.PUSH_PULL)
        assert report.entries_examined == 0
        assert report.checksum_rounds == 1

    def test_requires_push_pull(self):
        a, b = diverged_pair()
        with pytest.raises(ValueError):
            PeelBack().exchange(a, b, ExchangeMode.PUSH)

    def test_divergence_deep_in_history(self):
        # The differing entry is the OLDEST one: peel back must walk all
        # the way down and still converge.
        a = make_store(0)
        b = make_store(1)
        a.update("old-only-a", "x")
        for i in range(10):
            update = a.update(f"shared-{i}", i)
            b.apply_entry(update.key, update.entry)
        report = PeelBack().exchange(a, b, ExchangeMode.PUSH_PULL)
        assert a.agrees_with(b)
        assert b.get("old-only-a") == "x"


class TestStrategyFactory:
    def test_known_strategies(self):
        assert isinstance(strategy_for("full"), FullCompare)
        assert isinstance(strategy_for("checksum", tau=5.0), ChecksumWithRecent)
        assert isinstance(strategy_for("peelback"), PeelBack)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            strategy_for("bogus")

    def test_describe(self):
        assert strategy_for("full").describe() == "full-compare"
        assert "tau=5" in strategy_for("checksum", tau=5.0).describe()
