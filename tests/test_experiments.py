"""Experiment drivers at reduced scale: every table/figure driver runs
and its headline *shape* holds.

The benchmarks regenerate the tables at full scale; these tests keep
the drivers honest in CI-sized runs.
"""

import math

import pytest

from repro.experiments import format_table
from repro.experiments.baselines import (
    direct_mail_experiment,
    push_epidemic_cycles,
    remail_blowup_experiment,
)
from repro.experiments.pathologies import (
    backup_fixes_pathology,
    figure1_experiment,
    figure1_pull_experiment,
    figure2_experiment,
    minimal_k_for_coverage,
)
from repro.experiments.spatial import (
    line_scaling,
    rumor_spatial_table,
    spatial_table,
)
from repro.experiments.tables import table1, table2, table3
from repro.sim.transport import ConnectionPolicy
from repro.topology.cin import CinParameters, build_cin_like_topology


@pytest.fixture(scope="module")
def small_cin():
    return build_cin_like_topology(
        CinParameters(
            backbone_hubs=5,
            metro_ethernets=(2, 3),
            sites_per_ethernet=(3, 5),
            linear_chains=1,
            linear_chain_length=6,
            europe_ethernets=3,
            europe_sites_per_ethernet=(3, 4),
        )
    )


class TestTables123:
    def test_table1_shape(self):
        rows = table1(n=500, runs=2)
        residues = [r.residue for r in rows]
        traffics = [r.traffic for r in rows]
        # Residue falls and traffic rises monotonically with k.
        assert residues == sorted(residues, reverse=True)
        assert traffics == sorted(traffics)
        # k=1 lands near the paper's 18%.
        assert rows[0].residue == pytest.approx(0.18, abs=0.1)
        # s = e^-m holds within noise.
        for row in rows[:3]:
            if row.residue > 0:
                assert row.residue == pytest.approx(
                    math.exp(-row.traffic), rel=1.2
                )

    def test_table2_blind_coin_much_worse_at_small_k(self):
        rows = table2(n=500, runs=2)
        # k=1 blind/coin barely spreads (paper: 96% residue).
        assert rows[0].residue > 0.7
        # By k=5 it works decently.
        assert rows[-1].residue < 0.1

    def test_table3_pull_beats_push(self):
        pull_rows = table3(n=500, runs=2)
        push_rows = table1(n=500, runs=2)
        for pull_row, push_row in zip(pull_rows, push_rows):
            assert pull_row.residue <= push_row.residue + 0.01
        # Pull k=2 is already near-complete.
        assert pull_rows[1].residue < 0.01


class TestSpatialTables:
    def test_table4_shape(self, small_cin):
        rows = spatial_table(cin=small_cin, runs=3, a_values=(1.2, 2.0))
        uniform, a12, a20 = rows
        assert uniform.label == "uniform"
        # Spatial distributions slow convergence modestly...
        assert a20.t_last < 4 * uniform.t_last
        # ... but slash traffic on the transatlantic link and on average.
        assert a20.compare_special < uniform.compare_special / 2
        assert a20.compare_avg < uniform.compare_avg
        # And every run completed (anti-entropy is a simple epidemic).
        assert all(r.incomplete_runs == 0 for r in rows)

    def test_table5_connection_limit_slows_but_completes(self, small_cin):
        unlimited = spatial_table(cin=small_cin, runs=3, a_values=(2.0,))
        limited = spatial_table(
            cin=small_cin,
            runs=3,
            a_values=(2.0,),
            policy=ConnectionPolicy(connection_limit=1, hunt_limit=0),
        )
        assert limited[1].t_last > unlimited[1].t_last
        assert all(r.incomplete_runs == 0 for r in limited)
        # Total comparison traffic (per-link-per-cycle x cycles) stays
        # in the same ballpark: the limit spreads it over more cycles.
        total_unlimited = unlimited[1].compare_avg * unlimited[1].t_last
        total_limited = limited[1].compare_avg * limited[1].t_last
        assert total_limited == pytest.approx(total_unlimited, rel=0.8)

    def test_rumor_spatial_table_larger_k_covers(self, small_cin):
        rows = rumor_spatial_table(cin=small_cin, runs=3, ks=(1, 6))
        # k=6 should complete in every trial; k=1 typically not.
        assert rows[-1].incomplete_runs == 0

    def test_line_scaling_traffic_ordering(self):
        rows = line_scaling(ns=(32,), a_values=(0.0, 2.0, 3.0), runs=2)
        by_a = {row.a: row.mean_link_traffic for row in rows}
        assert by_a[0.0] > by_a[2.0] > 0
        assert by_a[2.0] >= by_a[3.0] * 0.5

    def test_line_scaling_uniform_traffic_grows_with_n(self):
        rows = line_scaling(ns=(16, 64), a_values=(0.0,), runs=2)
        assert rows[1].mean_link_traffic > 2 * rows[0].mean_link_traffic


class TestPathologyExperiments:
    def test_figure1_push_fails_often(self):
        result = figure1_experiment(m=20, k=2, trials=20)
        assert result.failure_rate > 0.5
        assert result.died_in_pair > 0

    def test_figure1_pull_starves_the_pair(self):
        result = figure1_pull_experiment(m=20, k=1, trials=20)
        assert result.failures >= result.died_in_pair > 0

    def test_figure2_lonely_site_missed(self):
        result = figure2_experiment(depth=4, spur_length=7, k=2, trials=15)
        assert result.missed_lonely > 0

    def test_larger_k_reduces_failures(self):
        low = figure1_experiment(m=20, k=1, trials=20)
        high = figure1_experiment(m=20, k=8, trials=20)
        assert high.failures <= low.failures

    def test_minimal_k_search_finds_finite_k(self):
        from repro.topology import builders
        from repro.topology.distance import SiteDistances
        from repro.topology.spatial import QPowerSelector
        from repro.protocols.base import ExchangeMode

        topo, s, t, group = builders.figure1_topology(m=8)
        selector = QPowerSelector(SiteDistances(topo), a=2.0)
        k = minimal_k_for_coverage(
            topo, selector, ExchangeMode.PUSH_PULL, trials=5, k_max=30
        )
        assert k is not None

    def test_backup_guarantees_coverage(self):
        result = backup_fixes_pathology(m=20, k=1, trials=5)
        assert result.failures == 0


class TestBaselineExperiments:
    def test_direct_mail_costs_n_messages(self):
        result = direct_mail_experiment(n=100, loss_probability=0.0, runs=3)
        assert result.messages_per_update == pytest.approx(99)
        assert result.residue == 0.0

    def test_direct_mail_loss_leaves_residue(self):
        result = direct_mail_experiment(n=100, loss_probability=0.1, runs=3)
        assert result.residue == pytest.approx(0.1, abs=0.07)

    def test_push_matches_pittel(self):
        result = push_epidemic_cycles(n=256, runs=3)
        assert result.mean_cycles == pytest.approx(
            result.pittel_prediction, rel=0.35
        )

    def test_remail_blowup_is_dramatic(self):
        result = remail_blowup_experiment(n=40)
        assert result.messages_without_remail == 0
        # Many sites each remail the full membership: the cost is many
        # multiples of a single n-message mailing.
        assert result.messages_with_remail > 5 * (result.n - 1)


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(
            ["k", "residue"], [(1, 0.18), (2, 0.037)], title="Demo"
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "residue" in lines[1]
        assert len(lines) == 5

    def test_format_values(self):
        from repro.experiments.report import format_value

        assert format_value(True) == "yes"
        assert format_value(0.000001) == "1.00e-06"
        assert format_value(float("nan")) == "-"
        assert format_value(12) == "12"


class TestSparkline:
    def test_empty(self):
        from repro.experiments.report import sparkline

        assert sparkline([]) == ""

    def test_scales_to_max(self):
        from repro.experiments.report import sparkline

        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] == " "
        assert line[2] == "@"

    def test_explicit_maximum(self):
        from repro.experiments.report import sparkline

        assert sparkline([1.0], maximum=2.0)[0] not in (" ", "@")

    def test_all_zero(self):
        from repro.experiments.report import sparkline

        assert sparkline([0, 0, 0]) == "   "
