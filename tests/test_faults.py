"""Failure injection: schedules, partitions, churn."""

import pytest

from repro.cluster.cluster import Cluster
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.base import ExchangeMode
from repro.protocols.direct_mail import DirectMailProtocol
from repro.sim.faults import FaultSchedule, RandomChurn


def anti_entropy_cluster(n, seed=0):
    cluster = Cluster(n=n, seed=seed)
    schedule = FaultSchedule()
    cluster.add_protocol(schedule)
    cluster.add_protocol(
        AntiEntropyProtocol(config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL))
    )
    return cluster, schedule


class TestPartitionPrimitive:
    def test_partition_blocks_cross_group_talk(self):
        cluster = Cluster(n=4, seed=0)
        cluster.set_partition([[0, 1], [2, 3]])
        assert cluster.can_communicate(0, 1)
        assert cluster.can_communicate(2, 3)
        assert not cluster.can_communicate(0, 2)
        assert cluster.partitioned

    def test_unlisted_sites_form_their_own_group(self):
        cluster = Cluster(n=4, seed=0)
        cluster.set_partition([[0, 1]])
        assert cluster.can_communicate(2, 3)
        assert not cluster.can_communicate(0, 2)

    def test_clear_partition(self):
        cluster = Cluster(n=4, seed=0)
        cluster.set_partition([[0, 1], [2, 3]])
        cluster.clear_partition()
        assert cluster.can_communicate(0, 2)
        assert not cluster.partitioned

    def test_down_site_cannot_communicate(self):
        cluster = Cluster(n=3, seed=0)
        cluster.sites[1].up = False
        assert not cluster.can_communicate(0, 1)
        assert cluster.can_communicate(0, 2)

    def test_overlapping_groups_rejected(self):
        cluster = Cluster(n=4, seed=0)
        with pytest.raises(ValueError):
            cluster.set_partition([[0, 1], [1, 2]])

    def test_unknown_site_rejected(self):
        cluster = Cluster(n=3, seed=0)
        with pytest.raises(ValueError):
            cluster.set_partition([[0, 99]])


class TestFaultSchedule:
    def test_crash_and_recover(self):
        cluster, schedule = anti_entropy_cluster(10)
        schedule.crash(at_cycle=2, sites=[5]).recover(at_cycle=4, sites=[5])
        cluster.run_cycle()
        assert cluster.sites[5].up
        cluster.run_cycle()
        assert not cluster.sites[5].up
        cluster.run_cycles(2)
        assert cluster.sites[5].up
        assert schedule.stats.crashes == 1
        assert schedule.stats.recoveries == 1

    def test_active_until_schedule_exhausted(self):
        cluster, schedule = anti_entropy_cluster(5)
        schedule.crash(at_cycle=3, sites=[1])
        assert schedule.active
        cluster.run_cycles(3)
        assert not schedule.active

    def test_crashed_site_misses_updates_then_catches_up(self):
        cluster, schedule = anti_entropy_cluster(20, seed=2)
        schedule.crash(at_cycle=1, sites=[19]).recover(at_cycle=12, sites=[19])
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_cycles(10)
        assert cluster.sites[19].store.get("k") is None
        cluster.run_until(lambda: cluster.metrics.infected == 20, max_cycles=50)
        assert cluster.sites[19].store.get("k") == "v"

    def test_partition_heals_and_replicas_reconverge(self):
        cluster, schedule = anti_entropy_cluster(12, seed=3)
        schedule.partition(at_cycle=1, groups=[list(range(6)), list(range(6, 12))])
        schedule.heal(at_cycle=15)
        # One update per side of the partition.
        cluster.inject_update(0, "west", "w")
        cluster.inject_update(6, "east", "e")
        cluster.run_cycles(12)
        # Each side converged internally, neither crossed.
        assert cluster.sites[5].store.get("west") == "w"
        assert cluster.sites[5].store.get("east") is None
        assert cluster.sites[11].store.get("east") == "e"
        assert cluster.sites[11].store.get("west") is None
        cluster.run_until(cluster.converged, max_cycles=60)
        assert cluster.sites[11].store.get("west") == "w"
        assert cluster.sites[0].store.get("east") == "e"

    def test_mail_cut_by_partition_repaired_by_anti_entropy(self):
        cluster = Cluster(n=10, seed=4)
        schedule = FaultSchedule()
        schedule.partition(at_cycle=1, groups=[[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]])
        schedule.heal(at_cycle=6)
        cluster.add_protocol(schedule)
        mail = DirectMailProtocol()
        cluster.add_protocol(mail)
        cluster.add_protocol(
            AntiEntropyProtocol(config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL))
        )
        cluster.run_cycle()  # partition up BEFORE the mail is sent
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_cycles(3)
        # Mail crossed only inside the partition.
        assert all(
            cluster.sites[s].store.get("k") is None for s in range(5, 10)
        )
        cluster.run_until(lambda: cluster.metrics.infected == 10, max_cycles=60)

    def test_cycle_zero_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule().crash(at_cycle=0, sites=[1])


class TestRandomChurn:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            RandomChurn(crash_rate=1.5)
        with pytest.raises(ValueError):
            RandomChurn(min_up_fraction=0.0)

    def test_churn_crashes_and_recovers(self):
        cluster = Cluster(n=50, seed=5)
        churn = RandomChurn(crash_rate=0.1, recovery_rate=0.3)
        cluster.add_protocol(churn)
        cluster.run_cycles(30)
        assert churn.stats.crashes > 0
        assert churn.stats.recoveries > 0

    def test_min_up_fraction_respected(self):
        cluster = Cluster(n=20, seed=6)
        churn = RandomChurn(crash_rate=0.9, recovery_rate=0.0, min_up_fraction=0.5)
        cluster.add_protocol(churn)
        cluster.run_cycles(20)
        assert len(cluster.up_site_ids()) >= 10

    def test_epidemic_completes_under_churn(self):
        """Anti-entropy delivers everywhere despite sustained churn,
        once the churn ends and everyone is back up."""
        cluster = Cluster(n=60, seed=7)
        churn = RandomChurn(crash_rate=0.05, recovery_rate=0.3)
        cluster.add_protocol(churn)
        cluster.add_protocol(
            AntiEntropyProtocol(config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL))
        )
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_cycles(30)
        churn.restore_all()
        churn.crash_rate = 0.0
        cluster.run_until(lambda: cluster.metrics.infected == 60, max_cycles=60)
        assert cluster.metrics.complete
