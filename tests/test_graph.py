"""Topology graphs: construction, distances, deterministic routing."""

import pytest

from repro.topology.graph import Topology, complete_topology, sites_only


class TestConstruction:
    def test_add_nodes_and_sites(self):
        topo = Topology()
        topo.add_node(0, site=True)
        topo.add_node(1)
        assert topo.sites == [0]
        assert topo.node_count == 2
        assert topo.is_site(0)
        assert not topo.is_site(1)

    def test_new_node_allocates_fresh_ids(self):
        topo = Topology()
        assert topo.new_node() == 0
        assert topo.new_node(site=True) == 1
        assert topo.sites == [1]

    def test_add_edge_creates_nodes(self):
        topo = Topology()
        topo.add_edge(0, 1)
        assert topo.node_count == 2
        assert topo.edge_count == 1

    def test_duplicate_edges_collapse(self):
        topo = Topology()
        topo.add_edge(0, 1)
        topo.add_edge(1, 0)
        assert topo.edge_count == 1
        assert list(topo.neighbors(0)) == [1]

    def test_self_loop_rejected(self):
        topo = Topology()
        with pytest.raises(ValueError):
            topo.add_edge(3, 3)

    def test_labels(self):
        topo = Topology()
        topo.add_edge(0, 1, label="bushey")
        assert topo.labeled_edge("bushey") == (0, 1)
        assert topo.labels == {"bushey": (0, 1)}
        with pytest.raises(KeyError):
            topo.labeled_edge("missing")


class TestDistances:
    def _chain(self, n):
        topo = Topology()
        for i in range(n):
            topo.add_node(i, site=True)
        for i in range(n - 1):
            topo.add_edge(i, i + 1)
        return topo

    def test_chain_distances(self):
        topo = self._chain(5)
        assert topo.distance(0, 4) == 4
        assert topo.distance(2, 2) == 0

    def test_disconnected_distance_raises(self):
        topo = Topology()
        topo.add_node(0, site=True)
        topo.add_node(1, site=True)
        with pytest.raises(ValueError):
            topo.distance(0, 1)

    def test_distances_through_non_site_nodes(self):
        topo = Topology()
        topo.add_node(0, site=True)
        topo.add_node(1)            # relay
        topo.add_node(2, site=True)
        topo.add_edge(0, 1)
        topo.add_edge(1, 2)
        assert topo.distance(0, 2) == 2

    def test_cache_invalidated_on_mutation(self):
        topo = self._chain(4)
        assert topo.distance(0, 3) == 3
        topo.add_edge(0, 3)
        assert topo.distance(0, 3) == 1


class TestRouting:
    def test_path_endpoints_and_length(self):
        topo = complete_topology(4)
        path = topo.path(0, 3)
        assert path[0] == 0 and path[-1] == 3
        assert len(path) == 2

    def test_path_to_self(self):
        topo = complete_topology(3)
        assert topo.path(1, 1) == [1]

    def test_path_is_shortest(self):
        topo = Topology()
        # A square with one diagonal: 0-1-2, 0-3-2, 0-2 direct.
        topo.add_edge(0, 1)
        topo.add_edge(1, 2)
        topo.add_edge(0, 3)
        topo.add_edge(3, 2)
        topo.add_edge(0, 2)
        assert topo.path(0, 2) == [0, 2]

    def test_routing_is_deterministic_across_equal_paths(self):
        topo = Topology()
        # Two equal-length routes 0-1-3 and 0-2-3.
        topo.add_edge(0, 1)
        topo.add_edge(0, 2)
        topo.add_edge(1, 3)
        topo.add_edge(2, 3)
        first = topo.path(0, 3)
        for __ in range(5):
            assert topo.path(0, 3) == first
        # Tie-break toward the smaller node id.
        assert first == [0, 1, 3]

    def test_path_between_disconnected_raises(self):
        topo = Topology()
        topo.add_node(0)
        topo.add_node(1)
        with pytest.raises(ValueError):
            topo.path(0, 1)


class TestValidation:
    def test_sites_only_is_valid(self):
        sites_only(5).validate()

    def test_no_sites_invalid(self):
        topo = Topology()
        topo.add_node(0)
        with pytest.raises(ValueError):
            topo.validate()

    def test_disconnected_with_edges_invalid(self):
        topo = Topology()
        topo.add_edge(0, 1)
        topo.add_node(2, site=True)
        with pytest.raises(ValueError):
            topo.validate()

    def test_complete_topology_all_pairs_one_hop(self):
        topo = complete_topology(5)
        topo.validate()
        assert all(
            topo.distance(i, j) == 1
            for i in range(5)
            for j in range(5)
            if i != j
        )
