"""The Section 4 dynamic-hierarchy extension."""

import random

import pytest

from repro.topology import builders
from repro.topology.cin import build_cin_like_topology
from repro.topology.distance import SiteDistances
from repro.topology.hierarchy import HierarchicalSelector, elect_backbone


@pytest.fixture(scope="module")
def line_distances():
    return SiteDistances(builders.line(30))


class TestBackboneElection:
    def test_count_respected(self, line_distances):
        assert len(elect_backbone(line_distances, 5)) == 5

    def test_deterministic(self, line_distances):
        assert elect_backbone(line_distances, 5) == elect_backbone(line_distances, 5)

    def test_backbone_spreads_across_the_network(self, line_distances):
        """Farthest-point election on a 30-site line: consecutive
        backbone sites are far apart."""
        backbone = elect_backbone(line_distances, 4)
        gaps = [b - a for a, b in zip(backbone, backbone[1:])]
        assert min(gaps) >= 5

    def test_count_at_least_population_returns_everyone(self, line_distances):
        assert elect_backbone(line_distances, 100) == line_distances.sites

    def test_count_validated(self, line_distances):
        with pytest.raises(ValueError):
            elect_backbone(line_distances, 0)

    def test_covers_cin_regions(self):
        """On the synthetic CIN, a modest backbone lands members both
        sides of the Atlantic."""
        cin = build_cin_like_topology()
        distances = SiteDistances(cin.topology)
        backbone = elect_backbone(distances, 12)
        assert set(backbone) & set(cin.europe_sites)
        assert set(backbone) & set(cin.us_sites)


class TestHierarchicalSelector:
    def test_requires_exactly_one_spec(self, line_distances):
        with pytest.raises(ValueError):
            HierarchicalSelector(line_distances)
        with pytest.raises(ValueError):
            HierarchicalSelector(
                line_distances, backbone=[0, 29], backbone_count=2
            )

    def test_unknown_backbone_site_rejected(self, line_distances):
        with pytest.raises(ValueError):
            HierarchicalSelector(line_distances, backbone=[0, 999])

    def test_leaf_sites_choose_locally(self, line_distances):
        selector = HierarchicalSelector(
            line_distances, backbone=[0, 29], long_range_probability=1.0
        )
        rng = random.Random(0)
        leaf = 15
        assert not selector.is_backbone(leaf)
        # A leaf's partner distribution is the local one: distant
        # partners are rare even with p_long = 1.
        draws = [selector.choose(leaf, rng) for __ in range(300)]
        near = sum(1 for d in draws if abs(d - leaf) <= 3)
        assert near > len(draws) * 0.5

    def test_backbone_sites_reach_far(self, line_distances):
        selector = HierarchicalSelector(
            line_distances, backbone=[0, 29], long_range_probability=1.0
        )
        rng = random.Random(0)
        draws = [selector.choose(0, rng) for __ in range(100)]
        assert all(d == 29 for d in draws)  # the only backbone peer

    def test_probabilities_sum_to_one(self, line_distances):
        selector = HierarchicalSelector(
            line_distances, backbone_count=4, long_range_probability=0.5
        )
        for site in (0, 7, 15):
            total = sum(
                selector.probability(site, other)
                for other in line_distances.sites
                if other != site
            )
            assert total == pytest.approx(1.0)

    def test_empirical_matches_probabilities(self, line_distances):
        selector = HierarchicalSelector(
            line_distances, backbone_count=4, long_range_probability=0.6
        )
        backbone_site = selector.backbone[0]
        rng = random.Random(2)
        draws = 4000
        from collections import Counter

        counts = Counter(selector.choose(backbone_site, rng) for __ in range(draws))
        for partner in selector.backbone[1:3]:
            expected = selector.probability(backbone_site, partner)
            assert counts[partner] / draws == pytest.approx(expected, abs=0.03)

    def test_describe(self, line_distances):
        selector = HierarchicalSelector(line_distances, backbone_count=3)
        assert "backbone=3" in selector.describe()


class TestHierarchyEndToEnd:
    def test_epidemic_completes_with_hierarchy(self):
        from repro.cluster.cluster import Cluster
        from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
        from repro.protocols.base import ExchangeMode

        cin = build_cin_like_topology()
        distances = SiteDistances(cin.topology)
        selector = HierarchicalSelector(distances, backbone_count=12)
        cluster = Cluster(topology=cin.topology, seed=8)
        cluster.add_protocol(
            AntiEntropyProtocol(
                selector=selector,
                config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL),
            )
        )
        cluster.inject_update(cin.sites[0], "k", "v", track=True)
        cluster.run_until(
            lambda: cluster.metrics.infected == cluster.n, max_cycles=100
        )
        assert cluster.metrics.complete
